//! End-to-end tests for the multi-stream gateway server: session
//! labelling and per-session sequence order over the interleaved JSONL
//! stream, isolation of a stalled stream, session churn against the
//! shared buffer pool, and concurrent TCP fan-in.

use ctc_channel::noise::complex_gaussian;
use ctc_core::attack::Emulator;
use ctc_core::defense::{ChannelAssumption, Detector};
use ctc_dsp::io::write_cf32;
use ctc_dsp::Complex;
use ctc_gateway::{GatewayConfig, GatewayServer, Input, Listener, NamedStream, ServerConfig};
use ctc_zigbee::Transmitter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// noise | authentic frame | noise | forged frame | noise, as cf32 bytes.
fn synthetic_capture(seed: u64) -> (Vec<u8>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma2 = 1e-3;
    let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    let mut stream: Vec<Complex> = Vec::new();
    let mut noise = |n: usize, stream: &mut Vec<Complex>| {
        stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
    };
    noise(700, &mut stream);
    stream.extend_from_slice(&authentic);
    noise(700, &mut stream);
    stream.extend_from_slice(&forged);
    noise(700, &mut stream);
    let total = stream.len();
    let mut bytes = Vec::new();
    write_cf32(&mut bytes, &stream).unwrap();
    (bytes, total)
}

fn config() -> GatewayConfig {
    GatewayConfig::builder()
        .detector(Detector::new(ChannelAssumption::Ideal).with_threshold(0.25))
        .stats_interval(None)
        .build()
        .unwrap()
}

/// Extracts `"key":value` (raw JSON text) from a rendered line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}"));
    let rest = &line[at + pat.len()..];
    let end = if let Some(inner) = rest.strip_prefix('"') {
        inner.find('"').map(|i| i + 2).unwrap()
    } else {
        rest.find([',', '}']).unwrap()
    };
    &rest[..end]
}

/// Groups an interleaved event stream by `stream` label and checks each
/// session's discipline: `open` at seq 0, frames in contiguous ascending
/// order, `close` as the final seq. Returns events per label.
fn check_session_order(events: &str) -> BTreeMap<String, Vec<String>> {
    let mut by_stream: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in events.lines() {
        let label = field(line, "stream").trim_matches('"').to_string();
        by_stream.entry(label).or_default().push(line.to_string());
    }
    for (label, lines) in &by_stream {
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(
                field(line, "seq"),
                i.to_string(),
                "stream {label} out of order at {line}"
            );
        }
        let first = &lines[0];
        assert_eq!(field(first, "type"), "\"session\"", "{first}");
        assert_eq!(field(first, "event"), "\"open\"", "{first}");
        let last = lines.last().unwrap();
        assert_eq!(field(last, "type"), "\"session\"", "{last}");
        assert_eq!(field(last, "event"), "\"close\"", "{last}");
    }
    by_stream
}

/// A `Write` events sink the test can inspect while the server still
/// holds it — how we observe one session finishing while another stalls.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn labelled_streams_interleave_with_per_session_order() {
    let (bytes, total) = synthetic_capture(21);
    let server = GatewayServer::new(ServerConfig::from(config()));
    let mut events = Vec::new();
    let report = server
        .run_streams(
            vec![
                NamedStream::new("alpha", &bytes[..]),
                NamedStream::new("beta", &bytes[..]),
                NamedStream::new("gamma", &bytes[..]),
            ],
            &mut events,
            &mut Vec::new(),
        )
        .unwrap();

    // Aggregate counters are the sum over sessions.
    assert_eq!(report.metrics.samples_in as usize, 3 * total);
    assert_eq!(report.metrics.bursts, 6);
    assert_eq!(report.metrics.frames_decoded, 6);
    assert_eq!(report.metrics.forgeries, 3);
    assert!(report.forgery_detected());
    assert_eq!(report.server.sessions_opened, 3);
    assert_eq!(report.server.sessions_closed, 3);
    assert_eq!(report.server.sessions_errored, 0);

    // Per-session summaries carry each stream's own tallies.
    assert_eq!(report.sessions.len(), 3);
    for label in ["alpha", "beta", "gamma"] {
        let s = report.session(label).unwrap();
        assert_eq!(s.metrics.samples_in as usize, total, "{label}");
        assert_eq!(s.metrics.bursts, 2, "{label}");
        assert_eq!(s.metrics.forgeries, 1, "{label}");
    }

    // Every event is stream-tagged and per-session seq-ordered.
    let events = String::from_utf8(events).unwrap();
    let by_stream = check_session_order(&events);
    assert_eq!(by_stream.len(), 3, "{events}");
    for label in ["alpha", "beta", "gamma"] {
        let lines = &by_stream[label];
        // open + 2 frames + close
        assert_eq!(lines.len(), 4, "{label}: {lines:?}");
        assert_eq!(field(&lines[1], "verdict"), "\"authentic\"");
        assert_eq!(field(&lines[2], "verdict"), "\"attack\"");
        let close = lines.last().unwrap();
        assert_eq!(field(close, "frames_decoded"), "2");
        assert_eq!(field(close, "forgeries"), "1");
    }
}

/// A stalled client must not delay another stream's events: session
/// isolation is the whole point of shards + per-session ordering.
#[test]
fn stalled_stream_does_not_block_another() {
    let (bytes, _) = synthetic_capture(22);
    let listener = Listener::bind(&Input::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let addr = listener
        .local_display()
        .strip_prefix("tcp://")
        .unwrap()
        .to_string();
    let server = GatewayServer::new(ServerConfig::from(config()));
    let shutdown = server.shutdown_handle();
    let events = SharedBuf::default();
    let events_for_server = events.clone();
    let handle = std::thread::spawn(move || {
        let mut sink = events_for_server;
        server.serve(listener, &mut sink, &mut std::io::sink())
    });

    // First connection stalls: connected, never writes, never closes.
    let stalled = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Second connection streams a full capture and hangs up.
    {
        let mut live = TcpStream::connect(&addr).unwrap();
        live.write_all(&bytes).unwrap();
    }

    // The live session's close event (with both frames decoded) must land
    // while the stalled client still holds its connection open.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = events.contents();
        let done = text
            .lines()
            .any(|l| l.contains("\"event\":\"close\"") && l.contains("\"frames_decoded\":2"));
        if done {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "live session did not finish behind a stalled peer:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let mid_run = events.contents();
    let closes = mid_run.matches("\"event\":\"close\"").count();
    assert_eq!(closes, 1, "stalled session must still be open:\n{mid_run}");

    // Shutdown unwedges the stalled session (EOF at its next poll).
    shutdown.shutdown();
    let report = handle.join().unwrap().unwrap();
    drop(stalled);
    assert_eq!(report.server.sessions_opened, 2);
    assert_eq!(report.server.sessions_closed, 2);
    assert_eq!(report.server.sessions_errored, 0);
    check_session_order(&events.contents());
}

/// Session churn must not leak pooled capture buffers: every buffer a
/// session checked out is back in the shared pool by end of run.
#[test]
fn session_churn_returns_every_pooled_buffer() {
    let (bytes, _) = synthetic_capture(23);
    let streams: Vec<NamedStream<'_>> = (0..8)
        .map(|i| NamedStream::new(format!("s{i}"), &bytes[..]))
        .collect();
    let server = GatewayServer::new(ServerConfig::from(config()));
    let report = server
        .run_streams(streams, &mut Vec::new(), &mut Vec::new())
        .unwrap();

    assert_eq!(report.metrics.bursts, 16);
    // One pool checkout per burst, and every buffer came back: the pool's
    // idle count equals the number of buffers ever allocated.
    assert_eq!(report.pool.hits + report.pool.misses, 16);
    assert_eq!(report.pool.idle as u64, report.pool.misses);
}

/// One server process sustains 32 concurrent TCP cf32 streams with
/// per-session ordering intact (release builds only: 32 decode pipelines
/// of debug-mode DSP would dominate CI time).
#[cfg(not(debug_assertions))]
#[test]
fn serves_32_concurrent_tcp_streams() {
    let (bytes, total) = synthetic_capture(24);
    let listener = Listener::bind(&Input::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let addr = listener
        .local_display()
        .strip_prefix("tcp://")
        .unwrap()
        .to_string();
    let mut server_config = ServerConfig::from(config());
    server_config.max_streams = 64;
    server_config.stop_after = Some(32);
    let server = GatewayServer::new(server_config);
    let events = SharedBuf::default();
    let events_for_server = events.clone();
    let handle = std::thread::spawn(move || {
        let mut sink = events_for_server;
        server.serve(listener, &mut sink, &mut std::io::sink())
    });

    let clients: Vec<_> = (0..32)
        .map(|_| {
            let addr = addr.clone();
            let bytes = bytes.clone();
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(&addr).unwrap();
                conn.write_all(&bytes).unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.server.sessions_opened, 32);
    assert_eq!(report.server.sessions_closed, 32);
    assert_eq!(report.metrics.samples_in as usize, 32 * total);
    assert_eq!(report.metrics.forgeries, 32);
    let by_stream = check_session_order(&events.contents());
    assert_eq!(by_stream.len(), 32);
}

/// A pipeline-equipped run emits the fused score plus the named feature
/// vector on every frame line, keeps the legacy verdicts (the standard
/// pipeline thresholds the same DE² statistic), and publishes
/// `ctc_detector_score{feature=...}` gauges — while the legacy
/// configuration's lines stay byte-identical (no `score`/`features`).
#[cfg(feature = "telemetry")]
#[test]
fn pipeline_run_carries_per_feature_scores() {
    use ctc_core::defense::DetectionPipeline;

    let (bytes, _) = synthetic_capture(26);
    let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);

    let mut legacy_events = Vec::new();
    GatewayServer::new(ServerConfig::from(config()))
        .run_streams(
            vec![NamedStream::new("cap", &bytes[..])],
            &mut legacy_events,
            &mut Vec::new(),
        )
        .unwrap();
    let legacy = String::from_utf8(legacy_events).unwrap();
    assert!(!legacy.contains("\"score\""), "{legacy}");
    assert!(!legacy.contains("\"features\""), "{legacy}");

    let mut gw = config();
    gw.pipeline = Some(DetectionPipeline::standard(detector).shared());
    let registry = Arc::new(ctc_obs::Registry::new());
    let server = GatewayServer::new(ServerConfig::from(gw)).with_registry(Arc::clone(&registry));
    let mut events = Vec::new();
    let report = server
        .run_streams(
            vec![NamedStream::new("cap", &bytes[..])],
            &mut events,
            &mut Vec::new(),
        )
        .unwrap();
    assert_eq!(report.metrics.frames_decoded, 2);
    assert_eq!(report.metrics.forgeries, 1);

    let events = String::from_utf8(events).unwrap();
    let frames: Vec<&str> = events
        .lines()
        .filter(|l| l.contains("\"type\":\"frame\""))
        .collect();
    assert_eq!(frames.len(), 2, "{events}");
    // Verdicts match the legacy run line-for-line; scores ride alongside.
    for (frame, legacy_frame) in frames
        .iter()
        .zip(legacy.lines().filter(|l| l.contains("\"type\":\"frame\"")))
    {
        assert_eq!(field(frame, "verdict"), field(legacy_frame, "verdict"));
        assert_eq!(field(frame, "de2"), field(legacy_frame, "de2"));
        let score: f64 = field(frame, "score").parse().unwrap();
        assert!(score.is_finite(), "{frame}");
        for feature in ["de2_ideal", "clustered_evm", "cp_similarity", "rssi_db"] {
            assert!(
                frame.contains(&format!("\"{feature}\":")),
                "{feature} missing from {frame}"
            );
        }
    }
    assert_eq!(field(frames[0], "verdict"), "\"authentic\"");
    assert_eq!(field(frames[1], "verdict"), "\"attack\"");

    let text = registry.render();
    assert!(text.contains("# TYPE ctc_detector_score gauge"), "{text}");
    assert!(text.contains("ctc_detector_score{feature=\"de2_ideal\"}"));
    assert!(text.contains("ctc_detector_score{feature=\"fused\"}"));
}

/// Per-stream metrics land in the registry labelled `{stream="..."}`,
/// next to the unlabelled aggregates and the session lifecycle counters.
#[cfg(feature = "telemetry")]
#[test]
fn per_stream_metrics_are_scrapeable() {
    let (bytes, total) = synthetic_capture(25);
    let registry = Arc::new(ctc_obs::Registry::new());
    let server =
        GatewayServer::new(ServerConfig::from(config())).with_registry(Arc::clone(&registry));
    server
        .run_streams(
            vec![
                NamedStream::new("up", &bytes[..]),
                NamedStream::new("down", &bytes[..]),
            ],
            &mut Vec::new(),
            &mut Vec::new(),
        )
        .unwrap();

    let text = registry.render();
    assert!(
        text.contains(&format!("ctc_gateway_samples_total {}", 2 * total)),
        "{text}"
    );
    assert!(text.contains(&format!(
        "ctc_gateway_samples_total{{stream=\"up\"}} {total}"
    )));
    assert!(text.contains(&format!(
        "ctc_gateway_samples_total{{stream=\"down\"}} {total}"
    )));
    assert!(text.contains("ctc_gateway_bursts_total{stream=\"up\"} 2"));
    assert!(text.contains("ctc_sessions_opened_total 2"));
    assert!(text.contains("ctc_sessions_active 0"));
}
