//! End-to-end flight-recorder trigger tests: a forged stream must
//! produce exactly one incident snapshot whose journal ends at the
//! triggering verdict, carrying its per-feature scores, the preceding
//! events, and registry deltas.
#![cfg(feature = "telemetry")]

use ctc_channel::noise::complex_gaussian;
use ctc_core::attack::Emulator;
use ctc_core::defense::{ChannelAssumption, DetectionPipeline, Detector};
use ctc_dsp::io::write_cf32;
use ctc_dsp::Complex;
use ctc_gateway::json::{parse, JsonValue};
use ctc_gateway::{FlightOptions, GatewayConfig, GatewayServer, NamedStream, ServerConfig};
use ctc_obs::Registry;
use ctc_zigbee::Transmitter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// noise | authentic | noise | forged | noise | forged | noise: two
/// forgeries, so "exactly one snapshot" is a real claim.
fn forged_capture(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma2 = 1e-3;
    let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    let mut stream: Vec<Complex> = Vec::new();
    let mut noise = |n: usize, stream: &mut Vec<Complex>| {
        stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
    };
    noise(700, &mut stream);
    stream.extend_from_slice(&authentic);
    noise(700, &mut stream);
    stream.extend_from_slice(&forged);
    noise(700, &mut stream);
    stream.extend_from_slice(&forged);
    noise(700, &mut stream);
    let mut bytes = Vec::new();
    write_cf32(&mut bytes, &stream).unwrap();
    bytes
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctc_flight_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
    v.get(key).unwrap_or_else(|| panic!("missing key {key:?}"))
}

#[test]
fn forged_stream_dumps_exactly_one_snapshot_ending_at_the_verdict() {
    let dir = fresh_dir("forgery");
    let out = dir.join("incident.json");

    let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let mut gw = GatewayConfig::builder()
        .detector(detector)
        .workers(1) // deterministic processing order
        .stats_interval(None)
        .build()
        .unwrap();
    gw.pipeline = Some(DetectionPipeline::standard(detector).shared());
    let mut config = ServerConfig::from(gw);
    config.shards = 1;

    let registry = Arc::new(Registry::new());
    let server = GatewayServer::new(config)
        .with_registry(Arc::clone(&registry))
        .with_flight(FlightOptions {
            out: Some(out.clone()),
            ..FlightOptions::default()
        });

    let bytes = forged_capture(31);
    let report = server
        .run_streams(
            vec![NamedStream::new("uplink", &bytes[..])],
            &mut std::io::sink(),
            &mut std::io::sink(),
        )
        .unwrap();
    assert!(report.forgery_detected(), "the stream must trip exit 3");
    assert!(
        report.metrics.forgeries >= 2,
        "both forged frames must be accepted so exactly-one is meaningful"
    );

    // Exactly one snapshot file, written by the first forgery only.
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 1, "expected exactly one snapshot in {dir:?}");
    let text = std::fs::read_to_string(&out).unwrap();
    let doc = parse(&text).unwrap();

    assert_eq!(get(&doc, "type").as_str(), Some("ctc_incident"));
    assert_eq!(get(&doc, "trigger").as_str(), Some("forgery"));
    assert_eq!(get(&doc, "dump_seq").as_f64(), Some(1.0));

    // The journal ends at the triggering verdict, scores attached.
    let events = get(&doc, "events").as_array().unwrap();
    assert!(events.len() > 1, "preceding journal events must be present");
    let last = events.last().unwrap();
    assert_eq!(get(last, "kind").as_str(), Some("verdict"));
    assert_eq!(get(last, "accepted_forgery").as_bool(), Some(true));
    let scores = get(last, "scores").as_object().unwrap();
    assert!(
        scores.iter().any(|(name, _)| name == "de2_ideal"),
        "per-feature scores must be named: {scores:?}"
    );
    assert!(get(last, "de2").as_f64().is_some());
    assert!(get(last, "fused").as_f64().is_some());

    // Preceding events include the burst and its stage boundaries.
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| get(e, "kind").as_str())
        .collect();
    assert!(kinds.contains(&"session_open"), "{kinds:?}");
    assert!(kinds.contains(&"burst"), "{kinds:?}");
    assert!(kinds.contains(&"stage"), "{kinds:?}");
    // Exactly one verdict carries the accepted flag in this window: the
    // journal stopped at the first forgery.
    let accepted = events
        .iter()
        .filter(|e| {
            get(e, "kind").as_str() == Some("verdict")
                && e.get("accepted_forgery").and_then(JsonValue::as_bool) == Some(true)
        })
        .count();
    assert_eq!(accepted, 1, "journal must stop at the first forgery");

    // Stage latency breakdown covers the pipeline stages seen so far.
    let stages = get(&doc, "stages").as_object().unwrap();
    for want in ["ingest", "queue", "decode", "classify"] {
        assert!(
            stages.iter().any(|(name, _)| name == want),
            "stage {want} missing from {stages:?}"
        );
    }

    // Registry snapshot + delta-from-baseline made it in, and the delta
    // shows the forgery counter moving.
    let registry_section = get(&doc, "registry").as_array().unwrap();
    assert!(!registry_section.is_empty());
    let delta = get(&doc, "delta").as_array().unwrap();
    assert!(
        delta.iter().any(|d| {
            get(d, "name").as_str() == Some("ctc_gateway_frames_total")
                && d.get("labels")
                    .and_then(|l| l.get("verdict"))
                    .and_then(JsonValue::as_str)
                    == Some("attack")
        }),
        "forgery delta missing"
    );

    // Session table and effective config ride along.
    let sessions = get(&doc, "sessions").as_array().unwrap();
    assert_eq!(get(&sessions[0], "stream").as_str(), Some("uplink"));
    let cfg = get(&doc, "config");
    assert_eq!(get(cfg, "workers").as_f64(), Some(1.0));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Drop-budget exhaustion is the second auto trigger: a tiny queue fed
/// at line rate with a blocked worker pool must dump a snapshot whose
/// trigger is `drop_budget` and whose journal contains drop events.
#[test]
fn drop_budget_exhaustion_triggers_a_snapshot() {
    let dir = fresh_dir("drops");
    let out = dir.join("incident.json");

    let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let gw = GatewayConfig::builder()
        .detector(detector)
        .workers(1)
        .queue_depth(1) // every second burst sheds
        .stats_interval(None)
        .build()
        .unwrap();
    let mut config = ServerConfig::from(gw);
    config.shards = 1;

    let server = GatewayServer::new(config).with_flight(FlightOptions {
        out: Some(out.clone()),
        drop_budget: Some(1),
        ..FlightOptions::default()
    });

    // Many bursts back-to-back; queue depth 1 guarantees shedding.
    let mut bytes = Vec::new();
    let one = forged_capture(32);
    for _ in 0..6 {
        bytes.extend_from_slice(&one);
    }
    let report = server
        .run_streams(
            vec![NamedStream::new("burst-storm", &bytes[..])],
            &mut std::io::sink(),
            &mut std::io::sink(),
        )
        .unwrap();

    if report.metrics.bursts_dropped == 0 {
        // Worker kept pace (fast machine): the trigger can't fire, and
        // that's fine — the forgery trigger owns this run instead.
        std::fs::remove_dir_all(&dir).unwrap();
        return;
    }
    let text = std::fs::read_to_string(&out).unwrap();
    let doc = parse(&text).unwrap();
    let trigger = get(&doc, "trigger").as_str().unwrap().to_string();
    assert!(
        trigger == "drop_budget" || trigger == "forgery",
        "unexpected trigger {trigger}"
    );
    if trigger == "drop_budget" {
        let events = get(&doc, "events").as_array().unwrap();
        assert_eq!(
            get(events.last().unwrap(), "kind").as_str(),
            Some("drop"),
            "journal must end at the triggering drop"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
