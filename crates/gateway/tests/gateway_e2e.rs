//! End-to-end gateway tests: a synthetic over-the-air capture streamed
//! through the full pipeline, checked at the JSONL boundary — the same
//! surface the CI smoke test and shell users consume.
//!
//! These tests deliberately stay on the deprecated [`Gateway::run`]: they
//! are the compatibility contract that the one-session wrapper keeps its
//! legacy output byte-for-byte (the multi-stream API has its own suite in
//! `server_e2e.rs`).

#![allow(deprecated)]

use ctc_channel::noise::complex_gaussian;
use ctc_core::attack::Emulator;
use ctc_core::defense::{ChannelAssumption, Detector};
use ctc_dsp::io::write_cf32;
use ctc_dsp::Complex;
use ctc_gateway::{Gateway, GatewayConfig};
use ctc_zigbee::Transmitter;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// noise | authentic frame | noise | forged frame | noise, as cf32 bytes.
fn synthetic_capture(seed: u64) -> (Vec<u8>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma2 = 1e-3;
    let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    let mut stream: Vec<Complex> = Vec::new();
    let mut noise = |n: usize, stream: &mut Vec<Complex>| {
        stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
    };
    noise(700, &mut stream);
    stream.extend_from_slice(&authentic);
    noise(700, &mut stream);
    stream.extend_from_slice(&forged);
    noise(700, &mut stream);
    let total = stream.len();
    let mut bytes = Vec::new();
    write_cf32(&mut bytes, &stream).unwrap();
    (bytes, total)
}

fn config() -> GatewayConfig {
    GatewayConfig {
        detector: Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
        stats_interval: None,
        ..GatewayConfig::default()
    }
}

/// Extracts `"key":value` (raw JSON text) from a rendered line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}"));
    let rest = &line[at + pat.len()..];
    let end = if let Some(inner) = rest.strip_prefix('"') {
        inner.find('"').map(|i| i + 2).unwrap()
    } else {
        rest.find([',', '}']).unwrap()
    };
    &rest[..end]
}

#[test]
fn gateway_flags_the_forged_frame_over_jsonl() {
    let (bytes, total) = synthetic_capture(11);
    let mut events = Vec::new();
    let mut stats = Vec::new();
    let report = Gateway::new(config())
        .run(&bytes[..], &mut events, &mut stats)
        .unwrap();

    assert_eq!(report.metrics.samples_in as usize, total);
    assert_eq!(report.metrics.bursts, 2);
    assert_eq!(report.metrics.frames_decoded, 2);
    assert_eq!(report.metrics.forgeries, 1);
    assert_eq!(report.metrics.bursts_dropped, 0);
    assert_eq!(report.metrics.samples_dropped, 0);
    assert!(report.forgery_detected());

    let events = String::from_utf8(events).unwrap();
    let frames: Vec<&str> = events
        .lines()
        .filter(|l| l.contains("\"type\":\"frame\""))
        .collect();
    assert_eq!(frames.len(), 2, "events:\n{events}");
    // In-order by sequence number despite the racing worker pool.
    assert_eq!(field(frames[0], "seq"), "0");
    assert_eq!(field(frames[1], "seq"), "1");
    assert_eq!(field(frames[0], "verdict"), "\"authentic\"");
    assert_eq!(field(frames[1], "verdict"), "\"attack\"");
    assert_eq!(field(frames[0], "accepted_forgery"), "false");
    assert_eq!(field(frames[1], "accepted_forgery"), "true");
    // Payload "00000" as lowercase hex.
    assert_eq!(field(frames[0], "payload_hex"), "\"3030303030\"");
    assert_eq!(field(frames[1], "payload_hex"), "\"3030303030\"");
    for f in &frames {
        assert_eq!(field(f, "truncated"), "false");
        assert!(f.contains("\"latency\":{\"queue_us\":"), "latency in {f}");
    }

    // The final stats line always lands on the stats writer.
    let stats = String::from_utf8(stats).unwrap();
    let last = stats.lines().last().unwrap();
    assert_eq!(field(last, "type"), "\"stats\"");
    assert_eq!(field(last, "forgeries"), "1");
    assert_eq!(field(last, "samples_dropped"), "0");
}

/// The gateway's event content is invariant to chunk size: only latency
/// numbers may differ between runs.
#[test]
fn gateway_events_are_chunking_invariant() {
    let (bytes, _) = synthetic_capture(12);
    let strip_latency = |events: &str| -> Vec<String> {
        events
            .lines()
            .map(|l| l.split(",\"latency\"").next().unwrap().to_string())
            .collect()
    };
    let mut reference = None;
    for chunk_samples in [64usize, 1000, 65_536] {
        let cfg = GatewayConfig {
            chunk_samples,
            ..config()
        };
        let mut events = Vec::new();
        let report = Gateway::new(cfg)
            .run(&bytes[..], &mut events, &mut Vec::new())
            .unwrap();
        assert_eq!(report.metrics.samples_dropped, 0);
        let lines = strip_latency(&String::from_utf8(events).unwrap());
        assert_eq!(lines.len(), 2, "chunk {chunk_samples}");
        match &reference {
            None => reference = Some(lines),
            Some(r) => assert_eq!(&lines, r, "chunk {chunk_samples}"),
        }
    }
}

/// The JSONL event stream must be invariant under worker-pool size: the
/// sink reorders by sequence number, so 1, 2, or 4 racing workers must
/// emit identical events (only the wall-clock `latency` object may vary).
#[test]
fn gateway_events_are_worker_pool_invariant() {
    let (bytes, _) = synthetic_capture(14);
    let normalize = |events: &str| -> Vec<ctc_gateway::JsonValue> {
        events
            .lines()
            .map(|l| {
                let parsed = ctc_gateway::json::parse(l).unwrap_or_else(|e| panic!("{l}: {e}"));
                match parsed {
                    ctc_gateway::JsonValue::Object(fields) => ctc_gateway::JsonValue::Object(
                        fields.into_iter().filter(|(k, _)| k != "latency").collect(),
                    ),
                    other => other,
                }
            })
            .collect()
    };
    let mut reference = None;
    for workers in [1usize, 2, 4] {
        let cfg = GatewayConfig {
            workers,
            ..config()
        };
        let mut events = Vec::new();
        let report = Gateway::new(cfg)
            .run(&bytes[..], &mut events, &mut Vec::new())
            .unwrap();
        assert_eq!(report.metrics.samples_dropped, 0, "workers {workers}");
        let lines = normalize(&String::from_utf8(events).unwrap());
        assert_eq!(lines.len(), 2, "workers {workers}");
        match &reference {
            None => reference = Some(lines),
            Some(r) => assert_eq!(&lines, r, "workers {workers}"),
        }
    }
}

/// A write target shared between the trace sink and the asserting test.
#[cfg(feature = "telemetry")]
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

#[cfg(feature = "telemetry")]
impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One parsed span record from the JSONL trace log.
#[cfg(feature = "telemetry")]
#[derive(Debug, Clone)]
struct SpanRecord {
    span: u64,
    seq: u64,
    stage: String,
    start_us: u64,
    end_us: u64,
}

#[cfg(feature = "telemetry")]
fn parse_trace(text: &str) -> Vec<SpanRecord> {
    text.lines()
        .map(|l| SpanRecord {
            span: field(l, "span").parse().unwrap(),
            seq: field(l, "seq").parse().unwrap(),
            stage: field(l, "stage").trim_matches('"').to_string(),
            start_us: field(l, "start_us").parse().unwrap(),
            end_us: field(l, "end_us").parse().unwrap(),
        })
        .collect()
}

/// The span log must reconstruct, for every emitted frame, a contiguous
/// stage chain ingest → queue → decode → classify → emit: each stage's
/// `end_us` is the next stage's `start_us` (the pipeline hands the same
/// `Instant` across every boundary), timestamps are monotonic, and the
/// chain is invariant under worker-pool size — only the numbers may vary.
#[cfg(feature = "telemetry")]
#[test]
fn trace_log_reconstructs_contiguous_stage_chains() {
    const CHAIN: [&str; 5] = ["ingest", "queue", "decode", "classify", "emit"];
    let (bytes, _) = synthetic_capture(11);
    for workers in [1usize, 2, 4] {
        let buf = SharedBuf::default();
        let sink = std::sync::Arc::new(ctc_obs::TraceSink::new(Box::new(buf.clone())));
        let cfg = GatewayConfig {
            workers,
            ..config()
        };
        let report = Gateway::new(cfg)
            .with_trace_sink(sink)
            .run(&bytes[..], &mut Vec::new(), &mut Vec::new())
            .unwrap();
        assert_eq!(report.metrics.frames_decoded, 2, "workers {workers}");
        assert_eq!(report.metrics.bursts_dropped, 0, "workers {workers}");

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let records = parse_trace(&text);
        // Exactly one full chain per burst, nothing else in the log.
        assert_eq!(records.len(), 2 * CHAIN.len(), "workers {workers}:\n{text}");
        for seq in [0u64, 1] {
            let mut chain: Vec<&SpanRecord> = records.iter().filter(|r| r.seq == seq).collect();
            // Workers race, so records may be out of order in the file;
            // the timestamps, not file order, define the chain.
            chain.sort_by_key(|r| (r.start_us, r.end_us));
            let stages: Vec<&str> = chain.iter().map(|r| r.stage.as_str()).collect();
            assert_eq!(stages, CHAIN, "workers {workers}, seq {seq}");
            // One span per burst, never the disabled sentinel.
            assert_ne!(chain[0].span, 0);
            assert!(chain.iter().all(|r| r.span == chain[0].span));
            for r in &chain {
                assert!(r.start_us <= r.end_us, "workers {workers}: {r:?}");
            }
            // Contiguity: stage N ends exactly where stage N+1 starts.
            for pair in chain.windows(2) {
                assert_eq!(
                    pair[0].end_us, pair[1].start_us,
                    "workers {workers}, seq {seq}: gap between {} and {}",
                    pair[0].stage, pair[1].stage
                );
            }
        }
        // The two bursts carry distinct spans.
        let span_of = |seq| records.iter().find(|r| r.seq == seq).unwrap().span;
        assert_ne!(span_of(0), span_of(1), "workers {workers}");
    }
}

/// A run published into a registry must expose the canonical metric names
/// with values matching the report — the contract `ctc monitor
/// --metrics-addr` and the CI metrics smoke step scrape against.
#[cfg(feature = "telemetry")]
#[test]
fn registry_exposes_canonical_names_after_a_run() {
    let (bytes, total) = synthetic_capture(11);
    let registry = std::sync::Arc::new(ctc_obs::Registry::new());
    let report = Gateway::new(config())
        .with_registry(std::sync::Arc::clone(&registry))
        .run(&bytes[..], &mut Vec::new(), &mut Vec::new())
        .unwrap();
    assert_eq!(report.metrics.forgeries, 1);

    let text = registry.render();
    for line in [
        format!("ctc_gateway_samples_total {total}"),
        "ctc_gateway_bursts_total 2".to_string(),
        "ctc_gateway_frames_total{verdict=\"attack\"} 1".to_string(),
        "ctc_gateway_frames_total{verdict=\"authentic\"} 1".to_string(),
        "ctc_gateway_frames_total{verdict=\"undecoded\"} 0".to_string(),
        "ctc_queue_dropped_total 0".to_string(),
        "ctc_queue_dropped_samples_total 0".to_string(),
        "ctc_gateway_latency_us_count 2".to_string(),
        "ctc_pool_misses_total".to_string(),
    ] {
        assert!(text.contains(&line), "missing `{line}` in:\n{text}");
    }
    // Both decoded frames fell into some finite latency bucket.
    assert!(
        text.contains("ctc_gateway_latency_us_bucket{le=\"+Inf\"} 2"),
        "{text}"
    );
}

/// A worker pool must keep up with a realistic sample clock — with the
/// pooled, allocation-free sample path the bench sits near 40 Msamples/s,
/// so 10 is a conservative floor with headroom for slow CI machines. Debug
/// builds are an order of magnitude slower, so the floor only applies in
/// release.
#[cfg(not(debug_assertions))]
#[test]
fn gateway_sustains_10_msamples_per_sec() {
    let mut rng = StdRng::seed_from_u64(13);
    let frame = Transmitter::new().transmit_payload(b"00000").unwrap();
    // Mostly idle channel with periodic traffic: 2M samples total.
    let mut stream: Vec<Complex> = Vec::with_capacity(2_000_000);
    while stream.len() < 2_000_000 {
        stream.extend((0..40_000).map(|_| complex_gaussian(&mut rng, 1e-3)));
        stream.extend_from_slice(&frame);
    }
    let mut bytes = Vec::new();
    write_cf32(&mut bytes, &stream).unwrap();

    let report = Gateway::new(config())
        .run(&bytes[..], &mut Vec::new(), &mut Vec::new())
        .unwrap();
    assert_eq!(report.metrics.samples_dropped, 0);
    assert!(report.metrics.frames_decoded >= 40);
    assert!(
        report.msamples_per_sec() >= 10.0,
        "throughput {:.2} Msamples/s",
        report.msamples_per_sec()
    );
}
