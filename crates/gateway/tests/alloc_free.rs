//! Proof of the allocation-free sample path: a counting global allocator
//! wraps `System`, and the steady-state ingest loop (read chunk → energy
//! detection → burst splitting) must make **zero** heap allocations per
//! chunk once its buffers have warmed up.
//!
//! Single-threaded on purpose: the counter is process-global, so these
//! tests run the pipeline stages inline rather than through the threaded
//! [`Gateway`](ctc_gateway::Gateway) front door.

use ctc_core::attack::EnergyDetector;
use ctc_core::defense::{BurstCapture, BurstSplitter};
use ctc_dsp::io::Cf32Reader;
use ctc_dsp::{BufferPool, Complex};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation (frees are not interesting:
/// the criterion is that steady state requests no new memory).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A pseudo-noise cf32 byte stream (xorshift — no rand, no allocation).
fn noise_cf32(samples: usize, seed: u64, amplitude: f32) -> Vec<u8> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to roughly uniform [-1, 1).
        (state >> 11) as f32 / (1u64 << 52) as f32 * 2.0 - 1.0
    };
    let mut bytes = Vec::with_capacity(samples * 8);
    for _ in 0..samples {
        bytes.extend_from_slice(&(next() * amplitude).to_le_bytes());
        bytes.extend_from_slice(&(next() * amplitude).to_le_bytes());
    }
    bytes
}

/// The gateway ingest loop in steady state — reader chunking plus burst
/// splitting over a quiet channel — allocates nothing per chunk.
#[test]
fn ingest_loop_steady_state_allocates_nothing() {
    const CHUNK: usize = 4096;
    const WARMUP_CHUNKS: usize = 8;
    const MEASURED_CHUNKS: usize = 64;

    let bytes = noise_cf32((WARMUP_CHUNKS + MEASURED_CHUNKS) * CHUNK, 0x5eed, 0.01);
    let mut reader = Cf32Reader::new(Cursor::new(&bytes)).with_chunk_samples(CHUNK);
    let mut splitter = BurstSplitter::new(EnergyDetector::default());
    let mut chunk: Vec<Complex> = Vec::new();
    let mut captures: Vec<BurstCapture> = Vec::new();

    // Warm-up: the reader's byte buffer, the chunk vector and the
    // splitter's history ring all grow to their steady-state sizes here.
    for _ in 0..WARMUP_CHUNKS {
        assert_eq!(reader.read_chunk(&mut chunk).unwrap(), CHUNK);
        splitter.push_into(&chunk, &mut captures);
        assert!(captures.is_empty(), "noise must not trigger bursts");
    }

    let before = allocations();
    for _ in 0..MEASURED_CHUNKS {
        assert_eq!(reader.read_chunk(&mut chunk).unwrap(), CHUNK);
        splitter.push_into(&chunk, &mut captures);
        assert!(captures.is_empty(), "noise must not trigger bursts");
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state ingest made {delta} allocations over {MEASURED_CHUNKS} chunks"
    );
}

/// The flight recorder rides the same hot path, so it is held to the
/// same bar: journaling a burst, its stage boundaries and a queue-depth
/// sample for every chunk — against a recorder at the default capacity,
/// wrapping many times over — requests no heap memory at all.
#[cfg(feature = "telemetry")]
#[test]
fn flight_recorder_steady_state_allocates_nothing() {
    use ctc_obs::flight::{EventKind, FlightEvent, FlightRecorder};

    const CHUNK: usize = 4096;
    const WARMUP_CHUNKS: usize = 8;
    const MEASURED_CHUNKS: usize = 64;

    let recorder = FlightRecorder::new(); // DEFAULT_CAPACITY slots
    let bytes = noise_cf32((WARMUP_CHUNKS + MEASURED_CHUNKS) * CHUNK, 0xf11e, 0.01);
    let mut reader = Cf32Reader::new(Cursor::new(&bytes)).with_chunk_samples(CHUNK);
    let mut splitter = BurstSplitter::new(EnergyDetector::default());
    let mut chunk: Vec<Complex> = Vec::new();
    let mut captures: Vec<BurstCapture> = Vec::new();

    let record_chunk = |recorder: &FlightRecorder, seq: u64, n: usize| {
        let t = recorder.now_us();
        recorder.record(
            FlightEvent::new(EventKind::Burst, 1, seq, t).with_args(seq * CHUNK as u64, n as u64),
        );
        recorder.record(FlightEvent::new(EventKind::Stage, 1, seq, t).with_args(0, 17));
        recorder.record(FlightEvent::new(EventKind::QueueDepth, 1, seq, t).with_args(3, 0));
    };

    for seq in 0..WARMUP_CHUNKS as u64 {
        assert_eq!(reader.read_chunk(&mut chunk).unwrap(), CHUNK);
        splitter.push_into(&chunk, &mut captures);
        record_chunk(&recorder, seq, chunk.len());
    }

    let before = allocations();
    for seq in 0..MEASURED_CHUNKS as u64 {
        assert_eq!(reader.read_chunk(&mut chunk).unwrap(), CHUNK);
        splitter.push_into(&chunk, &mut captures);
        record_chunk(&recorder, seq, chunk.len());
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "flight-recorder steady state made {delta} allocations over {MEASURED_CHUNKS} chunks"
    );
    assert_eq!(
        recorder.recorded(),
        ((WARMUP_CHUNKS + MEASURED_CHUNKS) * 3) as u64,
        "every event was journaled"
    );
}

/// With frames in the stream, capture buffers come from the shared pool:
/// after one pass has warmed the pool, further bursts are free-list hits,
/// never fresh allocations.
#[test]
fn burst_captures_reuse_pooled_buffers() {
    // A square burst is enough for the energy detector; the decode side is
    // not under test here.
    let mut bytes = noise_cf32(4096, 7, 0.01);
    let mut burst = Vec::new();
    for i in 0..600 {
        let v = if (i / 4) % 2 == 0 { 1.0f32 } else { -1.0 };
        burst.extend_from_slice(&v.to_le_bytes());
        burst.extend_from_slice(&0.0f32.to_le_bytes());
    }
    bytes.extend_from_slice(&burst);
    bytes.extend_from_slice(&noise_cf32(4096, 11, 0.01));

    let pool = BufferPool::new();
    let run = |pool: &BufferPool| {
        let mut reader = Cf32Reader::new(Cursor::new(&bytes)).with_chunk_samples(1024);
        let mut splitter = BurstSplitter::new(EnergyDetector::default()).with_pool(pool.clone());
        let mut chunk: Vec<Complex> = Vec::new();
        let mut captures: Vec<BurstCapture> = Vec::new();
        let mut total = 0usize;
        while reader.read_chunk(&mut chunk).unwrap() > 0 {
            splitter.push_into(&chunk, &mut captures);
            total += captures.len();
            captures.clear(); // worker done: buffers return to the pool
        }
        splitter.finish_into(&mut captures);
        total += captures.len();
        total
    };

    assert_eq!(run(&pool), 1, "the burst is found");
    let misses_after_first = pool.misses();
    assert_eq!(run(&pool), 1);
    assert_eq!(
        pool.misses(),
        misses_after_first,
        "second pass allocated fresh capture buffers instead of pool hits"
    );
    assert!(pool.hits() >= 1);
}
