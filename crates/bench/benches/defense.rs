//! Criterion benches for the defense — Sec. VII-A2: cumulant estimation is
//! O(N) in the number of complex samples, so full detection is linear in
//! the frame length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctc_core::defense::{constellation_from_reception, ChannelAssumption, Detector, Features};
use ctc_dsp::cumulants::Cumulants;
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn qpsk_cloud(n: usize) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| {
            let re: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let im: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            Complex::new(re + rng.gen_range(-0.1..0.1), im + rng.gen_range(-0.1..0.1))
        })
        .collect()
}

/// Raw cumulant estimation vs sample count (claim: O(N)).
fn bench_cumulant_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cumulant_scaling");
    group.sample_size(30);
    for n in [256usize, 1024, 4096, 16384] {
        let pts = qpsk_cloud(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| Cumulants::estimate(std::hint::black_box(pts)).expect("nonempty"))
        });
    }
    group.finish();
}

/// Full feature extraction including the fourth-power line search.
fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(30);
    for n in [256usize, 1024, 4096] {
        let pts = qpsk_cloud(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| Features::estimate(std::hint::black_box(pts)).expect("nonempty"))
        });
    }
    group.finish();
}

/// End-to-end: receive one frame and run the detector.
fn bench_detect_frame(c: &mut Criterion) {
    let wave = Transmitter::new()
        .transmit_payload(b"00000")
        .expect("short payload");
    let rx = Receiver::usrp();
    let reception = rx.receive(&wave);
    let detector = Detector::new(ChannelAssumption::Real);
    let mut group = c.benchmark_group("detector");
    group.sample_size(30);
    group.bench_function("receive_frame", |b| {
        b.iter(|| rx.receive(std::hint::black_box(&wave)))
    });
    group.bench_function("constellation_reconstruction", |b| {
        b.iter(|| constellation_from_reception(std::hint::black_box(&reception)))
    });
    group.bench_function("detect", |b| {
        b.iter(|| {
            detector
                .detect(std::hint::black_box(&reception))
                .expect("samples")
        })
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_cumulant_scaling,
    bench_feature_extraction,
    bench_detect_frame
);
criterion_main!(benches);
