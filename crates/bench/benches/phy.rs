//! Criterion benches for the PHY substrates: ZigBee and WiFi chains, the
//! 64-point FFT at the heart of both, and the Viterbi decoder that gates
//! the bit-chain attack mode.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ctc_dsp::{fft, Complex};
use ctc_wifi::convolutional::{decode, encode, Rate};
use ctc_wifi::WifiTransmitter;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_fft64(c: &mut Criterion) {
    let x: Vec<Complex> = (0..64)
        .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
        .collect();
    let mut group = c.benchmark_group("fft");
    group.throughput(Throughput::Elements(64));
    group.bench_function("fft64", |b| b.iter(|| fft::fft64(std::hint::black_box(&x))));
    group.bench_function("dft64_naive_oracle", |b| {
        b.iter(|| fft::dft_naive(std::hint::black_box(&x)))
    });
    group.finish();
}

fn bench_zigbee_chain(c: &mut Criterion) {
    let tx = Transmitter::new();
    let payload = b"0000000000";
    let wave = tx.transmit_payload(payload).expect("short payload");
    let rx = Receiver::usrp();
    let soft_rx = Receiver::commodity();
    let mut group = c.benchmark_group("zigbee_chain");
    group.sample_size(30);
    group.throughput(Throughput::Elements(wave.len() as u64));
    group.bench_function("tx_frame", |b| {
        b.iter(|| {
            tx.transmit_payload(std::hint::black_box(payload))
                .expect("short")
        })
    });
    group.bench_function("rx_frame_hard", |b| {
        b.iter(|| rx.receive(std::hint::black_box(&wave)))
    });
    group.bench_function("rx_frame_soft", |b| {
        b.iter(|| soft_rx.receive(std::hint::black_box(&wave)))
    });
    group.finish();
}

fn bench_wifi_chain(c: &mut Criterion) {
    let tx = WifiTransmitter::new();
    let mut rng = StdRng::seed_from_u64(11);
    let bits: Vec<u8> = (0..864).map(|_| rng.gen_range(0..2u8)).collect();
    let mut group = c.benchmark_group("wifi_chain");
    group.sample_size(30);
    group.throughput(Throughput::Elements(bits.len() as u64));
    group.bench_function("tx_4_ofdm_symbols", |b| {
        b.iter(|| tx.transmit_bits(std::hint::black_box(&bits)))
    });
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let data: Vec<u8> = (0..432).map(|_| rng.gen_range(0..2u8)).collect();
    let coded = encode(&data, Rate::ThreeQuarters);
    let mut group = c.benchmark_group("viterbi");
    group.sample_size(30);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("decode_432_bits_rate_3_4", |b| {
        b.iter(|| decode(std::hint::black_box(&coded), Rate::ThreeQuarters).expect("aligned"))
    });
    group.finish();
}

fn bench_wifi_rx(c: &mut Criterion) {
    use ctc_wifi::WifiReceiver;
    let frame = WifiTransmitter::new()
        .transmit_frame(b"benchmark frame payload")
        .expect("fits");
    let mut group = c.benchmark_group("wifi_rx");
    group.sample_size(20);
    group.throughput(Throughput::Elements(frame.len() as u64));
    group.bench_function("receive_frame", |b| {
        let rx = WifiReceiver::new();
        b.iter(|| rx.receive(std::hint::black_box(&frame)).expect("clean"));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_fft64,
    bench_zigbee_chain,
    bench_wifi_chain,
    bench_viterbi,
    bench_wifi_rx
);
criterion_main!(benches);
