//! Criterion benches for the attack pipeline — the complexity claims of
//! paper Sec. VII-A1: end-to-end emulation is O(M) in the number of
//! observed samples (the 64-point FFT per block is constant-size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctc_core::attack::quantizer::quantize_points;
use ctc_core::attack::spectrum::{block_spectra, select_subcarriers};
use ctc_core::attack::Emulator;
use ctc_dsp::resample::interpolate;
use ctc_zigbee::Transmitter;

fn observed(payload_len: usize) -> Vec<ctc_dsp::Complex> {
    let payload = vec![b'7'; payload_len];
    Transmitter::new()
        .transmit_payload(&payload)
        .expect("payload fits")
}

/// End-to-end emulation time vs input size: the ratio time/M should be flat.
fn bench_attack_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_scaling");
    group.sample_size(20);
    for payload_len in [5usize, 20, 60, 120] {
        let wave = observed(payload_len);
        group.throughput(Throughput::Elements(wave.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(wave.len()), &wave, |b, wave| {
            let emulator = Emulator::new();
            b.iter(|| emulator.emulate(std::hint::black_box(wave)));
        });
    }
    group.finish();
}

/// Stage costs: interpolation, block FFTs, selection, quantization.
fn bench_attack_stages(c: &mut Criterion) {
    let wave = observed(20);
    let wide = interpolate(&wave, 5).expect("factor 5");
    let spectra = block_spectra(&wide);
    let bins = select_subcarriers(&spectra, 3.0, 7);
    let chosen: Vec<ctc_dsp::Complex> = spectra
        .iter()
        .flat_map(|s| bins.iter().map(|&b| s.components[b]))
        .collect();

    let mut group = c.benchmark_group("attack_stages");
    group.sample_size(20);
    group.bench_function("interpolate_x5", |b| {
        b.iter(|| interpolate(std::hint::black_box(&wave), 5).expect("factor 5"))
    });
    group.bench_function("block_ffts", |b| {
        b.iter(|| block_spectra(std::hint::black_box(&wide)))
    });
    group.bench_function("subcarrier_selection", |b| {
        b.iter(|| select_subcarriers(std::hint::black_box(&spectra), 3.0, 7))
    });
    group.bench_function("qam_quantization_global_search", |b| {
        b.iter(|| quantize_points(std::hint::black_box(&chosen), None))
    });
    group.finish();
}

/// The extension attackers: least-squares fitting and the constrained
/// full-frame construction.
fn bench_attack_variants(c: &mut Criterion) {
    use ctc_core::attack::{FullFrameAttack, LeastSquaresEmulator};
    let wave = observed(5);
    let mut group = c.benchmark_group("attack_variants");
    group.sample_size(10);
    group.bench_function("baseline_emulate", |b| {
        let e = Emulator::new();
        b.iter(|| e.emulate(std::hint::black_box(&wave)));
    });
    group.bench_function("least_squares_emulate", |b| {
        let e = LeastSquaresEmulator::new();
        b.iter(|| e.emulate(std::hint::black_box(&wave)));
    });
    group.bench_function("full_frame_emulate", |b| {
        let e = FullFrameAttack::new();
        b.iter(|| e.emulate(std::hint::black_box(&wave)));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_attack_scaling, bench_attack_stages, bench_attack_variants);
criterion_main!(benches);
