//! Criterion benches for the streaming gateway: ingest throughput in
//! samples/s as a function of decode/classify worker count, over a
//! realistically sparse channel (mostly noise, periodic frames).
//!
//! The acceptance floor for the pipeline is 4 Msamples/s at the default
//! worker count — one 4 MHz ZigBee channel in real time with headroom.
//!
//! Benches the single-shard server path — the exact configuration the
//! deprecated single-stream wrapper routes through — so the numbers stay
//! the regression baseline and a shard/session overhead regression shows
//! up right here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctc_channel::noise::complex_gaussian;
use ctc_core::attack::Emulator;
use ctc_core::defense::{ChannelAssumption, Detector};
use ctc_dsp::io::write_cf32;
use ctc_dsp::Complex;
use ctc_gateway::{GatewayConfig, GatewayServer, NamedStream, ServerConfig};
use ctc_zigbee::Transmitter;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A sparse channel capture as cf32 bytes: authentic and forged frames
/// separated by long noise gaps, `total` samples overall.
fn sparse_capture(total: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(29);
    let sigma2 = 1e-3;
    let authentic = Transmitter::new()
        .transmit_payload(b"00000")
        .expect("short payload");
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    let mut stream: Vec<Complex> = Vec::with_capacity(total);
    let mut forge = false;
    while stream.len() < total {
        stream.extend((0..20_000).map(|_| complex_gaussian(&mut rng, sigma2)));
        stream.extend_from_slice(if forge { &forged } else { &authentic });
        forge = !forge;
    }
    stream.truncate(total);
    let mut bytes = Vec::with_capacity(total * 8);
    write_cf32(&mut bytes, &stream).expect("vec write");
    bytes
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        shards: 1,
        ..ServerConfig::from(GatewayConfig {
            workers,
            detector: Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
            stats_interval: None,
            ..GatewayConfig::default()
        })
    }
}

/// One unlabelled stream through the single-shard server: byte- and
/// schedule-compatible with the legacy `Gateway::run` baseline.
///
/// The flight recorder is attached at its default capacity (no output
/// path, so no snapshots) — the 12% bench gate therefore prices in the
/// journaling overhead the recorder adds to every burst, stage and
/// verdict. The `--scalar` bench leg builds without `telemetry`, where
/// the recorder is compiled out entirely.
fn run_single(config: ServerConfig, bytes: &[u8]) -> ctc_gateway::ServerReport {
    let server = GatewayServer::new(config);
    #[cfg(feature = "telemetry")]
    let server = server.with_flight(ctc_gateway::FlightOptions::default());
    server
        .run_streams(
            vec![NamedStream::unlabelled(bytes)],
            &mut std::io::sink(),
            &mut std::io::sink(),
        )
        .expect("in-memory run")
}

/// Full-pipeline ingest rate vs worker count (Msamples/s = Melem/s here).
fn bench_gateway_throughput(c: &mut Criterion) {
    let total = 1 << 20;
    let bytes = sparse_capture(total);
    let mut group = c.benchmark_group("gateway_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = run_single(config(workers), &bytes);
                    assert!(report.metrics.frames_decoded > 0);
                    report
                })
            },
        );
    }
    group.finish();
}

/// Ingest-side cost alone: a noise-only stream never wakes the workers,
/// so this bounds the per-sample price of energy tracking + chunking.
fn bench_gateway_idle_channel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);
    let total = 1 << 20;
    let stream: Vec<Complex> = (0..total)
        .map(|_| complex_gaussian(&mut rng, 1e-3))
        .collect();
    let mut bytes = Vec::with_capacity(total * 8);
    write_cf32(&mut bytes, &stream).expect("vec write");
    let mut group = c.benchmark_group("gateway_idle_channel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("noise_only", |b| b.iter(|| run_single(config(2), &bytes)));
    group.finish();
}

criterion_group!(
    benches,
    bench_gateway_throughput,
    bench_gateway_idle_channel
);
criterion_main!(benches);
