//! Experiment harness regenerating every table and figure of the paper.
//!
//! ```text
//! experiments [--results <dir>] [--quick] <id>...
//! ids: table1 table2 table3 table4 table5 fig5 fig6 fig7 fig8 fig9
//!      fig10 fig11 fig12 fig14 roc ablation-subcarriers ablation-alpha
//!      bitchain cfo gap arms-race spectral coexistence fullframe
//!      channels detectors replay all
//! ```
//!
//! `--quick` shrinks trial counts ~20x for smoke runs; defaults match the
//! paper's counts where feasible.

use ctc_bench::experiments::{advanced, extensions, figures, protocol, tables};
use std::path::PathBuf;
use std::process::ExitCode;

struct Config {
    results: PathBuf,
    quick: bool,
}

fn scale(cfg: &Config, full: usize) -> usize {
    if cfg.quick {
        (full / 20).max(3)
    } else {
        full
    }
}

fn run_one(cfg: &Config, id: &str) -> Result<String, String> {
    let d = cfg.results.as_path();
    let out = match id {
        "table1" => tables::table1(d),
        "table2" => tables::table2(d, scale(cfg, 1000)),
        "table3" => tables::table3(d),
        "table4" => tables::table4(d, scale(cfg, 50)),
        "table5" => tables::table5(d, scale(cfg, 200)),
        "phy" => tables::phy_validation(d, scale(cfg, 60)),
        "fig5" => figures::fig5(d),
        "fig6" => figures::fig6(d),
        "fig7" => figures::fig7(d, scale(cfg, 100)),
        "fig8" => figures::fig8(d, scale(cfg, 100)),
        "fig9" => figures::fig9(d),
        "fig10" | "fig11" | "fig10_11" => figures::fig10_11(d, scale(cfg, 100)),
        "fig12" => figures::fig12(d, scale(cfg, 50), scale(cfg, 50)),
        "fig14" => figures::fig14(d, scale(cfg, 100)),
        "roc" => extensions::roc(d, 12.0, scale(cfg, 200)),
        "ablation-subcarriers" => extensions::ablation_subcarriers(d, scale(cfg, 200)),
        "ablation-alpha" => extensions::ablation_alpha(d, scale(cfg, 200)),
        "bitchain" => extensions::bitchain(d, scale(cfg, 100)),
        "cfo" => extensions::cfo_robustness(d, scale(cfg, 100)),
        "gap" => extensions::gap_summary(d, scale(cfg, 100)),
        "arms-race" => advanced::arms_race(d, scale(cfg, 50)),
        "spectral" => advanced::spectral(d),
        "coexistence" => advanced::coexistence(d, scale(cfg, 100)),
        "fullframe" => advanced::fullframe(d, scale(cfg, 100)),
        "channels" => protocol::channels(d, scale(cfg, 30)),
        "detectors" => protocol::detectors(d, scale(cfg, 60)),
        "replay" => protocol::replay(d),
        "lowsnr" => protocol::lowsnr(d, scale(cfg, 40)),
        "hardware" => protocol::hardware(d, scale(cfg, 100)),
        "alignment" => protocol::alignment(d),
        "scenario" => protocol::scenario(d),
        "timefreq" => advanced::timefreq(d),
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(out)
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "phy",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10_11",
    "fig12",
    "fig14",
    "roc",
    "ablation-subcarriers",
    "ablation-alpha",
    "bitchain",
    "cfo",
    "gap",
    "arms-race",
    "spectral",
    "coexistence",
    "fullframe",
    "channels",
    "detectors",
    "replay",
    "lowsnr",
    "hardware",
    "alignment",
    "scenario",
    "timefreq",
];

fn main() -> ExitCode {
    let mut cfg = Config {
        results: PathBuf::from("results"),
        quick: false,
    };
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--results" => match args.next() {
                Some(p) => cfg.results = PathBuf::from(p),
                None => {
                    eprintln!("--results needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => cfg.quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--results <dir>] [--quick] <id>...\nids: {} all",
                    ALL.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiment ids given; try `experiments all` or --help");
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        eprintln!("[experiments] running {id} ...");
        match run_one(&cfg, id) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
