//! Experiment harness regenerating every table and figure of the paper.
//!
//! ```text
//! experiments [--results <dir>] [--quick] [--jobs N] [--seed S]
//!             [--obs-dump] <id>...
//! ids: table1 table2 table3 table4 table5 phy fig5 fig6 fig7 fig8 fig9
//!      fig10 fig11 fig12 fig14 roc ablation-subcarriers ablation-alpha
//!      bitchain cfo gap arms-race spectral coexistence fullframe
//!      channels detectors replay lowsnr hardware alignment scenario
//!      timefreq all
//! ```
//!
//! `--quick` shrinks trial counts ~20x for smoke runs; defaults match the
//! paper's counts where feasible. `--jobs N` sets the worker-thread count
//! (default: available parallelism); results are byte-identical for any
//! value. Reports go to stdout; timing goes to stderr so redirected output
//! is reproducible. `--obs-dump` prints the engine's stage-timing metrics
//! (Prometheus text, from the global [`ctc_obs::Registry`]) to stderr
//! after the run.

use ctc_bench::engine::{available_jobs, Artifacts, TrialRunner, DEFAULT_BASE_SEED};
use ctc_bench::experiments::{build, ALL};
use std::path::PathBuf;
use std::process::ExitCode;

struct Config {
    results: PathBuf,
    quick: bool,
    jobs: usize,
    seed: u64,
    obs_dump: bool,
}

fn parse_args() -> Result<(Config, Vec<String>), String> {
    let mut cfg = Config {
        results: PathBuf::from("results"),
        quick: false,
        jobs: available_jobs(),
        seed: DEFAULT_BASE_SEED,
        obs_dump: false,
    };
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--results" => {
                cfg.results = args
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--results needs a directory argument")?;
            }
            "--jobs" => {
                cfg.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--jobs needs a positive integer")?;
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an unsigned integer")?;
            }
            "--quick" => cfg.quick = true,
            "--obs-dump" => cfg.obs_dump = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--results <dir>] [--quick] [--jobs N] [--seed S] [--obs-dump] <id>...\nids: {} all",
                    ALL.join(" ")
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    Ok((cfg, ids))
}

fn main() -> ExitCode {
    let (cfg, mut ids) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if ids.is_empty() {
        eprintln!("no experiment ids given; try `experiments all` or --help");
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    // One shared artifact cache: the waveform pair, emulator outputs and
    // expected-symbol tables are built once and reused by every experiment.
    let artifacts = Artifacts::new();
    let runner = TrialRunner::new(cfg.jobs).with_base_seed(cfg.seed);
    eprintln!(
        "[experiments] {} experiment(s), {} worker thread(s), base seed {:#x}",
        ids.len(),
        runner.jobs(),
        cfg.seed,
    );
    let total = std::time::Instant::now();
    for id in &ids {
        let Some(exp) = build(id, &cfg.results, cfg.quick) else {
            eprintln!("error: unknown experiment id: {id}");
            return ExitCode::FAILURE;
        };
        eprintln!("[experiments] running {id} ...");
        match runner.run(&*exp, &artifacts) {
            Ok(report) => {
                println!("{}", report.text);
                eprintln!(
                    "[experiments] {id}: {} trials in {:.2}s ({:.0} trials/sec, {} jobs)",
                    report.trials,
                    report.elapsed.as_secs_f64(),
                    report.trials_per_sec(),
                    report.jobs,
                );
            }
            Err(e) => {
                eprintln!("error: {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "[experiments] total wall clock: {:.2}s",
        total.elapsed().as_secs_f64()
    );
    if cfg.obs_dump {
        // Stage timings recorded by TrialRunner::run for every experiment
        // above; stderr, like all timing, so stdout stays reproducible.
        eprint!("{}", ctc_obs::Registry::global().render());
    }
    ExitCode::SUCCESS
}
