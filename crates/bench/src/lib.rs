//! # ctc-bench
//!
//! Benchmarks and the experiment harness for the *Hide and Seek*
//! (ICDCS 2019) reproduction. The `experiments` binary regenerates every
//! table and figure of the paper's evaluation section:
//!
//! ```text
//! cargo run -p ctc-bench --bin experiments --release -- all --jobs 8
//! cargo run -p ctc-bench --bin experiments --release -- table2 --quick
//! ```
//!
//! Experiments implement the [`engine::Experiment`] trait — independent
//! Monte-Carlo trials plus a single-threaded reduce — and run on the
//! [`engine::TrialRunner`] thread pool; results are byte-identical for any
//! `--jobs` value.
//!
//! Criterion benches (`cargo bench -p ctc-bench`) cover the complexity
//! claims of Sec. VII-A and the ablations listed in DESIGN.md §6.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod experiments;
pub mod report;
pub mod trials;
