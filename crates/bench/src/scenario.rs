//! Shared experiment scenarios: the two communication links of the paper's
//! evaluation (Sec. VII-B) and helpers to mass-produce receptions.
//!
//! Link A: ZigBee transmitter → ZigBee receiver.
//! Link B: WiFi attacker (emulating a recorded ZigBee frame) → ZigBee receiver.

use ctc_channel::Link;
use ctc_core::attack::{Emulation, Emulator};
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Reception, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reusable pair of transmit waveforms: the authentic frame and its
/// emulation as captured by the ZigBee front-end.
#[derive(Debug, Clone)]
pub struct WaveformPair {
    /// Authentic ZigBee baseband waveform (4 MHz).
    pub original: Vec<Complex>,
    /// The attacker's emulated waveform after the ZigBee front-end (4 MHz).
    pub emulated: Vec<Complex>,
    /// Full emulation metadata.
    pub emulation: Emulation,
}

/// Builds the waveform pair for one payload with the default attacker.
pub fn waveform_pair(payload: &[u8]) -> WaveformPair {
    waveform_pair_with(payload, &Emulator::new())
}

/// Builds the waveform pair for one payload with a custom attacker.
pub fn waveform_pair_with(payload: &[u8], emulator: &Emulator) -> WaveformPair {
    let original = Transmitter::new()
        .transmit_payload(payload)
        .expect("experiment payloads are short");
    let emulation = emulator.emulate(&original);
    let emulated = emulator.received_at_zigbee(&emulation);
    WaveformPair {
        original,
        emulated,
        emulation,
    }
}

/// Which transmitter a trial simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The authentic ZigBee transmitter.
    Zigbee,
    /// The WiFi attacker.
    Attacker,
}

/// Runs `trials` receptions of one waveform through a link, with a
/// deterministic seed stream.
pub fn receive_trials(
    wave: &[Complex],
    link: &Link,
    receiver: &Receiver,
    trials: usize,
    seed: u64,
) -> Vec<Reception> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..trials)
        .map(|_| receiver.receive(&link.transmit(wave, &mut rng)))
        .collect()
}

/// Packet success rate over a batch of receptions against the expected
/// payload.
pub fn packet_success_rate(receptions: &[Reception], expected: &[u8]) -> f64 {
    if receptions.is_empty() {
        return 0.0;
    }
    let ok = receptions
        .iter()
        .filter(|r| r.packet_ok() && r.payload() == Some(expected))
        .count();
    ok as f64 / receptions.len() as f64
}

/// Symbol error rate over a batch, relative to the expected frame symbols.
pub fn symbol_error_rate(receptions: &[Reception], expected_payload: &[u8]) -> f64 {
    let expected = ctc_zigbee::frame::build_frame_symbols(expected_payload)
        .expect("experiment payloads are short");
    let mut errors = 0usize;
    let mut total = 0usize;
    for r in receptions {
        errors += r.symbol_errors(&expected);
        total += expected.len();
    }
    if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    }
}

/// Mean of a sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_channel::Link;

    #[test]
    fn pair_decodes_both_ways() {
        let pair = waveform_pair(b"00000");
        let rx = Receiver::usrp();
        assert_eq!(rx.receive(&pair.original).payload(), Some(&b"00000"[..]));
        assert_eq!(rx.receive(&pair.emulated).payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn trials_are_deterministic() {
        let pair = waveform_pair(b"00001");
        let link = Link::awgn(10.0);
        let rx = Receiver::usrp();
        let a = receive_trials(&pair.original, &link, &rx, 3, 7);
        let b = receive_trials(&pair.original, &link, &rx, 3, 7);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.symbols, y.symbols);
        }
    }

    #[test]
    fn success_rate_bounds() {
        let pair = waveform_pair(b"00002");
        let link = Link::awgn(30.0);
        let rx = Receiver::usrp();
        let rs = receive_trials(&pair.original, &link, &rx, 5, 11);
        let rate = packet_success_rate(&rs, b"00002");
        assert!(rate > 0.99);
        assert_eq!(packet_success_rate(&[], b"x"), 0.0);
    }

    #[test]
    fn stats_helpers() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}
