//! Reception-batch helpers for the experiment suite.
//!
//! The waveform-pair construction itself lives in
//! [`ctc_core::waveform::WaveformPair`] (re-exported here): the two
//! communication links of the paper's evaluation (Sec. VII-B) are link A,
//! ZigBee transmitter → ZigBee receiver, and link B, WiFi attacker
//! (emulating a recorded ZigBee frame) → ZigBee receiver. "Scenario" in
//! this workspace always means the coexistence timeline of
//! [`ctc_core::scenario`].

use ctc_channel::Link;
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Reception};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use ctc_core::waveform::WaveformPair;

/// Runs `trials` receptions of one waveform through a link, drawing noise
/// from the supplied generator.
pub fn receive_with(
    wave: &[Complex],
    link: &Link,
    receiver: &Receiver,
    trials: usize,
    rng: &mut StdRng,
) -> Vec<Reception> {
    (0..trials)
        .map(|_| receiver.receive(&link.transmit(wave, rng)))
        .collect()
}

/// Runs `trials` receptions of one waveform through a link, with a
/// deterministic seed stream.
pub fn receive_trials(
    wave: &[Complex],
    link: &Link,
    receiver: &Receiver,
    trials: usize,
    seed: u64,
) -> Vec<Reception> {
    let mut rng = StdRng::seed_from_u64(seed);
    receive_with(wave, link, receiver, trials, &mut rng)
}

/// Packet success rate over a batch of receptions against the expected
/// payload.
pub fn packet_success_rate(receptions: &[Reception], expected: &[u8]) -> f64 {
    if receptions.is_empty() {
        return 0.0;
    }
    let ok = receptions
        .iter()
        .filter(|r| r.packet_ok() && r.payload() == Some(expected))
        .count();
    ok as f64 / receptions.len() as f64
}

/// Whether one reception decodes the expected payload.
pub fn packet_ok(reception: &Reception, expected: &[u8]) -> bool {
    reception.packet_ok() && reception.payload() == Some(expected)
}

/// Symbol error rate over a batch, relative to the expected frame symbols.
///
/// # Errors
///
/// Propagates framing errors when `expected_payload` cannot be framed.
pub fn symbol_error_rate(
    receptions: &[Reception],
    expected_payload: &[u8],
) -> Result<f64, ctc_core::Error> {
    let expected = ctc_zigbee::frame::build_frame_symbols(expected_payload)?;
    let mut errors = 0usize;
    let mut total = 0usize;
    for r in receptions {
        errors += r.symbol_errors(&expected);
        total += expected.len();
    }
    Ok(if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    })
}

/// Mean of a sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_channel::Link;

    #[test]
    fn pair_decodes_both_ways() {
        let pair = WaveformPair::new(b"00000").unwrap();
        let rx = Receiver::usrp();
        assert_eq!(rx.receive(&pair.original).payload(), Some(&b"00000"[..]));
        assert_eq!(rx.receive(&pair.emulated).payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn trials_are_deterministic() {
        let pair = WaveformPair::new(b"00001").unwrap();
        let link = Link::awgn(10.0);
        let rx = Receiver::usrp();
        let a = receive_trials(&pair.original, &link, &rx, 3, 7);
        let b = receive_trials(&pair.original, &link, &rx, 3, 7);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.symbols, y.symbols);
        }
    }

    #[test]
    fn success_rate_bounds() {
        let pair = WaveformPair::new(b"00002").unwrap();
        let link = Link::awgn(30.0);
        let rx = Receiver::usrp();
        let rs = receive_trials(&pair.original, &link, &rx, 5, 11);
        let rate = packet_success_rate(&rs, b"00002");
        assert!(rate > 0.99);
        assert_eq!(packet_success_rate(&[], b"x"), 0.0);
    }

    #[test]
    fn symbol_error_rate_rejects_bad_payloads() {
        assert!(symbol_error_rate(&[], &vec![0u8; 4096]).is_err());
        assert_eq!(symbol_error_rate(&[], b"00000").unwrap(), 0.0);
    }

    #[test]
    fn stats_helpers() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}
