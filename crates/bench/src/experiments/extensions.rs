//! Experiments beyond the paper: detector ROC, attack ablations, the
//! full-bit-chain attack mode and CFO robustness of the |C40| detector.

use crate::engine::{column, flag, rate_of, Artifacts, Ctx, Experiment, MonteCarlo};
use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::trials::mean;
use ctc_channel::Link;
use ctc_core::attack::{Emulator, SpectralMode, SynthesisMode};
use ctc_core::defense::{features_from_reception, ChannelAssumption, Detector};
use ctc_dsp::metrics::{correlation, normalize_power};
use ctc_zigbee::Receiver;
use rand::rngs::StdRng;
use std::path::PathBuf;

/// ROC of the detector: sweep the threshold Q and report false-positive /
/// true-positive rates at a given SNR.
pub fn roc(results: PathBuf, snr_db: f64, per_class: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "roc",
        // cell = class (0 = ZigBee, 1 = emulated).
        cells: 2,
        per_cell: per_class,
        trial_fn: move |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell == 0 {
                &pair.original
            } else {
                &pair.emulated
            };
            let r = Receiver::usrp().receive(&Link::awgn(snr_db).transmit(wave, rng));
            Ok(match features_from_reception(&r) {
                Ok(f) => vec![f.de_squared_ideal()],
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let zig = column(&grouped[0], 0);
            let emu = column(&grouped[1], 0);
            let mut thresholds: Vec<f64> = zig.iter().chain(&emu).copied().collect();
            thresholds.sort_by(f64::total_cmp);
            thresholds.dedup();
            let mut rows = Vec::new();
            let mut auc = 0.0;
            let mut prev = (1.0, 1.0); // (fpr, tpr) at threshold -inf
            for &q in &thresholds {
                let fpr = zig.iter().filter(|&&v| v > q).count() as f64 / zig.len() as f64;
                let tpr = emu.iter().filter(|&&v| v > q).count() as f64 / emu.len() as f64;
                auc += (prev.0 - fpr) * (tpr + prev.1) / 2.0;
                prev = (fpr, tpr);
                rows.push(vec![f4(q), f4(fpr), f4(tpr)]);
            }
            auc += prev.0 * prev.1 / 2.0;
            write_csv(
                &results,
                "ext_roc.csv",
                &["threshold".into(), "fpr".into(), "tpr".into()],
                &rows,
            )?;
            let per_class = grouped[0].len();
            Ok(format!(
                "## Extension — Detector ROC at {snr_db} dB ({per_class} frames per class)\n\n\
                 CSV: results/ext_roc.csv\n\
                 AUC ≈ {} (1.0 = perfect separation; the paper's gap implies ≈ 1.0).\n",
                f4(auc)
            ))
        },
    })
}

const ABLATION_KEPT: [usize; 5] = [3, 5, 7, 9, 11];

/// Ablation: emulation fidelity and attack success vs number of kept
/// subcarriers (the paper fixes 7 ≈ 2 MHz).
pub fn ablation_subcarriers(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "ablation_subcarriers",
        cells: ABLATION_KEPT.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let kept = ABLATION_KEPT[cell];
            let emulator = Emulator::new().with_kept_subcarriers(kept);
            let pair = ctx
                .artifacts
                .pair_with(b"00000", &format!("kept={kept}"), &emulator)?;
            let r = Receiver::usrp().receive(&Link::awgn(2.0).transmit(&pair.emulated, rng));
            Ok(vec![flag(crate::trials::packet_ok(&r, b"00000"))])
        },
        reduce_fn: move |artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (cell, &kept) in ABLATION_KEPT.iter().enumerate() {
                let emulator = Emulator::new().with_kept_subcarriers(kept);
                let pair = artifacts.pair_with(b"00000", &format!("kept={kept}"), &emulator)?;
                let n = pair.original.len().min(pair.emulated.len());
                let a = normalize_power(&pair.original[..n]);
                let b = normalize_power(&pair.emulated[..n]);
                let corr = correlation(&a[64..n - 64], &b[64..n - 64]);
                rows.push(vec![
                    format!("{kept}"),
                    f4(corr),
                    f4(pair.emulation.quantization_error),
                    pct(rate_of(&grouped[cell], 0)),
                ]);
            }
            let header: Vec<String> = [
                "kept subcarriers",
                "waveform correlation",
                "quantization error",
                "success @ 2 dB",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_ablation_subcarriers.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Kept-subcarrier ablation ({trials} packets per row, success measured at 2 dB where the receiver margin is thin)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\n7 subcarriers (the paper's choice, ≈ the ZigBee bandwidth) is the\n\
                 knee: fewer loses in-band energy, more buys little because the\n\
                 receiver filters it away.\n",
            );
            Ok(out)
        },
    })
}

const ALPHA_CONFIGS: [&str; 5] = [
    "optimized",
    "sqrt(26) (paper)",
    "1.0",
    "2x optimal",
    "0.5x optimal",
];

/// The emulator for one alpha-ablation config; "2x/0.5x optimal" derive
/// from the default pair's optimized alpha.
fn alpha_emulator(artifacts: &Artifacts, cell: usize) -> Result<Emulator, ctc_core::Error> {
    let alpha = match cell {
        0 => None,
        1 => Some(26f64.sqrt()),
        2 => Some(1.0),
        3 => Some(artifacts.pair(b"00000")?.emulation.alpha * 2.0),
        _ => Some(artifacts.pair(b"00000")?.emulation.alpha * 0.5),
    };
    Ok(Emulator::new().with_fixed_alpha(alpha))
}

/// Ablation: the optimized alpha of eq. (4) vs fixed scalers (including the
/// paper's alpha = sqrt(26)).
pub fn ablation_alpha(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "ablation_alpha",
        cells: ALPHA_CONFIGS.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let emulator = alpha_emulator(ctx.artifacts, cell)?;
            let pair = ctx
                .artifacts
                .pair_with(b"00000", &format!("alpha={cell}"), &emulator)?;
            let r = Receiver::usrp().receive(&Link::awgn(2.0).transmit(&pair.emulated, rng));
            Ok(vec![flag(crate::trials::packet_ok(&r, b"00000"))])
        },
        reduce_fn: move |artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (cell, name) in ALPHA_CONFIGS.iter().enumerate() {
                let emulator = alpha_emulator(artifacts, cell)?;
                let pair = artifacts.pair_with(b"00000", &format!("alpha={cell}"), &emulator)?;
                rows.push(vec![
                    name.to_string(),
                    f4(pair.emulation.alpha),
                    f4(pair.emulation.quantization_error),
                    pct(rate_of(&grouped[cell], 0)),
                ]);
            }
            let header: Vec<String> = ["scaler", "alpha", "quantization error", "success @ 2 dB"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            write_csv(&results, "ext_ablation_alpha.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — QAM scaler ablation ({trials} packets per row)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str("\nThe global search of eq. (4) minimizes quantization error; bad fixed\nscalers cost attack success rate.\n");
            Ok(out)
        },
    })
}

const BITCHAIN_SNRS: [f64; 3] = [3.0, 6.0, 9.0];
const BITCHAIN_MODES: [&str; 2] = ["raw spectrum", "bit chain"];

fn bitchain_emulator(mode: usize) -> Emulator {
    let raw = Emulator::new().with_spectral_mode(SpectralMode::CarrierAllocated);
    if mode == 0 {
        raw
    } else {
        raw.with_synthesis_mode(SynthesisMode::BitChain)
    }
}

/// The full-bit-chain attack: the attacker inverts interleaving/scrambling
/// and finds the nearest convolutional codeword, so the emulated frame is a
/// *valid* 802.11g transmission. Reports the extra distortion this costs.
pub fn bitchain(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "bitchain",
        // cell = mode * SNRS + snr_index.
        cells: BITCHAIN_MODES.len() * BITCHAIN_SNRS.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let mode = cell / BITCHAIN_SNRS.len();
            let emulator = bitchain_emulator(mode);
            let pair = ctx
                .artifacts
                .pair_with(b"00000", &format!("bitchain={mode}"), &emulator)?;
            let snr = BITCHAIN_SNRS[cell % BITCHAIN_SNRS.len()];
            let r = Receiver::usrp().receive(&Link::awgn(snr).transmit(&pair.emulated, rng));
            Ok(vec![flag(crate::trials::packet_ok(&r, b"00000"))])
        },
        reduce_fn: move |artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            let mut csv_rows = Vec::new();
            for (mode, name) in BITCHAIN_MODES.iter().enumerate() {
                let emulator = bitchain_emulator(mode);
                let pair = artifacts.pair_with(b"00000", &format!("bitchain={mode}"), &emulator)?;
                for (si, &snr) in BITCHAIN_SNRS.iter().enumerate() {
                    let rate = rate_of(&grouped[mode * BITCHAIN_SNRS.len() + si], 0);
                    rows.push(vec![
                        name.to_string(),
                        f2(snr),
                        format!("{:?}", pair.emulation.codeword_distance),
                        pct(rate),
                    ]);
                    csv_rows.push(vec![
                        name.to_string(),
                        f2(snr),
                        format!("{}", pair.emulation.codeword_distance.unwrap_or(0)),
                        f4(rate),
                    ]);
                }
            }
            let header: Vec<String> =
                ["synthesis", "SNR (dB)", "codeword distance", "success rate"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            write_csv(&results, "ext_bitchain.csv", &header, &csv_rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Full-bit-chain attack ({trials} packets per cell, carrier-allocated mode)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nThe paper calls the preprocessing \"invertible\"; in truth arbitrary\n\
                 QAM sequences are not codewords of the rate-3/4 BCC, so a standard-\n\
                 compliant attacker pays a nonzero codeword distance. The success-rate\n\
                 drop quantifies that cost.\n",
            );
            Ok(out)
        },
    })
}

const CFO_VALUES: [f64; 6] = [0.0, 50.0, 100.0, 200.0, 400.0, 800.0];

/// CFO robustness of the two detector variants: sweep residual CFO and
/// report false-positive rates of the Ideal vs Real (|C40|) detectors on
/// authentic waveforms.
pub fn cfo_robustness(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "cfo_robustness",
        cells: CFO_VALUES.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let cfo_hz = CFO_VALUES[cell];
            let link = Link::awgn(17.0)
                .with_max_cfo_hz(cfo_hz)
                .with_random_phase(cfo_hz > 0.0);
            let r = Receiver::usrp().receive(&link.transmit(&pair.original, rng));
            // Thresholds calibrated at zero offset (see fig. 12 discussion).
            let ideal = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
            let real = Detector::new(ChannelAssumption::Real).with_threshold(0.25);
            Ok(vec![
                flag(ideal.detect(&r).map(|v| v.is_attack).unwrap_or(false)),
                flag(real.detect(&r).map(|v| v.is_attack).unwrap_or(false)),
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, &cfo_hz) in CFO_VALUES.iter().enumerate() {
                rows.push(vec![
                    f2(cfo_hz),
                    pct(rate_of(&grouped[i], 0)),
                    pct(rate_of(&grouped[i], 1)),
                ]);
            }
            let header: Vec<String> = [
                "max CFO (Hz)",
                "Ideal detector false positives",
                "|C40| detector false positives",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_cfo_robustness.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — CFO robustness of the detector variants ({trials} authentic frames per row)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nWith random phase + CFO the Ideal variant (Re Ĉ40) starts flagging\n\
                 authentic waveforms; the |C40| variant of Sec. VI-C stays clean —\n\
                 the quantitative version of the paper's real-scenario argument.\n",
            );
            Ok(out)
        },
    })
}

const GAP_SNRS: [f64; 7] = [5.0, 7.0, 9.0, 11.0, 13.0, 15.0, 17.0];

/// Mean DE² of both classes vs SNR using the detector's statistic — the
/// summary the README quotes.
pub fn gap_summary(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "gap_summary",
        // cell = snr_index * 2 + class (0 = ZigBee, 1 = emulated).
        cells: GAP_SNRS.len() * 2,
        per_cell: per_class,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let link = Link::awgn(GAP_SNRS[cell / 2]);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            Ok(match features_from_reception(&r) {
                Ok(f) => vec![f.de_squared_ideal()],
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, &snr) in GAP_SNRS.iter().enumerate() {
                let zig = mean(&column(&grouped[i * 2], 0));
                let emu = mean(&column(&grouped[i * 2 + 1], 0));
                rows.push(vec![format!("{snr}"), f4(zig), f4(emu), f2(emu / zig)]);
            }
            let header: Vec<String> = ["SNR (dB)", "ZigBee DE²", "Emulated DE²", "ratio"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            write_csv(&results, "ext_gap_summary.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — DE² gap summary ({per_class} frames per class)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            Ok(out)
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::{run_test, test_dir};

    fn dir() -> PathBuf {
        test_dir("ctc_ext_test")
    }

    #[test]
    fn roc_reports_auc() {
        let out = run_test(roc(dir(), 17.0, 6));
        assert!(out.contains("AUC"));
    }

    #[test]
    fn ablation_tables_render() {
        assert!(run_test(ablation_alpha(dir(), 3)).contains("sqrt(26)"));
    }

    #[test]
    fn cfo_rows_render() {
        assert!(run_test(cfo_robustness(dir(), 3)).contains("|C40|"));
    }
}
