//! Experiments beyond the paper: detector ROC, attack ablations, the
//! full-bit-chain attack mode and CFO robustness of the |C40| detector.

use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::scenario::{mean, packet_success_rate, receive_trials, waveform_pair, waveform_pair_with};
use ctc_channel::Link;
use ctc_core::attack::{Emulator, SpectralMode, SynthesisMode};
use ctc_core::defense::{features_from_reception, ChannelAssumption, Detector};
use ctc_dsp::metrics::{correlation, normalize_power};
use ctc_zigbee::Receiver;
use std::path::Path;

/// ROC of the detector: sweep the threshold Q and report false-positive /
/// true-positive rates at a given SNR.
pub fn roc(results_dir: &Path, snr_db: f64, per_class: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let link = Link::awgn(snr_db);
    let zig: Vec<f64> = receive_trials(&pair.original, &link, &rx, per_class, 200_000)
        .iter()
        .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
        .collect();
    let emu: Vec<f64> = receive_trials(&pair.emulated, &link, &rx, per_class, 201_000)
        .iter()
        .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
        .collect();
    let mut thresholds: Vec<f64> = zig.iter().chain(&emu).copied().collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();
    let mut rows = Vec::new();
    let mut auc = 0.0;
    let mut prev = (1.0, 1.0); // (fpr, tpr) at threshold -inf
    for &q in &thresholds {
        let fpr = zig.iter().filter(|&&v| v > q).count() as f64 / zig.len() as f64;
        let tpr = emu.iter().filter(|&&v| v > q).count() as f64 / emu.len() as f64;
        auc += (prev.0 - fpr) * (tpr + prev.1) / 2.0;
        prev = (fpr, tpr);
        rows.push(vec![f4(q), f4(fpr), f4(tpr)]);
    }
    auc += prev.0 * prev.1 / 2.0;
    let _ = write_csv(
        results_dir,
        "ext_roc.csv",
        &["threshold".into(), "fpr".into(), "tpr".into()],
        &rows,
    );
    format!(
        "## Extension — Detector ROC at {snr_db} dB ({per_class} frames per class)\n\n\
         CSV: results/ext_roc.csv\n\
         AUC ≈ {} (1.0 = perfect separation; the paper's gap implies ≈ 1.0).\n",
        f4(auc)
    )
}

/// Ablation: emulation fidelity and attack success vs number of kept
/// subcarriers (the paper fixes 7 ≈ 2 MHz).
pub fn ablation_subcarriers(results_dir: &Path, trials: usize) -> String {
    let rx = Receiver::usrp();
    let mut rows = Vec::new();
    for kept in [3usize, 5, 7, 9, 11] {
        let emulator = Emulator::new().with_kept_subcarriers(kept);
        let pair = waveform_pair_with(b"00000", &emulator);
        let n = pair.original.len().min(pair.emulated.len());
        let a = normalize_power(&pair.original[..n]);
        let b = normalize_power(&pair.emulated[..n]);
        let corr = correlation(&a[64..n - 64], &b[64..n - 64]);
        let rs = receive_trials(&pair.emulated, &Link::awgn(2.0), &rx, trials, 210_000 + kept as u64);
        let rate = packet_success_rate(&rs, b"00000");
        rows.push(vec![
            format!("{kept}"),
            f4(corr),
            f4(pair.emulation.quantization_error),
            pct(rate),
        ]);
    }
    let header: Vec<String> = [
        "kept subcarriers",
        "waveform correlation",
        "quantization error",
        "success @ 2 dB",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_ablation_subcarriers.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Kept-subcarrier ablation ({trials} packets per row, success measured at 2 dB where the receiver margin is thin)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\n7 subcarriers (the paper's choice, ≈ the ZigBee bandwidth) is the\n\
         knee: fewer loses in-band energy, more buys little because the\n\
         receiver filters it away.\n",
    );
    out
}

/// Ablation: the optimized alpha of eq. (4) vs fixed scalers (including the
/// paper's alpha = sqrt(26)).
pub fn ablation_alpha(results_dir: &Path, trials: usize) -> String {
    let rx = Receiver::usrp();
    let mut rows = Vec::new();
    let opt_pair = waveform_pair(b"00000");
    let configs: Vec<(String, Option<f64>)> = vec![
        ("optimized".into(), None),
        ("sqrt(26) (paper)".into(), Some(26f64.sqrt())),
        ("1.0".into(), Some(1.0)),
        ("2x optimal".into(), Some(opt_pair.emulation.alpha * 2.0)),
        ("0.5x optimal".into(), Some(opt_pair.emulation.alpha * 0.5)),
    ];
    for (i, (name, alpha)) in configs.iter().enumerate() {
        let emulator = Emulator::new().with_fixed_alpha(*alpha);
        let pair = waveform_pair_with(b"00000", &emulator);
        let rs = receive_trials(&pair.emulated, &Link::awgn(2.0), &rx, trials, 220_000 + i as u64);
        let rate = packet_success_rate(&rs, b"00000");
        rows.push(vec![
            name.clone(),
            f4(pair.emulation.alpha),
            f4(pair.emulation.quantization_error),
            pct(rate),
        ]);
    }
    let header: Vec<String> = ["scaler", "alpha", "quantization error", "success @ 2 dB"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_ablation_alpha.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — QAM scaler ablation ({trials} packets per row)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str("\nThe global search of eq. (4) minimizes quantization error; bad fixed\nscalers cost attack success rate.\n");
    out
}

/// The full-bit-chain attack: the attacker inverts interleaving/scrambling
/// and finds the nearest convolutional codeword, so the emulated frame is a
/// *valid* 802.11g transmission. Reports the extra distortion this costs.
pub fn bitchain(results_dir: &Path, trials: usize) -> String {
    let rx = Receiver::usrp();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let raw_emulator = Emulator::new().with_spectral_mode(SpectralMode::CarrierAllocated);
    let bit_emulator = raw_emulator
        .clone()
        .with_synthesis_mode(SynthesisMode::BitChain);
    for (name, emulator) in [("raw spectrum", &raw_emulator), ("bit chain", &bit_emulator)] {
        let pair = waveform_pair_with(b"00000", emulator);
        for snr in [3.0, 6.0, 9.0] {
            let rs = receive_trials(
                &pair.emulated,
                &Link::awgn(snr),
                &rx,
                trials,
                230_000 + snr as u64,
            );
            let rate = packet_success_rate(&rs, b"00000");
            rows.push(vec![
                name.to_string(),
                f2(snr),
                format!("{:?}", pair.emulation.codeword_distance),
                pct(rate),
            ]);
            csv_rows.push(vec![
                name.to_string(),
                f2(snr),
                format!(
                    "{}",
                    pair.emulation.codeword_distance.unwrap_or(0)
                ),
                f4(rate),
            ]);
        }
    }
    let header: Vec<String> = ["synthesis", "SNR (dB)", "codeword distance", "success rate"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_bitchain.csv", &header, &csv_rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Full-bit-chain attack ({trials} packets per cell, carrier-allocated mode)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nThe paper calls the preprocessing \"invertible\"; in truth arbitrary\n\
         QAM sequences are not codewords of the rate-3/4 BCC, so a standard-\n\
         compliant attacker pays a nonzero codeword distance. The success-rate\n\
         drop quantifies that cost.\n",
    );
    out
}

/// CFO robustness of the two detector variants: sweep residual CFO and
/// report false-positive rates of the Ideal vs Real (|C40|) detectors on
/// authentic waveforms.
pub fn cfo_robustness(results_dir: &Path, trials: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    // Thresholds calibrated at zero offset (see fig. 12 discussion).
    let ideal = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let real = Detector::new(ChannelAssumption::Real).with_threshold(0.25);
    let mut rows = Vec::new();
    for (i, cfo_hz) in [0.0f64, 50.0, 100.0, 200.0, 400.0, 800.0].into_iter().enumerate() {
        let link = Link::awgn(17.0)
            .with_max_cfo_hz(cfo_hz)
            .with_random_phase(cfo_hz > 0.0);
        let receptions = receive_trials(&pair.original, &link, &rx, trials, 240_000 + i as u64);
        let fp_ideal = receptions
            .iter()
            .filter(|r| ideal.detect(r).map(|v| v.is_attack).unwrap_or(false))
            .count();
        let fp_real = receptions
            .iter()
            .filter(|r| real.detect(r).map(|v| v.is_attack).unwrap_or(false))
            .count();
        rows.push(vec![
            f2(cfo_hz),
            pct(fp_ideal as f64 / trials as f64),
            pct(fp_real as f64 / trials as f64),
        ]);
    }
    let header: Vec<String> = [
        "max CFO (Hz)",
        "Ideal detector false positives",
        "|C40| detector false positives",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_cfo_robustness.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — CFO robustness of the detector variants ({trials} authentic frames per row)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nWith random phase + CFO the Ideal variant (Re Ĉ40) starts flagging\n\
         authentic waveforms; the |C40| variant of Sec. VI-C stays clean —\n\
         the quantitative version of the paper's real-scenario argument.\n",
    );
    out
}

/// Mean DE² of both classes vs SNR using the detector's statistic — the
/// summary the README quotes.
pub fn gap_summary(results_dir: &Path, per_class: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let mut rows = Vec::new();
    for (i, snr) in (5..=17).step_by(2).enumerate() {
        let link = Link::awgn(snr as f64);
        let zig: Vec<f64> = receive_trials(&pair.original, &link, &rx, per_class, 250_000 + i as u64)
            .iter()
            .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
            .collect();
        let emu: Vec<f64> = receive_trials(&pair.emulated, &link, &rx, per_class, 251_000 + i as u64)
            .iter()
            .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
            .collect();
        rows.push(vec![
            format!("{snr}"),
            f4(mean(&zig)),
            f4(mean(&emu)),
            f2(mean(&emu) / mean(&zig)),
        ]);
    }
    let header: Vec<String> = ["SNR (dB)", "ZigBee DE²", "Emulated DE²", "ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_gap_summary.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — DE² gap summary ({per_class} frames per class)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        std::env::temp_dir().join("ctc_ext_test")
    }

    #[test]
    fn roc_reports_auc() {
        let out = roc(&dir(), 17.0, 6);
        assert!(out.contains("AUC"));
    }

    #[test]
    fn ablation_tables_render() {
        assert!(ablation_alpha(&dir(), 3).contains("sqrt(26)"));
    }

    #[test]
    fn cfo_rows_render() {
        assert!(cfo_robustness(&dir(), 3).contains("|C40|"));
    }
}
