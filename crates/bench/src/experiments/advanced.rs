//! Advanced extension experiments: the attack–defense arms race, spectral
//! placement, coexistence under interference, and the full-stack
//! (dual-protocol) attack.

use crate::engine::{column, flag, rate_of, Artifacts, Ctx, Experiment, MonteCarlo, OneShot};
use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::trials::mean;
use ctc_channel::interference::Interferer;
use ctc_channel::Link;
use ctc_core::attack::{Emulator, FullFrameAttack, LeastSquaresEmulator};
use ctc_core::defense::{features_from_reception, ChannelAssumption, Detector};
use ctc_dsp::psd::{welch_psd, Window};
use ctc_dsp::Complex;
use ctc_wifi::WifiReceiver;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use std::path::PathBuf;
use std::sync::Arc;

const ARMS_SNRS: [f64; 3] = [9.0, 13.0, 17.0];

/// Roles within one arms-race SNR cell group; one reception per trial.
const ARMS_ROLES: usize = 8;
const ROLE_ZIG_DE: usize = 0;
const ROLE_BASE_DE: usize = 1;
const ROLE_LS_DE: usize = 2;
const ROLE_BASE_OK: usize = 3;
const ROLE_LS_OK: usize = 4;
const ROLE_ZIG_TRAIN: usize = 5;
const ROLE_EMU_TRAIN: usize = 6;
const ROLE_LS_TEST: usize = 7;

/// The least-squares attacker's waveform, memoised once per run.
fn ls_emulated(artifacts: &Artifacts) -> Result<Arc<Vec<Complex>>, ctc_core::Error> {
    artifacts.try_memo("arms_race:ls_emulated", || {
        let original = Transmitter::new().transmit_payload(b"00000")?;
        let ls = LeastSquaresEmulator::new();
        Ok(ls.received_at_zigbee(&ls.emulate(&original)))
    })
}

/// Arms race: the baseline attacker vs the least-squares (CP-aware)
/// attacker, against a defender calibrated on the baseline.
pub fn arms_race(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "arms_race",
        // cell = snr_index * ARMS_ROLES + role.
        cells: ARMS_SNRS.len() * ARMS_ROLES,
        per_cell: per_class,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let role = cell % ARMS_ROLES;
            let pair = ctx.artifacts.pair(b"00000")?;
            let ls = ls_emulated(ctx.artifacts)?;
            let wave: &[Complex] = match role {
                ROLE_ZIG_DE | ROLE_ZIG_TRAIN => &pair.original,
                ROLE_BASE_DE | ROLE_BASE_OK | ROLE_EMU_TRAIN => &pair.emulated,
                _ => &ls,
            };
            let link = Link::awgn(ARMS_SNRS[cell / ARMS_ROLES]);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            Ok(match role {
                ROLE_BASE_OK | ROLE_LS_OK => {
                    vec![flag(crate::trials::packet_ok(&r, b"00000"))]
                }
                _ => match features_from_reception(&r) {
                    Ok(f) => vec![f.de_squared_ideal()],
                    Err(_) => vec![],
                },
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, &snr) in ARMS_SNRS.iter().enumerate() {
                let cell = |role: usize| &grouped[i * ARMS_ROLES + role];
                let de2 = |role: usize| column(cell(role), 0);
                // Defender calibrated on baseline-attack training data.
                let det = Detector::calibrate_from_stats(
                    ChannelAssumption::Ideal,
                    &de2(ROLE_ZIG_TRAIN),
                    &de2(ROLE_EMU_TRAIN),
                );
                let ls_test = de2(ROLE_LS_TEST);
                let ls_caught = ls_test.iter().filter(|&&v| v > det.threshold()).count();
                rows.push(vec![
                    f2(snr),
                    f4(mean(&de2(ROLE_ZIG_DE))),
                    f4(mean(&de2(ROLE_BASE_DE))),
                    f4(mean(&de2(ROLE_LS_DE))),
                    pct(rate_of(cell(ROLE_BASE_OK), 0)),
                    pct(rate_of(cell(ROLE_LS_OK), 0)),
                    f4(det.threshold()),
                    pct(ls_caught as f64 / ls_test.len().max(1) as f64),
                ]);
            }
            let header: Vec<String> = [
                "SNR (dB)",
                "authentic DE²",
                "baseline-attack DE²",
                "LS-attack DE²",
                "baseline success",
                "LS success",
                "calibrated Q",
                "LS attack detected",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_arms_race.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Arms race: CP-aware least-squares attacker ({per_class} frames per cell)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nThe LS attacker fits the kept subcarriers to the whole 80-sample\n\
                 block (CP included), roughly halving its DE² signature while keeping\n\
                 the attack success — yet it stays well above the authentic class, so\n\
                 a defender calibrated only on the *baseline* attack still catches it.\n",
            );
            Ok(out)
        },
    })
}

/// Spectral placement: band-power accounting of the original, emulated and
/// captured waveforms (the quantitative version of the paper's Fig. 3
/// spectrum sketch).
pub fn spectral(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "spectral",
        render: move |artifacts: &Artifacts| {
            let pair = artifacts.pair(b"00000")?;
            let emulator = Emulator::new()
                .with_spectral_mode(ctc_core::attack::SpectralMode::CarrierAllocated);
            let em = emulator.emulate(&pair.original);

            let psd_orig = welch_psd(&pair.original, 64, Window::Hann).expect("long enough");
            let psd_emul = welch_psd(&em.waveform_20mhz, 64, Window::Hann).expect("long enough");
            let captured = emulator.received_at_zigbee(&em);
            let psd_capt = welch_psd(&captured, 64, Window::Hann).expect("long enough");

            // CSVs with natural frequency ordering.
            for (name, psd, rate_mhz) in [
                ("orig_4mhz", &psd_orig, 4.0),
                ("emulated_20mhz", &psd_emul, 20.0),
                ("captured_4mhz", &psd_capt, 4.0),
            ] {
                let rows: Vec<Vec<String>> = psd
                    .ordered()
                    .iter()
                    .map(|(f, p)| vec![f4(f * rate_mhz), format!("{:.6e}", p)])
                    .collect();
                write_csv(
                    &results,
                    &format!("ext_spectrum_{name}.csv"),
                    &["freq_mhz".into(), "power".into()],
                    &rows,
                )?;
            }

            // The ZigBee band sits at -5 MHz in the attacker's baseband:
            // fraction of emulated power within 1.09 MHz (7 subcarriers) of
            // -5 MHz.
            let zig_band: f64 = psd_emul
                .ordered()
                .iter()
                .filter(|(f, _)| (f * 20.0 + 5.0).abs() <= 1.1)
                .map(|(_, p)| p)
                .sum::<f64>()
                / psd_emul.power.iter().sum::<f64>();

            Ok(format!(
                "## Extension — Spectral placement (carrier-allocated mode)\n\n\
                 CSVs: results/ext_spectrum_*.csv\n\n\
                 Original ZigBee waveform: {} of power within ±1 MHz of its centre.\n\
                 Emulated 20 MHz waveform: {} of power within the ZigBee band at\n\
                 −5 MHz (the data subcarriers [-19, -13]); the rest is the OFDM\n\
                 frame structure outside the victim's 2 MHz filter.\n\
                 Captured at the ZigBee front-end: {} of power in ±1 MHz — the\n\
                 channel filter strips the WiFi scaffolding, leaving the emulation.\n",
                pct(psd_orig.band_power_fraction(0.25)),
                pct(zig_band),
                pct(psd_capt.band_power_fraction(0.25)),
            ))
        },
    })
}

const COEX_SIRS: [f64; 5] = [f64::INFINITY, 20.0, 10.0, 5.0, 0.0];

/// Coexistence: attack success and defense accuracy under a bursty
/// co-channel interferer of growing power.
pub fn coexistence(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "coexistence",
        cells: COEX_SIRS.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let sir_db = COEX_SIRS[cell];
            let power = if sir_db.is_finite() {
                10f64.powf(-sir_db / 10.0)
            } else {
                0.0
            };
            let interferer = Interferer::zigbee_like(0.35, power);
            let link = Link::awgn(14.0);
            let rx = Receiver::usrp();
            let det = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
            let z = interferer.apply(&link.transmit(&pair.original, rng), rng);
            let e = interferer.apply(&link.transmit(&pair.emulated, rng), rng);
            let rz = rx.receive(&z);
            let re = rx.receive(&e);
            Ok(vec![
                flag(det.detect(&rz).map(|v| v.is_attack).unwrap_or(false)),
                flag(det.detect(&re).map(|v| v.is_attack).unwrap_or(false)),
                flag(re.payload() == Some(&b"00000"[..])),
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, &sir_db) in COEX_SIRS.iter().enumerate() {
                rows.push(vec![
                    if sir_db.is_finite() {
                        format!("{sir_db}")
                    } else {
                        "no interferer".into()
                    },
                    pct(rate_of(&grouped[i], 2)),
                    pct(rate_of(&grouped[i], 0)),
                    pct(rate_of(&grouped[i], 1)),
                ]);
            }
            let header: Vec<String> = [
                "SIR (dB)",
                "attack success",
                "authentic false-flagged",
                "attack detected",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_coexistence.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Coexistence with an adjacent-channel interferer ({trials} frames per cell, 14 dB SNR)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nModerate interference leaves both the attack and the defense\n\
                 functional; at 0 dB SIR the interferer starts inflating the\n\
                 authentic constellation's statistics (false flags) before the\n\
                 attack itself fails — the defense degrades gracefully.\n",
            );
            Ok(out)
        },
    })
}

const FULLFRAME_SNRS: [f64; 3] = [9.0, 13.0, 17.0];

/// One-time synthesis + WiFi-side decode of the full-frame attack, shared
/// by every trial.
struct FullFrameSetup {
    at_zigbee: Vec<Complex>,
    header: String,
}

fn fullframe_setup(artifacts: &Artifacts) -> Result<Arc<FullFrameSetup>, ctc_core::Error> {
    artifacts.try_memo("fullframe:setup", || {
        let original = Transmitter::new().transmit_payload(b"00000")?;
        let attack = FullFrameAttack::new();
        let em = attack.emulate(&original);
        let wifi_rx = WifiReceiver::new().receive(&em.wifi_waveform);
        let wifi_ok = wifi_rx.as_ref().map(|r| r.psdu == em.psdu).unwrap_or(false);
        let header = format!(
            "Frame: {} samples at 20 MHz = PLCP + SIGNAL + {} data symbols,\n\
             PSDU {} bytes, constrained-codeword distance {}.\n\
             Stock 802.11g receiver decodes the exact PSDU: {}.\n\n",
            em.wifi_waveform.len(),
            em.data_symbols,
            em.psdu.len(),
            em.codeword_distance,
            wifi_ok,
        );
        Ok(FullFrameSetup {
            at_zigbee: attack.received_at_zigbee(&em),
            header,
        })
    })
}

/// The full-stack attack: one transmission, decoded by a stock WiFi
/// receiver *and* accepted by the ZigBee device.
pub fn fullframe(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "fullframe",
        cells: FULLFRAME_SNRS.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let setup = fullframe_setup(ctx.artifacts)?;
            let rx = Receiver::usrp().with_sync_search(160);
            let link = Link::awgn(FULLFRAME_SNRS[cell]);
            let r = rx.receive(&link.transmit(&setup.at_zigbee, rng));
            Ok(vec![flag(crate::trials::packet_ok(&r, b"00000"))])
        },
        reduce_fn: move |artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let setup = fullframe_setup(artifacts)?;
            let mut rows = Vec::new();
            for (i, &snr) in FULLFRAME_SNRS.iter().enumerate() {
                rows.push(vec![f2(snr), pct(rate_of(&grouped[i], 0))]);
            }
            let header: Vec<String> = ["SNR (dB)", "ZigBee control success"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            write_csv(&results, "ext_fullframe.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Full-stack attack ({trials} frames per SNR)\n\n"
            ));
            out.push_str(&setup.header);
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nOne RF transmission is simultaneously a standards-complete WiFi\n\
                 frame (SERVICE/tail constraints satisfied via constrained Viterbi)\n\
                 and a ZigBee control frame — the strongest form of the paper's\n\
                 attack, invisible to WiFi-side anomaly detection too.\n",
            );
            Ok(out)
        },
    })
}

/// Time-frequency anatomy of the full-frame attack: per-OFDM-symbol power
/// in the ZigBee band (−5 MHz ± 1.1 MHz) vs total — the spectrogram view
/// that separates the WiFi scaffolding (preamble, SIGNAL) from the
/// embedded emulation.
pub fn timefreq(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "timefreq",
        render: move |artifacts: &Artifacts| {
            use ctc_dsp::spectrogram::spectrogram;
            let pair = artifacts.pair(b"00000")?;
            let attack = FullFrameAttack::new();
            let em = attack.emulate(&pair.original);
            let s =
                spectrogram(&em.wifi_waveform, 64, 80, Window::Hann).expect("frame long enough");
            // ZigBee band at -5 MHz of 20 MHz = -0.25 cycles/sample; 7
            // subcarriers ~ +-1.1 MHz = 0.055.
            let mut rows = Vec::new();
            for (t, _) in s.frames.iter().enumerate() {
                let total: f64 = s.frames[t].iter().sum();
                let band = s.band_power(t, -0.25, 0.055);
                rows.push(vec![
                    format!("{t}"),
                    format!("{:.6e}", total),
                    format!("{:.6e}", band),
                    f4(if total > 0.0 { band / total } else { 0.0 }),
                ]);
            }
            let header: Vec<String> = [
                "ofdm_symbol",
                "total_power",
                "zigbee_band_power",
                "band_fraction",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_timefreq_fullframe.csv", &header, &rows)?;
            // Summaries: preamble frames (0..5) vs data frames (6..).
            let frac = |lo: usize, hi: usize| -> f64 {
                let mut band = 0.0;
                let mut total = 0.0;
                for t in lo..hi.min(s.len()) {
                    band += s.band_power(t, -0.25, 0.055);
                    total += s.frames[t].iter().sum::<f64>();
                }
                if total > 0.0 {
                    band / total
                } else {
                    0.0
                }
            };
            Ok(format!(
                "## Extension — Time-frequency anatomy of the full-frame attack\n\n\
                 CSV: results/ext_timefreq_fullframe.csv ({} OFDM-symbol frames)\n\n\
                 ZigBee-band power fraction in the PLCP preamble + SIGNAL (symbols\n\
                 0-5): {} — wideband training structure.\n\
                 ZigBee-band power fraction in the data field (symbols 6+): {} —\n\
                 the emulation dominates exactly where the victim's filter listens.\n",
                s.len(),
                pct(frac(0, 6)),
                pct(frac(6, s.len())),
            ))
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::{run_test, test_dir};

    fn dir() -> PathBuf {
        test_dir("ctc_advanced_test")
    }

    #[test]
    fn arms_race_renders() {
        assert!(run_test(arms_race(dir(), 3)).contains("LS attack detected"));
    }

    #[test]
    fn spectral_renders() {
        let out = run_test(spectral(dir()));
        assert!(out.contains("ZigBee band"));
    }

    #[test]
    fn fullframe_renders() {
        let out = run_test(fullframe(dir(), 3));
        assert!(out.contains("decodes the exact PSDU: true"));
    }
}
