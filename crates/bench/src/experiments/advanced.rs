//! Advanced extension experiments: the attack–defense arms race, spectral
//! placement, coexistence under interference, and the full-stack
//! (dual-protocol) attack.

use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::scenario::{mean, packet_success_rate, receive_trials, waveform_pair};
use ctc_channel::interference::Interferer;
use ctc_channel::Link;
use ctc_core::attack::{Emulator, FullFrameAttack, LeastSquaresEmulator};
use ctc_core::defense::{features_from_reception, ChannelAssumption, Detector};
use ctc_dsp::psd::{welch_psd, Window};
use ctc_dsp::Complex;
use ctc_wifi::WifiReceiver;
use ctc_zigbee::Receiver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Arms race: the baseline attacker vs the least-squares (CP-aware)
/// attacker, against a defender calibrated on the baseline.
pub fn arms_race(results_dir: &Path, per_class: usize) -> String {
    let pair = waveform_pair(b"00000");
    let ls = LeastSquaresEmulator::new();
    let ls_emulated = ls.received_at_zigbee(&ls.emulate(&pair.original));
    let rx = Receiver::usrp();
    let mut rows = Vec::new();
    for snr in [9.0, 13.0, 17.0] {
        let link = Link::awgn(snr);
        let stats = |wave: &[Complex], seed: u64| -> (f64, f64) {
            let de: Vec<f64> = receive_trials(wave, &link, &rx, per_class, seed)
                .iter()
                .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
                .collect();
            let rs = receive_trials(wave, &link, &rx, per_class, seed + 1);
            (mean(&de), packet_success_rate(&rs, b"00000"))
        };
        let (zig_de, _) = stats(&pair.original, 300_000 + snr as u64);
        let (base_de, base_ok) = stats(&pair.emulated, 301_000 + snr as u64);
        let (ls_de, ls_ok) = stats(&ls_emulated, 302_000 + snr as u64);
        // Defender calibrated on baseline-attack training data.
        let det = Detector::calibrate(
            ChannelAssumption::Ideal,
            &receive_trials(&pair.original, &link, &rx, per_class, 303_000 + snr as u64),
            &receive_trials(&pair.emulated, &link, &rx, per_class, 304_000 + snr as u64),
        );
        let ls_caught = receive_trials(&ls_emulated, &link, &rx, per_class, 305_000 + snr as u64)
            .iter()
            .filter(|r| det.detect(r).map(|v| v.is_attack).unwrap_or(false))
            .count();
        rows.push(vec![
            f2(snr),
            f4(zig_de),
            f4(base_de),
            f4(ls_de),
            pct(base_ok),
            pct(ls_ok),
            f4(det.threshold()),
            pct(ls_caught as f64 / per_class as f64),
        ]);
    }
    let header: Vec<String> = [
        "SNR (dB)",
        "authentic DE²",
        "baseline-attack DE²",
        "LS-attack DE²",
        "baseline success",
        "LS success",
        "calibrated Q",
        "LS attack detected",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_arms_race.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Arms race: CP-aware least-squares attacker ({per_class} frames per cell)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nThe LS attacker fits the kept subcarriers to the whole 80-sample\n\
         block (CP included), roughly halving its DE² signature while keeping\n\
         the attack success — yet it stays well above the authentic class, so\n\
         a defender calibrated only on the *baseline* attack still catches it.\n",
    );
    out
}

/// Spectral placement: band-power accounting of the original, emulated and
/// captured waveforms (the quantitative version of the paper's Fig. 3
/// spectrum sketch).
pub fn spectral(results_dir: &Path) -> String {
    let pair = waveform_pair(b"00000");
    let emulator = Emulator::new()
        .with_spectral_mode(ctc_core::attack::SpectralMode::CarrierAllocated);
    let em = emulator.emulate(&pair.original);

    let psd_orig = welch_psd(&pair.original, 64, Window::Hann).expect("long enough");
    let psd_emul = welch_psd(&em.waveform_20mhz, 64, Window::Hann).expect("long enough");
    let captured = emulator.received_at_zigbee(&em);
    let psd_capt = welch_psd(&captured, 64, Window::Hann).expect("long enough");

    // CSVs with natural frequency ordering.
    for (name, psd, rate_mhz) in [
        ("orig_4mhz", &psd_orig, 4.0),
        ("emulated_20mhz", &psd_emul, 20.0),
        ("captured_4mhz", &psd_capt, 4.0),
    ] {
        let rows: Vec<Vec<String>> = psd
            .ordered()
            .iter()
            .map(|(f, p)| vec![f4(f * rate_mhz), format!("{:.6e}", p)])
            .collect();
        let _ = write_csv(
            results_dir,
            &format!("ext_spectrum_{name}.csv"),
            &["freq_mhz".into(), "power".into()],
            &rows,
        );
    }

    // The ZigBee band sits at -5 MHz in the attacker's baseband: fraction of
    // emulated power within 1.09 MHz (7 subcarriers) of -5 MHz.
    let zig_band: f64 = psd_emul
        .ordered()
        .iter()
        .filter(|(f, _)| (f * 20.0 + 5.0).abs() <= 1.1)
        .map(|(_, p)| p)
        .sum::<f64>()
        / psd_emul.power.iter().sum::<f64>();

    format!(
        "## Extension — Spectral placement (carrier-allocated mode)\n\n\
         CSVs: results/ext_spectrum_*.csv\n\n\
         Original ZigBee waveform: {} of power within ±1 MHz of its centre.\n\
         Emulated 20 MHz waveform: {} of power within the ZigBee band at\n\
         −5 MHz (the data subcarriers [-19, -13]); the rest is the OFDM\n\
         frame structure outside the victim's 2 MHz filter.\n\
         Captured at the ZigBee front-end: {} of power in ±1 MHz — the\n\
         channel filter strips the WiFi scaffolding, leaving the emulation.\n",
        pct(psd_orig.band_power_fraction(0.25)),
        pct(zig_band),
        pct(psd_capt.band_power_fraction(0.25)),
    )
}

/// Coexistence: attack success and defense accuracy under a bursty
/// co-channel interferer of growing power.
pub fn coexistence(results_dir: &Path, trials: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let det = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let link = Link::awgn(14.0);
    let mut rows = Vec::new();
    for (i, sir_db) in [f64::INFINITY, 20.0, 10.0, 5.0, 0.0].into_iter().enumerate() {
        let power = if sir_db.is_finite() {
            10f64.powf(-sir_db / 10.0)
        } else {
            0.0
        };
        let interferer = Interferer::zigbee_like(0.35, power);
        let mut rng = StdRng::seed_from_u64(310_000 + i as u64);
        let mut zig_fp = 0usize;
        let mut emu_caught = 0usize;
        let mut emu_ok = 0usize;
        for _ in 0..trials {
            let z = interferer.apply(&link.transmit(&pair.original, &mut rng), &mut rng);
            let e = interferer.apply(&link.transmit(&pair.emulated, &mut rng), &mut rng);
            let rz = rx.receive(&z);
            let re = rx.receive(&e);
            zig_fp += usize::from(det.detect(&rz).map(|v| v.is_attack).unwrap_or(false));
            emu_caught += usize::from(det.detect(&re).map(|v| v.is_attack).unwrap_or(false));
            emu_ok += usize::from(re.payload() == Some(&b"00000"[..]));
        }
        rows.push(vec![
            if sir_db.is_finite() {
                format!("{sir_db}")
            } else {
                "no interferer".into()
            },
            pct(emu_ok as f64 / trials as f64),
            pct(zig_fp as f64 / trials as f64),
            pct(emu_caught as f64 / trials as f64),
        ]);
    }
    let header: Vec<String> = [
        "SIR (dB)",
        "attack success",
        "authentic false-flagged",
        "attack detected",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_coexistence.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Coexistence with an adjacent-channel interferer ({trials} frames per cell, 14 dB SNR)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nModerate interference leaves both the attack and the defense\n\
         functional; at 0 dB SIR the interferer starts inflating the\n\
         authentic constellation's statistics (false flags) before the\n\
         attack itself fails — the defense degrades gracefully.\n",
    );
    out
}

/// The full-stack attack: one transmission, decoded by a stock WiFi
/// receiver *and* accepted by the ZigBee device.
pub fn fullframe(results_dir: &Path, trials: usize) -> String {
    let pair = waveform_pair(b"00000");
    let attack = FullFrameAttack::new();
    let em = attack.emulate(&pair.original);

    // WiFi side.
    let wifi_rx = WifiReceiver::new().receive(&em.wifi_waveform);
    let wifi_ok = wifi_rx
        .as_ref()
        .map(|r| r.psdu == em.psdu)
        .unwrap_or(false);

    // ZigBee side under noise.
    let at_zigbee = attack.received_at_zigbee(&em);
    let rx = Receiver::usrp().with_sync_search(160);
    let mut rows = Vec::new();
    for snr in [9.0, 13.0, 17.0] {
        let rs = receive_trials(&at_zigbee, &Link::awgn(snr), &rx, trials, 320_000 + snr as u64);
        rows.push(vec![f2(snr), pct(packet_success_rate(&rs, b"00000"))]);
    }
    let header: Vec<String> = ["SNR (dB)", "ZigBee control success"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_fullframe.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Full-stack attack ({trials} frames per SNR)\n\n\
         Frame: {} samples at 20 MHz = PLCP + SIGNAL + {} data symbols,\n\
         PSDU {} bytes, constrained-codeword distance {}.\n\
         Stock 802.11g receiver decodes the exact PSDU: {}.\n\n",
        em.wifi_waveform.len(),
        em.data_symbols,
        em.psdu.len(),
        em.codeword_distance,
        wifi_ok,
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nOne RF transmission is simultaneously a standards-complete WiFi\n\
         frame (SERVICE/tail constraints satisfied via constrained Viterbi)\n\
         and a ZigBee control frame — the strongest form of the paper's\n\
         attack, invisible to WiFi-side anomaly detection too.\n",
    );
    out
}

/// Time-frequency anatomy of the full-frame attack: per-OFDM-symbol power
/// in the ZigBee band (−5 MHz ± 1.1 MHz) vs total — the spectrogram view
/// that separates the WiFi scaffolding (preamble, SIGNAL) from the
/// embedded emulation.
pub fn timefreq(results_dir: &Path) -> String {
    use ctc_dsp::spectrogram::spectrogram;
    let pair = waveform_pair(b"00000");
    let attack = FullFrameAttack::new();
    let em = attack.emulate(&pair.original);
    let s = spectrogram(&em.wifi_waveform, 64, 80, Window::Hann).expect("frame long enough");
    // ZigBee band at -5 MHz of 20 MHz = -0.25 cycles/sample; 7 subcarriers
    // ~ +-1.1 MHz = 0.055.
    let mut rows = Vec::new();
    for (t, _) in s.frames.iter().enumerate() {
        let total: f64 = s.frames[t].iter().sum();
        let band = s.band_power(t, -0.25, 0.055);
        rows.push(vec![
            format!("{t}"),
            format!("{:.6e}", total),
            format!("{:.6e}", band),
            f4(if total > 0.0 { band / total } else { 0.0 }),
        ]);
    }
    let header: Vec<String> = [
        "ofdm_symbol",
        "total_power",
        "zigbee_band_power",
        "band_fraction",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_timefreq_fullframe.csv", &header, &rows);
    // Summaries: preamble frames (0..5) vs data frames (6..).
    let frac = |lo: usize, hi: usize| -> f64 {
        let mut band = 0.0;
        let mut total = 0.0;
        for t in lo..hi.min(s.len()) {
            band += s.band_power(t, -0.25, 0.055);
            total += s.frames[t].iter().sum::<f64>();
        }
        if total > 0.0 { band / total } else { 0.0 }
    };
    format!(
        "## Extension — Time-frequency anatomy of the full-frame attack\n\n\
         CSV: results/ext_timefreq_fullframe.csv ({} OFDM-symbol frames)\n\n\
         ZigBee-band power fraction in the PLCP preamble + SIGNAL (symbols\n\
         0-5): {} — wideband training structure.\n\
         ZigBee-band power fraction in the data field (symbols 6+): {} —\n\
         the emulation dominates exactly where the victim's filter listens.\n",
        s.len(),
        pct(frac(0, 6)),
        pct(frac(6, s.len())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        std::env::temp_dir().join("ctc_advanced_test")
    }

    #[test]
    fn arms_race_renders() {
        assert!(arms_race(&dir(), 3).contains("LS attack detected"));
    }

    #[test]
    fn spectral_renders() {
        let out = spectral(&dir());
        assert!(out.contains("ZigBee band"));
    }

    #[test]
    fn fullframe_renders() {
        let out = fullframe(&dir(), 3);
        assert!(out.contains("decodes the exact PSDU: true"));
    }
}
