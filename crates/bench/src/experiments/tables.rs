//! Reproductions of the paper's tables (I–V) as [`Experiment`]s.

use crate::engine::{column, flag, rate_of, Artifacts, Ctx, Experiment, MonteCarlo, OneShot};
use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::trials::mean;
use ctc_channel::pathloss::{rssi_dbm, PathLoss};
use ctc_channel::Link;
use ctc_core::attack::spectrum::{block_spectra, select_subcarriers};
use ctc_core::defense::features_from_reception;
use ctc_dsp::cumulants::{Cumulants, Modulation};
use ctc_dsp::resample::interpolate;
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use std::path::PathBuf;

/// Table I: frequency components of the observed ZigBee waveform per FFT
/// bin, six consecutive blocks, plus the bins the two-step selection keeps.
pub fn table1(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "table1",
        render: move |artifacts: &Artifacts| {
            let pair = artifacts.pair(b"00000")?;
            let wide = interpolate(&pair.original, 5).expect("factor 5");
            let spectra = block_spectra(&wide);
            let shown = &spectra[..6.min(spectra.len())];
            let kept = select_subcarriers(&spectra, 3.0, 7);

            // Paper prints bins 1..7 and 55..64 (1-based); ours are 0-based.
            let mut rows = Vec::new();
            let mut csv_rows = Vec::new();
            let row_bins: Vec<usize> = (0..7).chain(54..64).collect();
            for bin in row_bins {
                let mut row = vec![format!("{}", bin + 1)];
                let mut csv = vec![format!("{}", bin + 1)];
                for s in shown {
                    let m = s.components[bin].norm();
                    row.push(f4(m));
                    csv.push(f4(m));
                }
                rows.push(row);
                csv_rows.push(csv);
            }
            let mut header = vec!["bin (1-based)".to_string()];
            for i in 0..shown.len() {
                header.push(format!("block {}", i + 1));
            }
            write_csv(&results, "table1_frequency_points.csv", &header, &csv_rows)?;

            let mut out = String::new();
            out.push_str("## Table I — Frequency points of the ZigBee waveform\n\n");
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(&format!(
                "\nSelected bins (0-based): {kept:?}  (paper keeps 1-based 1-4 and 62-64, i.e. 0-based 0-3 and 61-63)\n",
            ));
            Ok(out)
        },
    })
}

/// Table II: emulation-attack packet success rate under AWGN,
/// `trials` transmissions per SNR (paper: 1000).
pub fn table2(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    // The paper's columns (7–17 dB) plus a low-SNR extension: our coherent
    // matched-filter receiver is ~5 dB stronger than the paper's GNURadio
    // pipeline, so the 42%→100% transition appears below 7 dB here.
    const SNRS: [f64; 10] = [0.0, 2.0, 4.0, 6.0, 7.0, 9.0, 11.0, 13.0, 15.0, 17.0];
    Box::new(MonteCarlo {
        name: "table2",
        cells: SNRS.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let rx = Receiver::usrp();
            let r = rx.receive(&Link::awgn(SNRS[cell]).transmit(&pair.emulated, rng));
            Ok(vec![flag(crate::trials::packet_ok(&r, b"00000"))])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let rates: Vec<f64> = grouped.iter().map(|cell| rate_of(cell, 0)).collect();
            let header: Vec<String> = std::iter::once("SNR".to_string())
                .chain(SNRS.iter().map(|s| format!("{s} dB")))
                .collect();
            let row: Vec<String> = std::iter::once("Successful rate".to_string())
                .chain(rates.iter().map(|&r| pct(r)))
                .collect();
            let csv_rows: Vec<Vec<String>> = SNRS
                .iter()
                .zip(&rates)
                .map(|(&s, &r)| vec![f2(s), f4(r)])
                .collect();
            write_csv(
                &results,
                "table2_attack_success_rate.csv",
                &["snr_db".to_string(), "success_rate".to_string()],
                &csv_rows,
            )?;

            let mut out = String::new();
            out.push_str(&format!(
                "## Table II — Emulation attack performance under AWGN ({trials} transmissions per SNR)\n\n"
            ));
            out.push_str(&markdown_table(&header, &[row]));
            out.push_str(
                "\nPaper (7–17 dB): 42.4% / 69.2% / 87.4% / 93.3% / 97.2% / 100% —\n\
                 a monotone rise to 100%. Our curve has the same shape shifted ~5 dB\n\
                 left (stronger receiver); the paper's claim — the attack fully\n\
                 controls the device at practical SNRs — reproduces a fortiori.\n",
            );
            Ok(out)
        },
    })
}

/// Table III: theoretical cumulants vs sampled estimates for every
/// modulation (100k noisy symbols each, one parallel trial per modulation).
pub fn table3(results: PathBuf) -> Box<dyn Experiment> {
    let cells = Modulation::all().len();
    Box::new(MonteCarlo {
        name: "table3",
        cells,
        per_cell: 1,
        trial_fn: |_ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let m = Modulation::all()[cell];
            let constellation = m.constellation();
            // Sample symbols uniformly with mild noise (30 dB) to exercise
            // the estimators rather than evaluate exact expectations.
            let pts: Vec<Complex> = (0..100_000)
                .map(|_| {
                    let p = constellation[rand::Rng::gen_range(rng, 0..constellation.len())];
                    p + ctc_channel::noise::complex_gaussian(rng, 1e-3)
                })
                .collect();
            let c = Cumulants::estimate(&pts).expect("nonempty");
            Ok(vec![
                c.c20().norm(),
                c.c40_normalized().re,
                c.c42_normalized(),
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            let mut csv_rows = Vec::new();
            for (cell, m) in Modulation::all().into_iter().enumerate() {
                let est = &grouped[cell][0];
                rows.push(vec![
                    m.to_string(),
                    f4(m.theoretical_c20()),
                    f4(est[0]),
                    f4(m.theoretical_c40()),
                    f4(est[1]),
                    f4(m.theoretical_c42()),
                    f4(est[2]),
                ]);
                csv_rows.push(vec![
                    m.to_string(),
                    f4(m.theoretical_c40()),
                    f4(est[1]),
                    f4(m.theoretical_c42()),
                    f4(est[2]),
                ]);
            }
            let header: Vec<String> = [
                "Modulation",
                "C20 (theory)",
                "|C20| (est)",
                "C40 (theory)",
                "C40 (est)",
                "C42 (theory)",
                "C42 (est)",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(
                &results,
                "table3_theoretical_cumulants.csv",
                &[
                    "modulation".into(),
                    "c40_theory".into(),
                    "c40_est".into(),
                    "c42_theory".into(),
                    "c42_est".into(),
                ],
                &csv_rows,
            )?;
            let mut out = String::new();
            out.push_str("## Table III — Theoretical cumulants (C21 = 1) vs sampled estimates\n\n");
            out.push_str(&markdown_table(&header, &rows));
            Ok(out)
        },
    })
}

const TABLE4_SNRS: [f64; 3] = [7.0, 12.0, 17.0];

/// Table IV: averaged DE² over `per_class` training waveforms at SNR
/// 7/12/17 dB for both classes (paper: 50 waveforms each).
pub fn table4(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "table4",
        // cell = snr_index * 2 + class (0 = ZigBee, 1 = emulated).
        cells: TABLE4_SNRS.len() * 2,
        per_cell: per_class,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let link = Link::awgn(TABLE4_SNRS[cell / 2]);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            Ok(match features_from_reception(&r) {
                Ok(f) => vec![f.de_squared_ideal()],
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let cell_mean = |i: usize| mean(&column(&grouped[i], 0));
            let zig_means: Vec<f64> = (0..TABLE4_SNRS.len()).map(|i| cell_mean(i * 2)).collect();
            let emu_means: Vec<f64> = (0..TABLE4_SNRS.len())
                .map(|i| cell_mean(i * 2 + 1))
                .collect();
            let header: Vec<String> = std::iter::once("SNR".to_string())
                .chain(TABLE4_SNRS.iter().map(|s| format!("{s} dB")))
                .collect();
            let rows = vec![
                std::iter::once("ZigBee waveform".to_string())
                    .chain(zig_means.iter().map(|&v| f4(v)))
                    .collect::<Vec<_>>(),
                std::iter::once("Emulated waveform".to_string())
                    .chain(emu_means.iter().map(|&v| f4(v)))
                    .collect::<Vec<_>>(),
            ];
            let csv_rows: Vec<Vec<String>> = TABLE4_SNRS
                .iter()
                .enumerate()
                .map(|(i, &s)| vec![f2(s), f4(zig_means[i]), f4(emu_means[i])])
                .collect();
            write_csv(
                &results,
                "table4_de_squared.csv",
                &["snr_db".into(), "zigbee_de2".into(), "emulated_de2".into()],
                &csv_rows,
            )?;

            let mut out = String::new();
            out.push_str(&format!(
                "## Table IV — Averaged DE² over {per_class} training waveforms per class\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nPaper: ZigBee 0.1546/0.0642/0.0421 vs emulated 1.7140/1.6238/1.5536.\n\
                 Shape check: ZigBee DE² falls with SNR; emulated DE² stays an order\n\
                 of magnitude higher, leaving a threshold gap at every SNR.\n",
            );
            Ok(out)
        },
    })
}

const TABLE5_DISTANCES: [f64; 6] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];

/// Table V: averaged DE² (real-channel |C40| variant) vs distance for both
/// classes, plus the RSSI row of Fig. 13's inset.
pub fn table5(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "table5",
        // cell = distance_index * 2 + class (0 = ZigBee, 1 = emulated).
        cells: TABLE5_DISTANCES.len() * 2,
        per_cell: per_class,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let link = Link::real_indoor(TABLE5_DISTANCES[cell / 2], 0.0);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            Ok(match features_from_reception(&r) {
                Ok(f) => vec![f.de_squared_real()],
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let pl = PathLoss::indoor_2_4ghz();
            let mut rows_zig = vec!["ZigBee waveform".to_string()];
            let mut rows_emu = vec!["Emulated waveform".to_string()];
            let mut rows_rssi = vec!["RSSI (dBm)".to_string()];
            let mut csv_rows = Vec::new();
            for (i, &d) in TABLE5_DISTANCES.iter().enumerate() {
                let zig = mean(&column(&grouped[i * 2], 0));
                let emu = mean(&column(&grouped[i * 2 + 1], 0));
                let rssi = rssi_dbm(&pl, 0.0, d);
                rows_zig.push(f4(zig));
                rows_emu.push(f4(emu));
                rows_rssi.push(format!("{rssi}"));
                csv_rows.push(vec![f2(d), f4(zig), f4(emu), format!("{rssi}")]);
            }
            let header: Vec<String> = std::iter::once("Distance".to_string())
                .chain(TABLE5_DISTANCES.iter().map(|d| format!("{d} m")))
                .collect();
            write_csv(
                &results,
                "table5_real_environment.csv",
                &[
                    "distance_m".into(),
                    "zigbee_de2".into(),
                    "emulated_de2".into(),
                    "rssi_dbm".into(),
                ],
                &csv_rows,
            )?;

            let mut out = String::new();
            out.push_str(&format!(
                "## Table V — Real-environment DE² (|C40| variant) vs distance ({per_class} waveforms per class)\n\n"
            ));
            out.push_str(&markdown_table(&header, &[rows_zig, rows_emu, rows_rssi]));
            out.push_str(
                "\nPaper: ZigBee ≈ 0.0003–0.0103 vs emulated ≈ 1.14–2.00 at 1–6 m;\n\
                 any threshold in the gap (paper suggests [0.1, 1]) detects the attacker.\n",
            );
            Ok(out)
        },
    })
}

const PHY_SNRS: [f64; 5] = [-2.0, 0.0, 2.0, 4.0, 6.0];
const PHY_PAYLOAD: &[u8] = b"0123456789";

/// Per-frame chip/symbol expectations for the PHY validation experiment.
struct PhySetup {
    wave: Vec<Complex>,
    expected_chips: Vec<u8>,
    expected_syms: Vec<u8>,
}

fn phy_setup(artifacts: &Artifacts) -> Result<std::sync::Arc<PhySetup>, ctc_core::Error> {
    artifacts.try_memo("phy:setup", || {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(PHY_PAYLOAD)?;
        let expected_syms = ctc_zigbee::frame::build_frame_symbols(PHY_PAYLOAD)?;
        let expected_chips = tx.symbols_to_chips(&expected_syms);
        Ok(PhySetup {
            wave,
            expected_chips,
            expected_syms,
        })
    })
}

/// Substrate validation: measured chip-error rate of the O-QPSK receiver
/// vs the coherent-BPSK theory curve `p = Q(sqrt(2 SNR_chip))`, plus the
/// DSSS-decoded symbol error rate — evidence the PHY behaves textbook-like
/// before any attack numbers are trusted.
pub fn phy_validation(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "phy",
        cells: PHY_SNRS.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let setup = phy_setup(ctx.artifacts)?;
            let link = Link::awgn(PHY_SNRS[cell]);
            let r = Receiver::usrp().receive(&link.transmit(&setup.wave, rng));
            let got = r.chip_samples.hard_chips();
            let mut chip_errs = 0usize;
            let mut chips_total = 0usize;
            for (a, b) in got.iter().zip(&setup.expected_chips) {
                chip_errs += usize::from(a != b);
                chips_total += 1;
            }
            let sym_errs = r.symbol_errors(&setup.expected_syms);
            Ok(vec![
                chip_errs as f64,
                chips_total as f64,
                sym_errs as f64,
                setup.expected_syms.len() as f64,
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (cell, &snr) in PHY_SNRS.iter().enumerate() {
                let sum = |idx: usize| -> f64 { column(&grouped[cell], idx).iter().sum() };
                let (chip_errs, chips_total) = (sum(0), sum(1));
                let (sym_errs, syms_total) = (sum(2), sum(3));
                // Per-chip SNR: unit-power constant-envelope signal, chip
                // decision on one sample's real/imag part with noise
                // variance sigma^2/2.
                let sigma2 = 10f64.powf(-snr / 10.0);
                let theory = q_function((2.0 / sigma2).sqrt());
                rows.push(vec![
                    f2(snr),
                    format!("{:.5}", chip_errs / chips_total),
                    format!("{:.5}", theory),
                    format!("{:.5}", sym_errs / syms_total),
                ]);
            }
            let header: Vec<String> = [
                "SNR (dB)",
                "measured chip error rate",
                "theory Q(sqrt(2/sigma^2))",
                "symbol error rate (DSSS)",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_phy_validation.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — PHY substrate validation ({trials} frames per SNR)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nThe measured chip-error rate follows the coherent-BPSK theory curve\n\
                 with a 2-3 dB implementation loss at these very low SNRs — the\n\
                 preamble-based phase/CFO estimates are themselves noise-limited\n\
                 there (the loss vanishes above ~6 dB, where every attack/defense\n\
                 experiment operates). DSSS despreading crushes symbol errors well\n\
                 below chip errors, the processing gain the attack exploits.\n",
            );
            Ok(out)
        },
    })
}

/// Q(x) via the complementary error function (Abramowitz & Stegun 7.1.26).
fn q_function(x: f64) -> f64 {
    fn erfc(x: f64) -> f64 {
        let z = x.abs();
        let t = 1.0 / (1.0 + 0.5 * z);
        let ans = t
            * (-z * z - 1.26551223
                + t * (1.00002368
                    + t * (0.37409196
                        + t * (0.09678418
                            + t * (-0.18628806
                                + t * (0.27886807
                                    + t * (-1.13520398
                                        + t * (1.48851587
                                            + t * (-0.82215223 + t * 0.17087277)))))))))
                .exp();
        if x >= 0.0 {
            ans
        } else {
            2.0 - ans
        }
    }
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Runs one experiment on a small thread pool for tests.
#[cfg(test)]
pub(crate) fn run_test(exp: Box<dyn Experiment>) -> String {
    let artifacts = Artifacts::new();
    crate::engine::TrialRunner::new(2)
        .run(&*exp, &artifacts)
        .unwrap()
        .text
}

#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        test_dir("ctc_tables_test")
    }

    #[test]
    fn table1_mentions_selected_bins() {
        let out = run_test(table1(dir()));
        assert!(out.contains("Selected bins"));
        assert!(out.contains("block 6"));
    }

    #[test]
    fn table2_small_run() {
        let out = run_test(table2(dir(), 5));
        assert!(out.contains("17 dB"));
        assert!(out.contains('%'));
    }

    #[test]
    fn table3_rows_for_every_modulation() {
        let out = run_test(table3(dir()));
        for name in ["BPSK", "QPSK", "64-QAM", "256-QAM"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table4_gap_present_even_in_small_run() {
        let out = run_test(table4(dir(), 5));
        assert!(out.contains("ZigBee waveform"));
        assert!(out.contains("Emulated waveform"));
    }

    #[test]
    fn table5_small_run() {
        let out = run_test(table5(dir(), 3));
        assert!(out.contains("RSSI"));
        assert!(out.contains("6 m"));
    }
}
