//! Reproductions of the paper's tables (I–V).

use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::scenario::{mean, packet_success_rate, receive_trials, waveform_pair};
use ctc_channel::pathloss::{rssi_dbm, PathLoss};
use ctc_channel::Link;
use ctc_core::attack::spectrum::{block_spectra, select_subcarriers};
use ctc_core::defense::features_from_reception;
use ctc_dsp::cumulants::{Cumulants, Modulation};
use ctc_dsp::resample::interpolate;
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Table I: frequency components of the observed ZigBee waveform per FFT
/// bin, six consecutive blocks, plus the bins the two-step selection keeps.
pub fn table1(results_dir: &Path) -> String {
    let pair = waveform_pair(b"00000");
    let wide = interpolate(&pair.original, 5).expect("factor 5");
    let spectra = block_spectra(&wide);
    let shown = &spectra[..6.min(spectra.len())];
    let kept = select_subcarriers(&spectra, 3.0, 7);

    // Paper prints bins 1..7 and 55..64 (1-based); ours are 0-based.
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let row_bins: Vec<usize> = (0..7).chain(54..64).collect();
    for bin in row_bins {
        let mut row = vec![format!("{}", bin + 1)];
        let mut csv = vec![format!("{}", bin + 1)];
        for s in shown {
            let m = s.components[bin].norm();
            row.push(f4(m));
            csv.push(f4(m));
        }
        rows.push(row);
        csv_rows.push(csv);
    }
    let mut header = vec!["bin (1-based)".to_string()];
    for i in 0..shown.len() {
        header.push(format!("block {}", i + 1));
    }
    let _ = write_csv(results_dir, "table1_frequency_points.csv", &header, &csv_rows);

    let mut out = String::new();
    out.push_str("## Table I — Frequency points of the ZigBee waveform\n\n");
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(&format!(
        "\nSelected bins (0-based): {kept:?}  (paper keeps 1-based 1-4 and 62-64, i.e. 0-based 0-3 and 61-63)\n",
    ));
    out
}

/// Table II: emulation-attack packet success rate under AWGN,
/// `trials` transmissions per SNR (paper: 1000).
pub fn table2(results_dir: &Path, trials: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    // The paper's columns (7–17 dB) plus a low-SNR extension: our coherent
    // matched-filter receiver is ~5 dB stronger than the paper's GNURadio
    // pipeline, so the 42%→100% transition appears below 7 dB here.
    let snrs = [0.0, 2.0, 4.0, 6.0, 7.0, 9.0, 11.0, 13.0, 15.0, 17.0];
    let mut rates = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let rs = receive_trials(&pair.emulated, &Link::awgn(snr), &rx, trials, 20_000 + i as u64);
        rates.push(packet_success_rate(&rs, b"00000"));
    }
    let header: Vec<String> = std::iter::once("SNR".to_string())
        .chain(snrs.iter().map(|s| format!("{s} dB")))
        .collect();
    let row: Vec<String> = std::iter::once("Successful rate".to_string())
        .chain(rates.iter().map(|&r| pct(r)))
        .collect();
    let csv_rows: Vec<Vec<String>> = snrs
        .iter()
        .zip(&rates)
        .map(|(&s, &r)| vec![f2(s), f4(r)])
        .collect();
    let _ = write_csv(
        results_dir,
        "table2_attack_success_rate.csv",
        &["snr_db".to_string(), "success_rate".to_string()],
        &csv_rows,
    );

    let mut out = String::new();
    out.push_str(&format!(
        "## Table II — Emulation attack performance under AWGN ({trials} transmissions per SNR)\n\n"
    ));
    out.push_str(&markdown_table(&header, &[row]));
    out.push_str(
        "\nPaper (7–17 dB): 42.4% / 69.2% / 87.4% / 93.3% / 97.2% / 100% —\n\
         a monotone rise to 100%. Our curve has the same shape shifted ~5 dB\n\
         left (stronger receiver); the paper's claim — the attack fully\n\
         controls the device at practical SNRs — reproduces a fortiori.\n",
    );
    out
}

/// Table III: theoretical cumulants vs sampled estimates for every
/// modulation (100k noisy symbols each).
pub fn table3(results_dir: &Path) -> String {
    let mut rng = StdRng::seed_from_u64(30_000);
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for m in Modulation::all() {
        let constellation = m.constellation();
        // Sample symbols uniformly with mild noise (30 dB) to exercise the
        // estimators rather than evaluate exact expectations.
        let pts: Vec<Complex> = (0..100_000)
            .map(|_| {
                let p = constellation[rand::Rng::gen_range(&mut rng, 0..constellation.len())];
                p + ctc_channel::noise::complex_gaussian(&mut rng, 1e-3)
            })
            .collect();
        let c = Cumulants::estimate(&pts).expect("nonempty");
        rows.push(vec![
            m.to_string(),
            f4(m.theoretical_c20()),
            f4(c.c20().norm()),
            f4(m.theoretical_c40()),
            f4(c.c40_normalized().re),
            f4(m.theoretical_c42()),
            f4(c.c42_normalized()),
        ]);
        csv_rows.push(vec![
            m.to_string(),
            f4(m.theoretical_c40()),
            f4(c.c40_normalized().re),
            f4(m.theoretical_c42()),
            f4(c.c42_normalized()),
        ]);
    }
    let header: Vec<String> = [
        "Modulation",
        "C20 (theory)",
        "|C20| (est)",
        "C40 (theory)",
        "C40 (est)",
        "C42 (theory)",
        "C42 (est)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(
        results_dir,
        "table3_theoretical_cumulants.csv",
        &["modulation".into(), "c40_theory".into(), "c40_est".into(), "c42_theory".into(), "c42_est".into()],
        &csv_rows,
    );
    let mut out = String::new();
    out.push_str("## Table III — Theoretical cumulants (C21 = 1) vs sampled estimates\n\n");
    out.push_str(&markdown_table(&header, &rows));
    out
}

/// Table IV: averaged DE² over `per_class` training waveforms at SNR
/// 7/12/17 dB for both classes (paper: 50 waveforms each).
pub fn table4(results_dir: &Path, per_class: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let snrs = [7.0, 12.0, 17.0];
    let mut zig_means = Vec::new();
    let mut emu_means = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let link = Link::awgn(snr);
        let zig: Vec<f64> = receive_trials(&pair.original, &link, &rx, per_class, 40_000 + i as u64)
            .iter()
            .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
            .collect();
        let emu: Vec<f64> = receive_trials(&pair.emulated, &link, &rx, per_class, 41_000 + i as u64)
            .iter()
            .filter_map(|r| Some(features_from_reception(r).ok()?.de_squared_ideal()))
            .collect();
        zig_means.push(mean(&zig));
        emu_means.push(mean(&emu));
    }
    let header: Vec<String> = std::iter::once("SNR".to_string())
        .chain(snrs.iter().map(|s| format!("{s} dB")))
        .collect();
    let rows = vec![
        std::iter::once("ZigBee waveform".to_string())
            .chain(zig_means.iter().map(|&v| f4(v)))
            .collect::<Vec<_>>(),
        std::iter::once("Emulated waveform".to_string())
            .chain(emu_means.iter().map(|&v| f4(v)))
            .collect::<Vec<_>>(),
    ];
    let csv_rows: Vec<Vec<String>> = snrs
        .iter()
        .enumerate()
        .map(|(i, &s)| vec![f2(s), f4(zig_means[i]), f4(emu_means[i])])
        .collect();
    let _ = write_csv(
        results_dir,
        "table4_de_squared.csv",
        &["snr_db".into(), "zigbee_de2".into(), "emulated_de2".into()],
        &csv_rows,
    );

    let mut out = String::new();
    out.push_str(&format!(
        "## Table IV — Averaged DE² over {per_class} training waveforms per class\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nPaper: ZigBee 0.1546/0.0642/0.0421 vs emulated 1.7140/1.6238/1.5536.\n\
         Shape check: ZigBee DE² falls with SNR; emulated DE² stays an order\n\
         of magnitude higher, leaving a threshold gap at every SNR.\n",
    );
    out
}

/// Table V: averaged DE² (real-channel |C40| variant) vs distance for both
/// classes, plus the RSSI row of Fig. 13's inset.
pub fn table5(results_dir: &Path, per_class: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let detector_stat = |r: &ctc_zigbee::Reception| -> Option<f64> {
        Some(features_from_reception(r).ok()?.de_squared_real())
    };
    let distances = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let pl = PathLoss::indoor_2_4ghz();
    let mut rows_zig = vec!["ZigBee waveform".to_string()];
    let mut rows_emu = vec!["Emulated waveform".to_string()];
    let mut rows_rssi = vec!["RSSI (dBm)".to_string()];
    let mut csv_rows = Vec::new();
    for (i, &d) in distances.iter().enumerate() {
        let link = Link::real_indoor(d, 0.0);
        let zig: Vec<f64> = receive_trials(&pair.original, &link, &rx, per_class, 50_000 + i as u64)
            .iter()
            .filter_map(detector_stat)
            .collect();
        let emu: Vec<f64> = receive_trials(&pair.emulated, &link, &rx, per_class, 51_000 + i as u64)
            .iter()
            .filter_map(detector_stat)
            .collect();
        let rssi = rssi_dbm(&pl, 0.0, d);
        rows_zig.push(f4(mean(&zig)));
        rows_emu.push(f4(mean(&emu)));
        rows_rssi.push(format!("{rssi}"));
        csv_rows.push(vec![
            f2(d),
            f4(mean(&zig)),
            f4(mean(&emu)),
            format!("{rssi}"),
        ]);
    }
    let header: Vec<String> = std::iter::once("Distance".to_string())
        .chain(distances.iter().map(|d| format!("{d} m")))
        .collect();
    let _ = write_csv(
        results_dir,
        "table5_real_environment.csv",
        &["distance_m".into(), "zigbee_de2".into(), "emulated_de2".into(), "rssi_dbm".into()],
        &csv_rows,
    );

    let mut out = String::new();
    out.push_str(&format!(
        "## Table V — Real-environment DE² (|C40| variant) vs distance ({per_class} waveforms per class)\n\n"
    ));
    out.push_str(&markdown_table(&header, &[rows_zig, rows_emu, rows_rssi]));
    out.push_str(
        "\nPaper: ZigBee ≈ 0.0003–0.0103 vs emulated ≈ 1.14–2.00 at 1–6 m;\n\
         any threshold in the gap (paper suggests [0.1, 1]) detects the attacker.\n",
    );
    out
}

/// Substrate validation: measured chip-error rate of the O-QPSK receiver
/// vs the coherent-BPSK theory curve `p = Q(sqrt(2 SNR_chip))`, plus the
/// DSSS-decoded symbol error rate — evidence the PHY behaves textbook-like
/// before any attack numbers are trusted.
pub fn phy_validation(results_dir: &Path, trials: usize) -> String {
    // Q(x) via the complementary error function (Abramowitz & Stegun 7.1.26).
    fn erfc(x: f64) -> f64 {
        let z = x.abs();
        let t = 1.0 / (1.0 + 0.5 * z);
        let ans = t
            * (-z * z - 1.26551223
                + t * (1.00002368
                    + t * (0.37409196
                        + t * (0.09678418
                            + t * (-0.18628806
                                + t * (0.27886807
                                    + t * (-1.13520398
                                        + t * (1.48851587
                                            + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
        if x >= 0.0 { ans } else { 2.0 - ans }
    }
    fn q(x: f64) -> f64 {
        0.5 * erfc(x / std::f64::consts::SQRT_2)
    }

    let tx = Transmitter::new();
    let payload = b"0123456789";
    let wave = tx.transmit_payload(payload).expect("short payload");
    let expected_chips: Vec<u8> = {
        let symbols = ctc_zigbee::frame::build_frame_symbols(payload).expect("short");
        tx.symbols_to_chips(&symbols)
    };
    let rx = Receiver::usrp();
    let mut rows = Vec::new();
    for (i, &snr) in [-2.0f64, 0.0, 2.0, 4.0, 6.0].iter().enumerate() {
        let link = Link::awgn(snr);
        let mut chip_errs = 0usize;
        let mut chips_total = 0usize;
        let mut sym_errs = 0usize;
        let mut syms_total = 0usize;
        let expected_syms = ctc_zigbee::frame::build_frame_symbols(payload).expect("short");
        for r in receive_trials(&wave, &link, &rx, trials, 460_000 + i as u64) {
            let got = r.chip_samples.hard_chips();
            for (a, b) in got.iter().zip(&expected_chips) {
                chip_errs += usize::from(a != b);
                chips_total += 1;
            }
            sym_errs += r.symbol_errors(&expected_syms);
            syms_total += expected_syms.len();
        }
        // Per-chip SNR: unit-power constant-envelope signal, chip decision on
        // one sample's real/imag part with noise variance sigma^2/2.
        let sigma2 = 10f64.powf(-snr / 10.0);
        let theory = q((2.0 / sigma2).sqrt());
        rows.push(vec![
            f2(snr),
            format!("{:.5}", chip_errs as f64 / chips_total as f64),
            format!("{:.5}", theory),
            format!("{:.5}", sym_errs as f64 / syms_total as f64),
        ]);
    }
    let header: Vec<String> = [
        "SNR (dB)",
        "measured chip error rate",
        "theory Q(sqrt(2/sigma^2))",
        "symbol error rate (DSSS)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_phy_validation.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — PHY substrate validation ({trials} frames per SNR)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nThe measured chip-error rate follows the coherent-BPSK theory curve\n\
         with a 2-3 dB implementation loss at these very low SNRs — the\n\
         preamble-based phase/CFO estimates are themselves noise-limited\n\
         there (the loss vanishes above ~6 dB, where every attack/defense\n\
         experiment operates). DSSS despreading crushes symbol errors well\n\
         below chip errors, the processing gain the attack exploits.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        std::env::temp_dir().join("ctc_tables_test")
    }

    #[test]
    fn table1_mentions_selected_bins() {
        let out = table1(&dir());
        assert!(out.contains("Selected bins"));
        assert!(out.contains("block 6"));
    }

    #[test]
    fn table2_small_run() {
        let out = table2(&dir(), 5);
        assert!(out.contains("17 dB"));
        assert!(out.contains('%'));
    }

    #[test]
    fn table3_rows_for_every_modulation() {
        let out = table3(&dir());
        for name in ["BPSK", "QPSK", "64-QAM", "256-QAM"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table4_gap_present_even_in_small_run() {
        let out = table4(&dir(), 5);
        assert!(out.contains("ZigBee waveform"));
        assert!(out.contains("Emulated waveform"));
    }

    #[test]
    fn table5_small_run() {
        let out = table5(&dir(), 3);
        assert!(out.contains("RSSI"));
        assert!(out.contains("6 m"));
    }
}
