//! Every table and figure of the paper's evaluation, regenerated, plus
//! extension experiments. See DESIGN.md §5 for the index.
//!
//! Each module exposes constructors returning `Box<dyn Experiment>`; the
//! [`build`] registry maps CLI ids to them.

pub mod advanced;
pub mod extensions;
pub mod figures;
pub mod protocol;
pub mod roc_family;
pub mod tables;

use crate::engine::Experiment;
use std::path::Path;

/// Every experiment id accepted by [`build`], in presentation order.
pub const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "phy",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10_11",
    "fig12",
    "fig14",
    "roc",
    "roc-snr",
    "roc-fading",
    "roc-cfo",
    "ablation-subcarriers",
    "ablation-alpha",
    "bitchain",
    "cfo",
    "gap",
    "arms-race",
    "spectral",
    "coexistence",
    "fullframe",
    "channels",
    "detectors",
    "replay",
    "lowsnr",
    "hardware",
    "alignment",
    "scenario",
    "timefreq",
];

/// Builds the experiment for one CLI id, or `None` for an unknown id.
///
/// `quick` shrinks trial counts ~20x for smoke runs; defaults match the
/// paper's counts where feasible.
pub fn build(id: &str, results: &Path, quick: bool) -> Option<Box<dyn Experiment>> {
    let d = results.to_path_buf();
    let scale = |full: usize| if quick { (full / 20).max(3) } else { full };
    Some(match id {
        "table1" => tables::table1(d),
        "table2" => tables::table2(d, scale(1000)),
        "table3" => tables::table3(d),
        "table4" => tables::table4(d, scale(50)),
        "table5" => tables::table5(d, scale(200)),
        "phy" => tables::phy_validation(d, scale(60)),
        "fig5" => figures::fig5(d),
        "fig6" => figures::fig6(d),
        "fig7" => figures::fig7(d, scale(100)),
        "fig8" => figures::fig8(d, scale(100)),
        "fig9" => figures::fig9(d),
        "fig10" | "fig11" | "fig10_11" => figures::fig10_11(d, scale(100)),
        "fig12" => figures::fig12(d, scale(50), scale(50)),
        "fig14" => figures::fig14(d, scale(100)),
        "roc" => extensions::roc(d, 12.0, scale(200)),
        "roc-snr" => roc_family::roc_snr(d, scale(120)),
        "roc-fading" => roc_family::roc_fading(d, scale(120)),
        "roc-cfo" => roc_family::roc_cfo(d, scale(120)),
        "ablation-subcarriers" => extensions::ablation_subcarriers(d, scale(200)),
        "ablation-alpha" => extensions::ablation_alpha(d, scale(200)),
        "bitchain" => extensions::bitchain(d, scale(100)),
        "cfo" => extensions::cfo_robustness(d, scale(100)),
        "gap" => extensions::gap_summary(d, scale(100)),
        "arms-race" => advanced::arms_race(d, scale(50)),
        "spectral" => advanced::spectral(d),
        "coexistence" => advanced::coexistence(d, scale(100)),
        "fullframe" => advanced::fullframe(d, scale(100)),
        "channels" => protocol::channels(d, scale(30)),
        "detectors" => protocol::detectors(d, scale(60)),
        "replay" => protocol::replay(d),
        "lowsnr" => protocol::lowsnr(d, scale(40)),
        "hardware" => protocol::hardware(d, scale(100)),
        "alignment" => protocol::alignment(d),
        "scenario" => protocol::scenario(d),
        "timefreq" => advanced::timefreq(d),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_builds() {
        let dir = std::env::temp_dir().join("ctc_registry_test");
        for id in ALL {
            assert!(build(id, &dir, true).is_some(), "id {id} did not build");
        }
        assert!(build("nope", &dir, true).is_none());
    }

    #[test]
    fn ids_match_experiment_names_loosely() {
        // The experiment's name feeds the per-trial seed derivation; it must
        // be stable and nonempty for every id.
        let dir = std::env::temp_dir().join("ctc_registry_test");
        for id in ALL {
            let exp = build(id, &dir, true).unwrap();
            assert!(!exp.name().is_empty(), "id {id} has an empty name");
        }
    }
}
