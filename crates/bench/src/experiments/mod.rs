//! Every table and figure of the paper's evaluation, regenerated, plus
//! extension experiments. See DESIGN.md §5 for the index.

pub mod advanced;
pub mod extensions;
pub mod figures;
pub mod protocol;
pub mod tables;
