//! ROC/AUC experiment family for the feature-ensemble detector: sweep
//! SNR, Rician fading, and residual CFO, and report detector quality as
//! a measured curve (AUC, EER, TPR@FPR=1%) for the DE² baseline against
//! the trained logistic and decision-stump ensembles.
//!
//! Each trial extracts the full named feature vector of
//! [`DetectionPipeline::standard`]; the reduce step does a deterministic
//! pair-parity train/test split per condition, trains both classifiers
//! offline, and scores only held-out trials — so the curves measure
//! generalization, not memorization.

use crate::engine::{Artifacts, Ctx, Experiment, MonteCarlo};
use crate::report::{f4, markdown_table, write_csv};
use ctc_channel::Link;
use ctc_core::defense::pipeline::de2_feature;
use ctc_core::defense::{
    train_logistic, train_stumps, ChannelAssumption, DetectionPipeline, Detector, FeatureInput,
    FeatureVector, LabelledSample, Roc,
};
use ctc_core::Error;
use ctc_zigbee::Receiver;
use rand::rngs::StdRng;
use std::path::PathBuf;

/// SNR sweep conditions (dB). Low enough that the DE² baseline is
/// imperfect and the ensemble has measurable headroom.
const ROC_SNRS: [f64; 4] = [0.0, 3.0, 6.0, 9.0];

/// Rician K-factors for the fading sweep (smaller = harsher multipath),
/// at a fixed 9 dB SNR.
const ROC_FADING_K: [f64; 4] = [2.0, 5.0, 10.0, 30.0];

/// Residual CFO bounds (Hz) for the CFO sweep, at a fixed 9 dB SNR with
/// random per-packet phase.
const ROC_CFOS: [f64; 4] = [0.0, 100.0, 400.0, 800.0];

/// Boosting rounds for the stump ensemble (matches `ctc detector`).
const STUMP_ROUNDS: usize = 24;

/// The detector variant anchoring the standard extractor set.
fn detector() -> Detector {
    Detector::new(ChannelAssumption::Ideal)
}

/// One condition's channel, by family.
fn roc_link(family: &'static str, cell_condition: usize) -> Link {
    match family {
        "roc_snr" => Link::awgn(ROC_SNRS[cell_condition]),
        "roc_fading" => Link::awgn(9.0)
            .with_fading(Some(ROC_FADING_K[cell_condition]))
            .with_random_phase(true),
        _ => {
            let cfo = ROC_CFOS[cell_condition];
            Link::awgn(9.0)
                .with_max_cfo_hz(cfo)
                .with_random_phase(cfo > 0.0)
        }
    }
}

fn condition_labels(family: &'static str) -> Vec<String> {
    match family {
        "roc_snr" => ROC_SNRS.iter().map(|s| format!("{s} dB")).collect(),
        "roc_fading" => ROC_FADING_K.iter().map(|k| format!("K = {k}")).collect(),
        _ => ROC_CFOS.iter().map(|c| format!("±{c} Hz")).collect(),
    }
}

/// Rebuilds a [`LabelledSample`] from one trial's raw feature row.
fn sample_from_row(names: &[&'static str], row: &[f64], is_attack: bool) -> LabelledSample {
    let mut features = FeatureVector::new();
    for (name, value) in names.iter().zip(row) {
        features.push(name, *value);
    }
    LabelledSample {
        features,
        is_attack,
    }
}

/// Splits one class's rows into (train, test) by trial-index parity —
/// deterministic, and balanced because both halves see every condition's
/// noise realizations interleaved.
fn split_rows(rows: &[Vec<f64>], width: usize) -> (Vec<&[f64]>, Vec<&[f64]>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, row) in rows.iter().filter(|r| r.len() == width).enumerate() {
        if i % 2 == 0 {
            train.push(row.as_slice());
        } else {
            test.push(row.as_slice());
        }
    }
    (train, test)
}

/// AUC / EER / TPR@FPR=1% columns for one scored test split.
fn roc_cells(roc: &Roc) -> [String; 3] {
    [f4(roc.auc), f4(roc.eer()), f4(roc.tpr_at_fpr(0.01))]
}

/// One ROC-family experiment: `cells = conditions × 2 classes`, each
/// trial emitting the full standard feature vector.
fn roc_family(family: &'static str, results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    let conditions = condition_labels(family).len();
    Box::new(MonteCarlo {
        name: family,
        // cell = condition * 2 + class (0 = ZigBee, 1 = emulated).
        cells: conditions * 2,
        per_cell: per_class,
        trial_fn: move |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let received = roc_link(family, cell / 2).transmit(wave, rng);
            let reception = Receiver::usrp().receive(&received);
            let pipeline = DetectionPipeline::standard(detector());
            let input = FeatureInput::with_samples(&reception, &received);
            Ok(match pipeline.extract(&input) {
                Ok(fv) => fv.entries().iter().map(|(_, v)| *v).collect(),
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let pipeline = DetectionPipeline::standard(detector());
            let names = pipeline.feature_names();
            let baseline_feature = de2_feature(ChannelAssumption::Ideal);
            let base_idx = names
                .iter()
                .position(|n| *n == baseline_feature)
                .ok_or_else(|| Error::Other("baseline feature missing".into()))?;
            let labels = condition_labels(family);
            let mut rows = Vec::new();
            let mut gate_pass = true;
            for (ci, label) in labels.iter().enumerate() {
                let (zig_train, zig_test) = split_rows(&grouped[ci * 2], names.len());
                let (emu_train, emu_test) = split_rows(&grouped[ci * 2 + 1], names.len());
                if zig_test.is_empty() || emu_test.is_empty() {
                    return Err(Error::Other(format!(
                        "{family}: no usable trials at {label}; raise per_class"
                    )));
                }
                let mut train: Vec<LabelledSample> = Vec::new();
                train.extend(zig_train.iter().map(|r| sample_from_row(&names, r, false)));
                train.extend(emu_train.iter().map(|r| sample_from_row(&names, r, true)));
                let logistic = train_logistic(&train)
                    .map_err(|e| Error::Other(format!("{family} {label}: {e}")))?;
                let stumps = train_stumps(&train, STUMP_ROUNDS)
                    .map_err(|e| Error::Other(format!("{family} {label}: {e}")))?;
                let score = |rows: &[&[f64]],
                             f: &dyn Fn(&FeatureVector) -> f64,
                             attack: bool|
                 -> Vec<f64> {
                    rows.iter()
                        .map(|r| f(&sample_from_row(&names, r, attack).features))
                        .collect()
                };
                let base = Roc::from_scores(
                    &zig_test.iter().map(|r| r[base_idx]).collect::<Vec<_>>(),
                    &emu_test.iter().map(|r| r[base_idx]).collect::<Vec<_>>(),
                );
                let log_fn = |fv: &FeatureVector| logistic.decide(fv).0;
                let stump_fn = |fv: &FeatureVector| stumps.decide(fv).0;
                let log_roc = Roc::from_scores(
                    &score(&zig_test, &log_fn, false),
                    &score(&emu_test, &log_fn, true),
                );
                let stump_roc = Roc::from_scores(
                    &score(&zig_test, &stump_fn, false),
                    &score(&emu_test, &stump_fn, true),
                );
                let ensemble = if log_roc.auc >= stump_roc.auc {
                    &log_roc
                } else {
                    &stump_roc
                };
                gate_pass &= ensemble.auc >= base.auc;
                let mut row = vec![label.clone()];
                row.extend(roc_cells(&base));
                row.extend(roc_cells(&log_roc));
                row.extend(roc_cells(&stump_roc));
                rows.push(row);
            }
            let header: Vec<String> = [
                "condition",
                "DE² AUC",
                "DE² EER",
                "DE² TPR@1%",
                "logistic AUC",
                "logistic EER",
                "logistic TPR@1%",
                "stumps AUC",
                "stumps EER",
                "stumps TPR@1%",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, &format!("ext_{family}.csv"), &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Detector ROC family: {family} ({per_class} frames per class \
                 per condition, held-out pair-parity split)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(&format!(
                "\nEnsemble gate (best-of-two AUC ≥ DE² baseline AUC at every condition): \
                 **{}**.\n",
                if gate_pass { "pass" } else { "FAIL" }
            ));
            out.push_str(
                "\nThe fused feature vector dominates the single-cumulant baseline\n\
                 exactly where the baseline is weakest (low SNR, deep fades, large\n\
                 residual CFO), because PSD shape, CP periodicity and clustered EVM\n\
                 stay informative after the constellation smears.\n",
            );
            Ok(out)
        },
    })
}

/// ROC vs SNR for the DE² baseline and both trained ensembles.
pub fn roc_snr(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    roc_family("roc_snr", results, per_class)
}

/// ROC vs Rician K-factor at 9 dB SNR.
pub fn roc_fading(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    roc_family("roc_fading", results, per_class)
}

/// ROC vs residual CFO bound at 9 dB SNR with random phase.
pub fn roc_cfo(results: PathBuf, per_class: usize) -> Box<dyn Experiment> {
    roc_family("roc_cfo", results, per_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::{run_test, test_dir};

    fn dir() -> PathBuf {
        test_dir("ctc_roc_family_test")
    }

    #[test]
    fn snr_sweep_reports_all_three_curves() {
        let out = run_test(roc_snr(dir(), 8));
        assert!(out.contains("DE² AUC"), "missing baseline column: {out}");
        assert!(out.contains("logistic AUC"), "missing logistic: {out}");
        assert!(out.contains("stumps AUC"), "missing stumps: {out}");
        assert!(out.contains("Ensemble gate"), "missing gate line: {out}");
    }

    #[test]
    fn cfo_sweep_renders_conditions() {
        let out = run_test(roc_cfo(dir(), 6));
        assert!(out.contains("±800 Hz"), "missing CFO condition: {out}");
    }

    #[test]
    fn fading_sweep_renders_conditions() {
        let out = run_test(roc_fading(dir(), 6));
        assert!(out.contains("K = 2"), "missing fading condition: {out}");
    }
}
