//! Reproductions of the paper's figures (5–12, 14) as [`Experiment`]s.
//!
//! Figures are emitted as CSV series under `results/` plus a textual summary
//! of the quantitative claim each figure carries.

use crate::engine::{column, flag, rate_of, Artifacts, Ctx, Experiment, MonteCarlo, OneShot};
use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::trials::{mean, std_dev};
use ctc_channel::Link;
use ctc_core::defense::naive::{cp_similarity_4mhz, phase_trend, phase_trend_similarity};
use ctc_core::defense::{constellation_from_reception, features_from_reception};
use ctc_dsp::kmeans::kmeans;
use ctc_dsp::metrics::normalize_power;
use ctc_zigbee::Receiver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Fig. 5: I/Q overlay of the original vs emulated waveform, with the
/// RMS error split into the cyclic-prefix region (first 0.8 µs of each 4 µs
/// block) and the body.
pub fn fig5(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "fig5",
        render: move |artifacts: &Artifacts| {
            let pair = artifacts.pair(b"00000")?;
            let n = pair.original.len().min(pair.emulated.len());
            let a = normalize_power(&pair.original[..n]);
            let b = normalize_power(&pair.emulated[..n]);

            // Dump one ZigBee symbol (64 samples = 16 µs) starting after sync.
            let lo = 256;
            let hi = (lo + 64).min(n);
            let rows: Vec<Vec<String>> = (lo..hi)
                .map(|i| {
                    vec![
                        format!("{}", i),
                        f4(a[i].re),
                        f4(a[i].im),
                        f4(b[i].re),
                        f4(b[i].im),
                    ]
                })
                .collect();
            write_csv(
                &results,
                "fig5_waveform_overlay.csv",
                &[
                    "sample".into(),
                    "orig_i".into(),
                    "orig_q".into(),
                    "emul_i".into(),
                    "emul_q".into(),
                ],
                &rows,
            )?;

            let mut cp_err = 0.0;
            let mut cp_n = 0usize;
            let mut body_err = 0.0;
            let mut body_n = 0usize;
            for i in 64..n - 64 {
                let e = (a[i] - b[i]).norm_sqr();
                if i % 16 < 4 {
                    cp_err += e;
                    cp_n += 1;
                } else {
                    body_err += e;
                    body_n += 1;
                }
            }
            let cp_rmse = (cp_err / cp_n as f64).sqrt();
            let body_rmse = (body_err / body_n as f64).sqrt();
            Ok(format!(
                "## Fig. 5 — Emulated waveform comparison\n\n\
                 CSV: results/fig5_waveform_overlay.csv (I/Q of both waveforms)\n\n\
                 RMS error in the 0.8 µs CP region of each WiFi symbol: {}\n\
                 RMS error in the emulated 3.2 µs body:                 {}\n\
                 Ratio: {:.1}x — \"the WiFi attacker can perfectly emulate each\n\
                 quarter segment of ZigBee waveform ... except for the first 0.8 µs\".\n",
                f4(cp_rmse),
                f4(body_rmse),
                cp_rmse / body_rmse
            ))
        },
    })
}

/// Fig. 6: the reconstructed QPSK constellation under AWGN vs the real
/// channel (phase rotation), with k-means (k = 4) centroids.
pub fn fig6(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "fig6",
        render: move |artifacts: &Artifacts| {
            let pair = artifacts.pair(b"00000")?;
            let rx = Receiver::usrp();
            let mut rng = StdRng::seed_from_u64(60_001);

            let awgn_rx = rx.receive(&Link::awgn(17.0).transmit(&pair.original, &mut rng));
            let real_link = Link::real_indoor(2.0, 0.0).with_snr_db(17.0);
            let real_rx = rx.receive(&real_link.transmit(&pair.original, &mut rng));

            let mut out = String::new();
            out.push_str("## Fig. 6 — Constellation diagram comparison (k-means, k = 4)\n\n");
            for (name, reception) in [("awgn", &awgn_rx), ("real", &real_rx)] {
                let pts = constellation_from_reception(reception);
                // Best of several k-means restarts: a single unlucky init can
                // drop two centroids onto one cluster.
                let clustering = (0..8)
                    .map(|_| kmeans(&pts, 4, 200, &mut rng).expect("≥4 chip pairs"))
                    .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
                    .expect("nonzero restarts");
                let rows: Vec<Vec<String>> = pts
                    .iter()
                    .zip(&clustering.assignments)
                    .map(|(p, &c)| vec![f4(p.re), f4(p.im), format!("{c}")])
                    .collect();
                write_csv(
                    &results,
                    &format!("fig6_constellation_{name}.csv"),
                    &["i".into(), "q".into(), "cluster".into()],
                    &rows,
                )?;
                let mean_angle = clustering
                    .centroids
                    .iter()
                    .map(|c| {
                        let rel = c.arg().rem_euclid(std::f64::consts::FRAC_PI_2);
                        rel.min(std::f64::consts::FRAC_PI_2 - rel)
                    })
                    .sum::<f64>()
                    / 4.0;
                out.push_str(&format!(
                    "{name}: centroids {:?}, mean offset from axis-aligned QPSK grid: {:.3} rad\n",
                    clustering
                        .centroids
                        .iter()
                        .map(|c| format!("({:.2},{:.2})", c.re, c.im))
                        .collect::<Vec<_>>(),
                    mean_angle,
                ));
            }
            out.push_str(
                "\nThe AWGN constellation sits on the QPSK grid; the real-channel one\n\
                 is rotated by the channel phase — why Sec. VI-C switches to |C40|.\n",
            );
            Ok(out)
        },
    })
}

/// Fig. 7: Hamming-distance distribution of received 32-chip sequences for
/// original vs emulated waveforms over the message corpus. One trial per
/// message; each trial returns the two 33-bin histograms concatenated.
pub fn fig7(results: PathBuf, messages: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "fig7",
        cells: messages,
        per_cell: 1,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, _rng: &mut StdRng| {
            let msg = ctc_zigbee::app::numbered_messages(cell + 1)
                .pop()
                .expect("nonempty corpus");
            let pair = ctx.artifacts.pair(&msg)?;
            let rx = Receiver::usrp();
            let mut hist = vec![0.0f64; 66];
            for d in rx.receive(&pair.original).hamming_distances {
                hist[(d.min(32)) as usize] += 1.0;
            }
            for d in rx.receive(&pair.emulated).hamming_distances {
                hist[33 + (d.min(32)) as usize] += 1.0;
            }
            Ok(hist)
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut orig_hist = [0usize; 33];
            let mut emu_hist = [0usize; 33];
            for cell in &grouped {
                for values in cell {
                    for (d, bin) in orig_hist.iter_mut().enumerate() {
                        *bin += values[d] as usize;
                    }
                    for (d, bin) in emu_hist.iter_mut().enumerate() {
                        *bin += values[33 + d] as usize;
                    }
                }
            }
            let messages = grouped.len();
            let orig_total: usize = orig_hist.iter().sum();
            let emu_total: usize = emu_hist.iter().sum();
            let rows: Vec<Vec<String>> = (0..=12)
                .map(|d| {
                    vec![
                        format!("{d}"),
                        f4(orig_hist[d] as f64 / orig_total as f64),
                        f4(emu_hist[d] as f64 / emu_total as f64),
                    ]
                })
                .collect();
            write_csv(
                &results,
                "fig7_hamming_distribution.csv",
                &[
                    "hamming_distance".into(),
                    "original_fraction".into(),
                    "emulated_fraction".into(),
                ],
                &rows,
            )?;
            let emu_in_range: usize = emu_hist[1..=10].iter().sum();
            let emu_over: usize = emu_hist[11..].iter().sum();
            let mut out = String::new();
            out.push_str(&format!(
                "## Fig. 7 — Hamming distance distribution ({messages} frames per class, noiseless)\n\n"
            ));
            out.push_str(&markdown_table(
                &["distance".into(), "original".into(), "emulated".into()],
                &rows,
            ));
            out.push_str(&format!(
                "\nOriginal frames: {} of symbols decode with distance 0.\n\
                 Emulated frames: {} of symbols have 1..=10 chip errors, {} exceed the\n\
                 threshold 10. Paper: original = all exact; emulated = 4–8 errors, all\n\
                 under threshold, so every emulated frame decodes.\n",
                pct(orig_hist[0] as f64 / orig_total as f64),
                pct(emu_in_range as f64 / emu_total as f64),
                pct(emu_over as f64 / emu_total as f64),
            ));
            Ok(out)
        },
    })
}

/// Fig. 8: received I/Q at 17 dB plus the CP self-similarity statistic —
/// the failed "detect the cyclic prefix repetition" strategy. Each trial
/// measures the statistic on one noisy ZigBee frame and one noisy emulated
/// frame at both oracle and defender block alignments.
pub fn fig8(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "fig8",
        cells: 1,
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, _cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let link = Link::awgn(17.0);
            let z = link.transmit(&pair.original, rng);
            let e = link.transmit(&pair.emulated, rng);
            // The defender has no WiFi symbol clock, so its blocks start at
            // an arbitrary offset; sweep 1..=15 across trials.
            let off = 1 + (ctx.trial_index as usize % 15);
            let stat = |v: Option<f64>| v.unwrap_or(f64::NAN);
            Ok(vec![
                stat(cp_similarity_4mhz(&z)),
                stat(cp_similarity_4mhz(&e)),
                stat(cp_similarity_4mhz(&e[off..])),
            ])
        },
        reduce_fn: move |artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            // Waveform dump for the figure's top panel (fixed seed — the
            // panel is illustrative, not statistical).
            let pair = artifacts.pair(b"00000")?;
            let mut rng = StdRng::seed_from_u64(80_001);
            let noisy_emulated = Link::awgn(17.0).transmit(&pair.emulated, &mut rng);
            let rows: Vec<Vec<String>> = noisy_emulated
                .iter()
                .take(160)
                .enumerate()
                .map(|(i, v)| vec![format!("{i}"), f4(v.re), f4(v.im)])
                .collect();
            write_csv(
                &results,
                "fig8_received_waveform_17db.csv",
                &["sample".into(), "i".into(), "q".into()],
                &rows,
            )?;

            let finite = |idx: usize| -> Vec<f64> {
                column(&grouped[0], idx)
                    .into_iter()
                    .filter(|v| v.is_finite())
                    .collect()
            };
            let zig_stats = finite(0);
            let emu_aligned = finite(1);
            let emu_misaligned = finite(2);
            let trials = grouped[0].len();
            let zmax = zig_stats.iter().copied().fold(f64::MIN, f64::max);
            let emin = emu_misaligned.iter().copied().fold(f64::MAX, f64::min);
            Ok(format!(
                "## Fig. 8 — Received waveform at 17 dB and the CP-repetition strategy\n\n\
                 CSV: results/fig8_received_waveform_17db.csv\n\n\
                 CP self-similarity over {trials} noisy frames:\n\
                 ZigBee:                      mean {} ± {}\n\
                 Emulated (oracle-aligned):   mean {} ± {}\n\
                 Emulated (defender-aligned): mean {} ± {}\n\n\
                 With an oracle for the attacker's block boundaries the statistic\n\
                 would separate — but the ZigBee receiver has no WiFi symbol clock,\n\
                 and at unknown alignment max(ZigBee) = {} vs min(emulated) = {}:\n\
                 overlap = {}. The strategy fails, as the paper argues (\"it is hard\n\
                 to find the repeated segment from the waveform\").\n",
                f4(mean(&zig_stats)),
                f4(std_dev(&zig_stats)),
                f4(mean(&emu_aligned)),
                f4(std_dev(&emu_aligned)),
                f4(mean(&emu_misaligned)),
                f4(std_dev(&emu_misaligned)),
                f4(zmax),
                f4(emin),
                if zmax > emin { "yes" } else { "no" },
            ))
        },
    })
}

/// Fig. 9: O-QPSK demodulation phase trend and hard-decision chip
/// amplitudes for both waveforms.
pub fn fig9(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "fig9",
        render: move |artifacts: &Artifacts| {
            let pair = artifacts.pair(b"00000")?;
            let n = pair.original.len().min(pair.emulated.len());
            let orig = &pair.original[..n];
            let emul = &pair.emulated[..n];

            let p_orig = phase_trend(orig);
            let p_emul = phase_trend(emul);
            let rows: Vec<Vec<String>> = (0..256.min(n))
                .map(|i| vec![format!("{i}"), f4(p_orig[i]), f4(p_emul[i])])
                .collect();
            write_csv(
                &results,
                "fig9a_phase_trend.csv",
                &[
                    "sample".into(),
                    "original_phase".into(),
                    "emulated_phase".into(),
                ],
                &rows,
            )?;

            let rx = Receiver::usrp();
            let ra = rx.receive(orig);
            let rb = rx.receive(emul);
            let chips_a = ra.chip_samples.hard_chips();
            let chips_b = rb.chip_samples.hard_chips();
            let rows: Vec<Vec<String>> = chips_a
                .iter()
                .zip(&chips_b)
                .take(128)
                .enumerate()
                .map(|(i, (&a, &b))| vec![format!("{i}"), format!("{a}"), format!("{b}")])
                .collect();
            write_csv(
                &results,
                "fig9b_chip_amplitudes.csv",
                &["chip".into(), "original".into(), "emulated".into()],
                &rows,
            )?;

            let cmp = ctc_core::defense::naive::compare_chip_streams(&ra, &rb);
            Ok(format!(
                "## Fig. 9 — O-QPSK demod output and chip sequences\n\n\
                 CSVs: results/fig9a_phase_trend.csv, results/fig9b_chip_amplitudes.csv\n\n\
                 Phase-trend similarity original↔emulated: {} (≈1 means identical\n\
                 trend: strategy 2 fails).\n\
                 Chip groups differing: {} — but symbols differing: {} (DSSS error\n\
                 tolerance hides every chip difference: strategy 3 fails).\n",
                f4(phase_trend_similarity(orig, emul)),
                pct(cmp.chip_groups_differing),
                pct(cmp.symbols_differing),
            ))
        },
    })
}

const FIG10_SNRS: [f64; 11] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];

/// Figs. 10 & 11: Ĉ42 and Ĉ40 vs SNR for both waveform classes.
pub fn fig10_11(results: PathBuf, per_point: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "fig10_11",
        // cell = snr_index * 2 + class (0 = ZigBee, 1 = emulated).
        cells: FIG10_SNRS.len() * 2,
        per_cell: per_point,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let link = Link::awgn(FIG10_SNRS[cell / 2]);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            Ok(match features_from_reception(&r) {
                Ok(f) => vec![f.c40.re, f.c42],
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut csv_rows = Vec::new();
            let mut md_rows = Vec::new();
            for (i, &snr) in FIG10_SNRS.iter().enumerate() {
                let z40 = column(&grouped[i * 2], 0);
                let z42 = column(&grouped[i * 2], 1);
                let e40 = column(&grouped[i * 2 + 1], 0);
                let e42 = column(&grouped[i * 2 + 1], 1);
                csv_rows.push(vec![
                    f2(snr),
                    f4(mean(&z40)),
                    f4(std_dev(&z40)),
                    f4(mean(&e40)),
                    f4(std_dev(&e40)),
                    f4(mean(&z42)),
                    f4(std_dev(&z42)),
                    f4(mean(&e42)),
                    f4(std_dev(&e42)),
                ]);
                md_rows.push(vec![
                    f2(snr),
                    f4(mean(&z40)),
                    f4(mean(&e40)),
                    f4(mean(&z42)),
                    f4(mean(&e42)),
                ]);
            }
            write_csv(
                &results,
                "fig10_11_cumulants_vs_snr.csv",
                &[
                    "snr_db".into(),
                    "zigbee_c40_mean".into(),
                    "zigbee_c40_std".into(),
                    "emulated_c40_mean".into(),
                    "emulated_c40_std".into(),
                    "zigbee_c42_mean".into(),
                    "zigbee_c42_std".into(),
                    "emulated_c42_mean".into(),
                    "emulated_c42_std".into(),
                ],
                &csv_rows,
            )?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Figs. 10 & 11 — Ĉ40 / Ĉ42 vs SNR ({per_point} frames per point)\n\n"
            ));
            out.push_str(&markdown_table(
                &[
                    "SNR (dB)".into(),
                    "ZigBee Ĉ40".into(),
                    "Emulated Ĉ40".into(),
                    "ZigBee Ĉ42".into(),
                    "Emulated Ĉ42".into(),
                ],
                &md_rows,
            ));
            out.push_str(
                "\nShape check (paper Figs. 10–11): with rising SNR the ZigBee features\n\
                 approach the QPSK theory values (Ĉ40 → 1, Ĉ42 → −1) while the emulated\n\
                 features converge to offset values far from theory — the separation\n\
                 the detector thresholds on.\n",
            );
            Ok(out)
        },
    })
}

const FIG12_SNRS: [f64; 6] = [7.0, 9.0, 11.0, 13.0, 15.0, 17.0];

/// Fig. 12: the threshold test — calibrate on training frames, evaluate on
/// held-out test frames; report per-class DE² ranges and detection accuracy
/// per SNR.
pub fn fig12(results: PathBuf, train: usize, test: usize) -> Box<dyn Experiment> {
    let per_cell = train.max(test);
    Box::new(MonteCarlo {
        name: "fig12",
        // cell = snr_index * 4 + class * 2 + role (role 0 = train, 1 = test).
        cells: FIG12_SNRS.len() * 4,
        per_cell,
        trial_fn: move |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let role_is_test = cell % 2 == 1;
            let budget = if role_is_test { test } else { train };
            let within = ctx.trial_index as usize % per_cell.max(1);
            if within >= budget {
                return Ok(vec![]);
            }
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if (cell / 2).is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let link = Link::awgn(FIG12_SNRS[cell / 4]);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            Ok(match features_from_reception(&r) {
                Ok(f) => vec![f.de_squared_ideal()],
                Err(_) => vec![f64::NAN],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            use ctc_core::defense::{ChannelAssumption, Detector};
            let mut rows = Vec::new();
            let mut csv_rows = Vec::new();
            for (i, &snr) in FIG12_SNRS.iter().enumerate() {
                let de2 = |class: usize, role: usize| -> Vec<f64> {
                    column(&grouped[i * 4 + class * 2 + role], 0)
                        .into_iter()
                        .filter(|v| v.is_finite())
                        .collect()
                };
                let det = Detector::calibrate_from_stats(
                    ChannelAssumption::Ideal,
                    &de2(0, 0),
                    &de2(1, 0),
                );
                let zig_de = de2(0, 1);
                let emu_de = de2(1, 1);
                let fp = zig_de.iter().filter(|&&v| v > det.threshold()).count();
                let fnr = emu_de.iter().filter(|&&v| v <= det.threshold()).count();
                let zmax = zig_de.iter().copied().fold(f64::MIN, f64::max);
                let emin = emu_de.iter().copied().fold(f64::MAX, f64::min);
                rows.push(vec![
                    f2(snr),
                    f4(det.threshold()),
                    f4(zmax),
                    f4(emin),
                    pct(1.0 - fp as f64 / test as f64),
                    pct(1.0 - fnr as f64 / test as f64),
                ]);
                csv_rows.push(vec![
                    f2(snr),
                    f4(det.threshold()),
                    f4(zmax),
                    f4(emin),
                    f4(1.0 - fp as f64 / test as f64),
                    f4(1.0 - fnr as f64 / test as f64),
                ]);
            }
            let header: Vec<String> = [
                "SNR (dB)",
                "calibrated Q",
                "max ZigBee DE²",
                "min emulated DE²",
                "ZigBee accepted",
                "attack detected",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(
                &results,
                "fig12_defense_performance.csv",
                &header,
                &csv_rows,
            )?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Fig. 12 — Defense strategy performance ({train} training + {test} test frames per class per SNR)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nPaper: max ZigBee DE² < 0.5 < min emulated DE² for SNR ≥ 7 dB with\n\
                 Q = 0.5. Our emulation is cleaner (optimized alpha, no clipping), so\n\
                 the calibrated Q is lower, but the gap and the 100% train/test\n\
                 separation reproduce.\n",
            );
            Ok(out)
        },
    })
}

const FIG14_DISTANCES: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
// The paper drives both radios at USRP "power gain 0.75" — an uncalibrated
// setting well below full output; -20 dBm reproduces the observed range
// limit (USRP decoding dies at 7-8 m). The commodity CC26x2R1 front end has
// a ~3 dB lower noise figure than the USRP chain, on top of its
// soft-decision correlator.
const FIG14_TX_DBM: f64 = -20.0;
const FIG14_COMMODITY_NF_ADVANTAGE_DB: f64 = 3.0;

/// Fig. 14: packet/symbol error rates vs distance for the hard-decision
/// (USRP-like) and soft-decision (commodity CC26x2R1-like) receivers.
pub fn fig14(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "fig14",
        // cell = distance_index * 4 + receiver * 2 + wave
        // (receiver 0 = USRP, 1 = commodity; wave 0 = original, 1 = emulated).
        cells: FIG14_DISTANCES.len() * 4,
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let d = FIG14_DISTANCES[cell / 4];
            let commodity = (cell / 2) % 2 == 1;
            let usrp_link = Link::real_indoor(d, FIG14_TX_DBM);
            let (link, rx) = if commodity {
                let snr = usrp_link.snr_db() + FIG14_COMMODITY_NF_ADVANTAGE_DB;
                (usrp_link.clone().with_snr_db(snr), Receiver::commodity())
            } else {
                (usrp_link, Receiver::usrp())
            };
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let r = rx.receive(&link.transmit(wave, rng));
            let expected = ctx.artifacts.memo("fig14:expected_symbols", || {
                ctc_zigbee::frame::build_frame_symbols(b"00000").expect("short payload")
            });
            Ok(vec![
                flag(crate::trials::packet_ok(&r, b"00000")),
                r.symbol_errors(&expected) as f64,
                expected.len() as f64,
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            let mut csv_rows = Vec::new();
            for (i, &d) in FIG14_DISTANCES.iter().enumerate() {
                let snr = Link::real_indoor(d, FIG14_TX_DBM).snr_db();
                let mut cells = vec![f2(d)];
                let mut csv = vec![f2(d), f2(snr)];
                for rx_wave in 0..4 {
                    let cell = &grouped[i * 4 + rx_wave];
                    let per = 1.0 - rate_of(cell, 0);
                    let errs: f64 = column(cell, 1).iter().sum();
                    let total: f64 = column(cell, 2).iter().sum();
                    let ser = if total > 0.0 { errs / total } else { 0.0 };
                    cells.push(format!("{}/{}", f4(per), f4(ser)));
                    csv.push(f4(per));
                    csv.push(f4(ser));
                }
                rows.push(cells);
                csv_rows.push(csv);
            }
            let header: Vec<String> = [
                "distance (m)",
                "USRP orig PER/SER",
                "USRP emul PER/SER",
                "commodity orig PER/SER",
                "commodity emul PER/SER",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let csv_header: Vec<String> = [
                "distance_m",
                "snr_db",
                "usrp_orig_per",
                "usrp_orig_ser",
                "usrp_emul_per",
                "usrp_emul_ser",
                "commodity_orig_per",
                "commodity_orig_ser",
                "commodity_emul_per",
                "commodity_emul_ser",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(
                &results,
                "fig14_error_vs_distance.csv",
                &csv_header,
                &csv_rows,
            )?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Fig. 14 — Attack performance vs distance ({trials} packets per cell)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nShape check (paper Fig. 14): error rates stay low (< 0.1) at short\n\
                 range; the hard-decision USRP receiver fails first as distance grows\n\
                 (emulated frames before original ones), while the soft-decision\n\
                 commodity receiver keeps decoding both to 8 m. PER ≥ SER everywhere.\n",
            );
            Ok(out)
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::{run_test, test_dir};

    fn dir() -> PathBuf {
        test_dir("ctc_figures_test")
    }

    #[test]
    fn fig5_reports_cp_dominance() {
        let out = run_test(fig5(dir()));
        assert!(out.contains("CP region"));
    }

    #[test]
    fn fig7_small() {
        let out = run_test(fig7(dir(), 3));
        assert!(out.contains("Hamming"));
    }

    #[test]
    fn fig9_reports_similarity() {
        let out = run_test(fig9(dir()));
        assert!(out.contains("Phase-trend similarity"));
    }

    #[test]
    fn fig12_small() {
        let out = run_test(fig12(dir(), 4, 4));
        assert!(out.contains("calibrated Q"));
    }
}
