//! Reproductions of the paper's figures (5–12, 14).
//!
//! Figures are emitted as CSV series under `results/` plus a textual summary
//! of the quantitative claim each figure carries.

use crate::report::{f2, f4, markdown_table, pct, write_csv};
use crate::scenario::{
    mean, packet_success_rate, receive_trials, std_dev, symbol_error_rate, waveform_pair,
};
use ctc_channel::Link;
use ctc_core::defense::naive::{cp_similarity_4mhz, phase_trend, phase_trend_similarity};
use ctc_core::defense::{constellation_from_reception, features_from_reception};

use ctc_dsp::kmeans::kmeans;
use ctc_dsp::metrics::normalize_power;
use ctc_zigbee::Receiver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Fig. 5: I/Q overlay of the original vs emulated waveform, with the
/// RMS error split into the cyclic-prefix region (first 0.8 µs of each 4 µs
/// block) and the body.
pub fn fig5(results_dir: &Path) -> String {
    let pair = waveform_pair(b"00000");
    let n = pair.original.len().min(pair.emulated.len());
    let a = normalize_power(&pair.original[..n]);
    let b = normalize_power(&pair.emulated[..n]);

    // Dump one ZigBee symbol (64 samples = 16 µs) starting after sync.
    let lo = 256;
    let hi = (lo + 64).min(n);
    let rows: Vec<Vec<String>> = (lo..hi)
        .map(|i| {
            vec![
                format!("{}", i),
                f4(a[i].re),
                f4(a[i].im),
                f4(b[i].re),
                f4(b[i].im),
            ]
        })
        .collect();
    let _ = write_csv(
        results_dir,
        "fig5_waveform_overlay.csv",
        &[
            "sample".into(),
            "orig_i".into(),
            "orig_q".into(),
            "emul_i".into(),
            "emul_q".into(),
        ],
        &rows,
    );

    let mut cp_err = 0.0;
    let mut cp_n = 0usize;
    let mut body_err = 0.0;
    let mut body_n = 0usize;
    for i in 64..n - 64 {
        let e = (a[i] - b[i]).norm_sqr();
        if i % 16 < 4 {
            cp_err += e;
            cp_n += 1;
        } else {
            body_err += e;
            body_n += 1;
        }
    }
    let cp_rmse = (cp_err / cp_n as f64).sqrt();
    let body_rmse = (body_err / body_n as f64).sqrt();
    format!(
        "## Fig. 5 — Emulated waveform comparison\n\n\
         CSV: results/fig5_waveform_overlay.csv (I/Q of both waveforms)\n\n\
         RMS error in the 0.8 µs CP region of each WiFi symbol: {}\n\
         RMS error in the emulated 3.2 µs body:                 {}\n\
         Ratio: {:.1}x — \"the WiFi attacker can perfectly emulate each\n\
         quarter segment of ZigBee waveform ... except for the first 0.8 µs\".\n",
        f4(cp_rmse),
        f4(body_rmse),
        cp_rmse / body_rmse
    )
}

/// Fig. 6: the reconstructed QPSK constellation under AWGN vs the real
/// channel (phase rotation), with k-means (k = 4) centroids.
pub fn fig6(results_dir: &Path) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let mut rng = StdRng::seed_from_u64(60_001);

    let awgn_rx = rx.receive(&Link::awgn(17.0).transmit(&pair.original, &mut rng));
    let real_link = Link::real_indoor(2.0, 0.0).with_snr_db(17.0);
    let real_rx = rx.receive(&real_link.transmit(&pair.original, &mut rng));

    let mut out = String::new();
    out.push_str("## Fig. 6 — Constellation diagram comparison (k-means, k = 4)\n\n");
    for (name, reception) in [("awgn", &awgn_rx), ("real", &real_rx)] {
        let pts = constellation_from_reception(reception);
        let clustering = kmeans(&pts, 4, 200, &mut rng).expect("≥4 chip pairs");
        let rows: Vec<Vec<String>> = pts
            .iter()
            .zip(&clustering.assignments)
            .map(|(p, &c)| vec![f4(p.re), f4(p.im), format!("{c}")])
            .collect();
        let _ = write_csv(
            results_dir,
            &format!("fig6_constellation_{name}.csv"),
            &["i".into(), "q".into(), "cluster".into()],
            &rows,
        );
        let mean_angle = clustering
            .centroids
            .iter()
            .map(|c| {
                let rel = c.arg().rem_euclid(std::f64::consts::FRAC_PI_2);
                rel.min(std::f64::consts::FRAC_PI_2 - rel)
            })
            .sum::<f64>()
            / 4.0;
        out.push_str(&format!(
            "{name}: centroids {:?}, mean offset from axis-aligned QPSK grid: {:.3} rad\n",
            clustering
                .centroids
                .iter()
                .map(|c| format!("({:.2},{:.2})", c.re, c.im))
                .collect::<Vec<_>>(),
            mean_angle,
        ));
    }
    out.push_str(
        "\nThe AWGN constellation sits on the QPSK grid; the real-channel one\n\
         is rotated by the channel phase — why Sec. VI-C switches to |C40|.\n",
    );
    out
}

/// Fig. 7: Hamming-distance distribution of received 32-chip sequences for
/// original vs emulated waveforms over the 100-message corpus.
pub fn fig7(results_dir: &Path, messages: usize) -> String {
    let rx = Receiver::usrp();
    let mut orig_hist = [0usize; 33];
    let mut emu_hist = [0usize; 33];
    for msg in ctc_zigbee::app::numbered_messages(messages) {
        let pair = waveform_pair(&msg);
        for d in rx.receive(&pair.original).hamming_distances {
            orig_hist[d.min(32) as usize] += 1;
        }
        for d in rx.receive(&pair.emulated).hamming_distances {
            emu_hist[d.min(32) as usize] += 1;
        }
    }
    let orig_total: usize = orig_hist.iter().sum();
    let emu_total: usize = emu_hist.iter().sum();
    let rows: Vec<Vec<String>> = (0..=12)
        .map(|d| {
            vec![
                format!("{d}"),
                f4(orig_hist[d] as f64 / orig_total as f64),
                f4(emu_hist[d] as f64 / emu_total as f64),
            ]
        })
        .collect();
    let _ = write_csv(
        results_dir,
        "fig7_hamming_distribution.csv",
        &["hamming_distance".into(), "original_fraction".into(), "emulated_fraction".into()],
        &rows,
    );
    let emu_in_range: usize = emu_hist[1..=10].iter().sum();
    let emu_over: usize = emu_hist[11..].iter().sum();
    let mut out = String::new();
    out.push_str(&format!(
        "## Fig. 7 — Hamming distance distribution ({messages} frames per class, noiseless)\n\n"
    ));
    out.push_str(&markdown_table(
        &["distance".into(), "original".into(), "emulated".into()],
        &rows,
    ));
    out.push_str(&format!(
        "\nOriginal frames: {} of symbols decode with distance 0.\n\
         Emulated frames: {} of symbols have 1..=10 chip errors, {} exceed the\n\
         threshold 10. Paper: original = all exact; emulated = 4–8 errors, all\n\
         under threshold, so every emulated frame decodes.\n",
        pct(orig_hist[0] as f64 / orig_total as f64),
        pct(emu_in_range as f64 / emu_total as f64),
        pct(emu_over as f64 / emu_total as f64),
    ));
    out
}

/// Fig. 8: received I/Q at 17 dB plus the CP self-similarity statistic —
/// the failed "detect the cyclic prefix repetition" strategy.
pub fn fig8(results_dir: &Path, trials: usize) -> String {
    let pair = waveform_pair(b"00000");
    let link = Link::awgn(17.0);
    let mut rng = StdRng::seed_from_u64(80_001);
    let noisy_emulated = link.transmit(&pair.emulated, &mut rng);
    let rows: Vec<Vec<String>> = noisy_emulated
        .iter()
        .take(160)
        .enumerate()
        .map(|(i, v)| vec![format!("{i}"), f4(v.re), f4(v.im)])
        .collect();
    let _ = write_csv(
        results_dir,
        "fig8_received_waveform_17db.csv",
        &["sample".into(), "i".into(), "q".into()],
        &rows,
    );

    // CP statistic distributions under noise, with and without knowledge of
    // the attacker's 4 µs block boundaries. The defender has no WiFi symbol
    // clock, so its blocks start at an arbitrary offset.
    let mut zig_stats = Vec::new();
    let mut emu_aligned = Vec::new();
    let mut emu_misaligned = Vec::new();
    for t in 0..trials {
        let z = link.transmit(&pair.original, &mut rng);
        let e = link.transmit(&pair.emulated, &mut rng);
        if let Some(s) = cp_similarity_4mhz(&z) {
            zig_stats.push(s);
        }
        if let Some(s) = cp_similarity_4mhz(&e) {
            emu_aligned.push(s);
        }
        let off = 1 + (t % 15);
        if let Some(s) = cp_similarity_4mhz(&e[off..]) {
            emu_misaligned.push(s);
        }
    }
    let zmax = zig_stats.iter().copied().fold(f64::MIN, f64::max);
    let emin = emu_misaligned.iter().copied().fold(f64::MAX, f64::min);
    format!(
        "## Fig. 8 — Received waveform at 17 dB and the CP-repetition strategy\n\n\
         CSV: results/fig8_received_waveform_17db.csv\n\n\
         CP self-similarity over {trials} noisy frames:\n\
         ZigBee:                      mean {} ± {}\n\
         Emulated (oracle-aligned):   mean {} ± {}\n\
         Emulated (defender-aligned): mean {} ± {}\n\n\
         With an oracle for the attacker's block boundaries the statistic\n\
         would separate — but the ZigBee receiver has no WiFi symbol clock,\n\
         and at unknown alignment max(ZigBee) = {} vs min(emulated) = {}:\n\
         overlap = {}. The strategy fails, as the paper argues (\"it is hard\n\
         to find the repeated segment from the waveform\").\n",
        f4(mean(&zig_stats)),
        f4(std_dev(&zig_stats)),
        f4(mean(&emu_aligned)),
        f4(std_dev(&emu_aligned)),
        f4(mean(&emu_misaligned)),
        f4(std_dev(&emu_misaligned)),
        f4(zmax),
        f4(emin),
        if zmax > emin { "yes" } else { "no" },
    )
}

/// Fig. 9: O-QPSK demodulation phase trend and hard-decision chip
/// amplitudes for both waveforms.
pub fn fig9(results_dir: &Path) -> String {
    let pair = waveform_pair(b"00000");
    let n = pair.original.len().min(pair.emulated.len());
    let orig = &pair.original[..n];
    let emul = &pair.emulated[..n];

    let p_orig = phase_trend(orig);
    let p_emul = phase_trend(emul);
    let rows: Vec<Vec<String>> = (0..256.min(n))
        .map(|i| vec![format!("{i}"), f4(p_orig[i]), f4(p_emul[i])])
        .collect();
    let _ = write_csv(
        results_dir,
        "fig9a_phase_trend.csv",
        &["sample".into(), "original_phase".into(), "emulated_phase".into()],
        &rows,
    );

    let rx = Receiver::usrp();
    let ra = rx.receive(orig);
    let rb = rx.receive(emul);
    let chips_a = ra.chip_samples.hard_chips();
    let chips_b = rb.chip_samples.hard_chips();
    let rows: Vec<Vec<String>> = chips_a
        .iter()
        .zip(&chips_b)
        .take(128)
        .enumerate()
        .map(|(i, (&a, &b))| vec![format!("{i}"), format!("{a}"), format!("{b}")])
        .collect();
    let _ = write_csv(
        results_dir,
        "fig9b_chip_amplitudes.csv",
        &["chip".into(), "original".into(), "emulated".into()],
        &rows,
    );

    let cmp = ctc_core::defense::naive::compare_chip_streams(&ra, &rb);
    format!(
        "## Fig. 9 — O-QPSK demod output and chip sequences\n\n\
         CSVs: results/fig9a_phase_trend.csv, results/fig9b_chip_amplitudes.csv\n\n\
         Phase-trend similarity original↔emulated: {} (≈1 means identical\n\
         trend: strategy 2 fails).\n\
         Chip groups differing: {} — but symbols differing: {} (DSSS error\n\
         tolerance hides every chip difference: strategy 3 fails).\n",
        f4(phase_trend_similarity(orig, emul)),
        pct(cmp.chip_groups_differing),
        pct(cmp.symbols_differing),
    )
}

/// Figs. 10 & 11: Ĉ42 and Ĉ40 vs SNR for both waveform classes.
pub fn fig10_11(results_dir: &Path, per_point: usize) -> String {
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let snrs: Vec<f64> = (0..=20).step_by(2).map(|v| v as f64).collect();
    let mut csv_rows = Vec::new();
    let mut md_rows = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let link = Link::awgn(snr);
        let mut z40 = Vec::new();
        let mut z42 = Vec::new();
        let mut e40 = Vec::new();
        let mut e42 = Vec::new();
        for r in receive_trials(&pair.original, &link, &rx, per_point, 100_000 + i as u64) {
            if let Ok(f) = features_from_reception(&r) {
                z40.push(f.c40.re);
                z42.push(f.c42);
            }
        }
        for r in receive_trials(&pair.emulated, &link, &rx, per_point, 101_000 + i as u64) {
            if let Ok(f) = features_from_reception(&r) {
                e40.push(f.c40.re);
                e42.push(f.c42);
            }
        }
        csv_rows.push(vec![
            f2(snr),
            f4(mean(&z40)),
            f4(std_dev(&z40)),
            f4(mean(&e40)),
            f4(std_dev(&e40)),
            f4(mean(&z42)),
            f4(std_dev(&z42)),
            f4(mean(&e42)),
            f4(std_dev(&e42)),
        ]);
        md_rows.push(vec![
            f2(snr),
            f4(mean(&z40)),
            f4(mean(&e40)),
            f4(mean(&z42)),
            f4(mean(&e42)),
        ]);
    }
    let _ = write_csv(
        results_dir,
        "fig10_11_cumulants_vs_snr.csv",
        &[
            "snr_db".into(),
            "zigbee_c40_mean".into(),
            "zigbee_c40_std".into(),
            "emulated_c40_mean".into(),
            "emulated_c40_std".into(),
            "zigbee_c42_mean".into(),
            "zigbee_c42_std".into(),
            "emulated_c42_mean".into(),
            "emulated_c42_std".into(),
        ],
        &csv_rows,
    );
    let mut out = String::new();
    out.push_str(&format!(
        "## Figs. 10 & 11 — Ĉ40 / Ĉ42 vs SNR ({per_point} frames per point)\n\n"
    ));
    out.push_str(&markdown_table(
        &[
            "SNR (dB)".into(),
            "ZigBee Ĉ40".into(),
            "Emulated Ĉ40".into(),
            "ZigBee Ĉ42".into(),
            "Emulated Ĉ42".into(),
        ],
        &md_rows,
    ));
    out.push_str(
        "\nShape check (paper Figs. 10–11): with rising SNR the ZigBee features\n\
         approach the QPSK theory values (Ĉ40 → 1, Ĉ42 → −1) while the emulated\n\
         features converge to offset values far from theory — the separation\n\
         the detector thresholds on.\n",
    );
    out
}

/// Fig. 12: the threshold test — train on the first half, test on the
/// second; report per-class DE² ranges and detection accuracy per SNR.
pub fn fig12(results_dir: &Path, train: usize, test: usize) -> String {
    use ctc_core::defense::Detector;
    use ctc_core::defense::ChannelAssumption;
    let pair = waveform_pair(b"00000");
    let rx = Receiver::usrp();
    let snrs = [7.0, 9.0, 11.0, 13.0, 15.0, 17.0];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let link = Link::awgn(snr);
        let zig_train = receive_trials(&pair.original, &link, &rx, train, 120_000 + i as u64);
        let emu_train = receive_trials(&pair.emulated, &link, &rx, train, 121_000 + i as u64);
        let det = Detector::calibrate(ChannelAssumption::Ideal, &zig_train, &emu_train);

        let zig_test = receive_trials(&pair.original, &link, &rx, test, 122_000 + i as u64);
        let emu_test = receive_trials(&pair.emulated, &link, &rx, test, 123_000 + i as u64);
        let zig_de: Vec<f64> = zig_test
            .iter()
            .filter_map(|r| Some(det.detect(r).ok()?.de_squared))
            .collect();
        let emu_de: Vec<f64> = emu_test
            .iter()
            .filter_map(|r| Some(det.detect(r).ok()?.de_squared))
            .collect();
        let fp = zig_test
            .iter()
            .filter(|r| det.detect(r).map(|v| v.is_attack).unwrap_or(false))
            .count();
        let fnr = emu_test
            .iter()
            .filter(|r| !det.detect(r).map(|v| v.is_attack).unwrap_or(true))
            .count();
        let zmax = zig_de.iter().copied().fold(f64::MIN, f64::max);
        let emin = emu_de.iter().copied().fold(f64::MAX, f64::min);
        rows.push(vec![
            f2(snr),
            f4(det.threshold()),
            f4(zmax),
            f4(emin),
            pct(1.0 - fp as f64 / test as f64),
            pct(1.0 - fnr as f64 / test as f64),
        ]);
        csv_rows.push(vec![
            f2(snr),
            f4(det.threshold()),
            f4(zmax),
            f4(emin),
            f4(1.0 - fp as f64 / test as f64),
            f4(1.0 - fnr as f64 / test as f64),
        ]);
    }
    let header: Vec<String> = [
        "SNR (dB)",
        "calibrated Q",
        "max ZigBee DE²",
        "min emulated DE²",
        "ZigBee accepted",
        "attack detected",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "fig12_defense_performance.csv", &header, &csv_rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Fig. 12 — Defense strategy performance ({train} training + {test} test frames per class per SNR)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nPaper: max ZigBee DE² < 0.5 < min emulated DE² for SNR ≥ 7 dB with\n\
         Q = 0.5. Our emulation is cleaner (optimized alpha, no clipping), so\n\
         the calibrated Q is lower, but the gap and the 100% train/test\n\
         separation reproduce.\n",
    );
    out
}

/// Fig. 14: packet/symbol error rates vs distance for the hard-decision
/// (USRP-like) and soft-decision (commodity CC26x2R1-like) receivers.
pub fn fig14(results_dir: &Path, trials: usize) -> String {
    let pair = waveform_pair(b"00000");
    let distances = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    // The paper drives both radios at USRP "power gain 0.75" — an
    // uncalibrated setting well below full output; -20 dBm reproduces the
    // observed range limit (USRP decoding dies at 7-8 m). The commodity
    // CC26x2R1 front end has a ~3 dB lower noise figure than the USRP
    // chain, on top of its soft-decision correlator.
    const TX_DBM: f64 = -20.0;
    const COMMODITY_NF_ADVANTAGE_DB: f64 = 3.0;
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (i, &d) in distances.iter().enumerate() {
        let usrp_link = Link::real_indoor(d, TX_DBM);
        let commodity_link = usrp_link
            .clone()
            .with_snr_db(usrp_link.snr_db() + COMMODITY_NF_ADVANTAGE_DB);
        let mut cells = vec![f2(d)];
        let mut csv = vec![f2(d), f2(usrp_link.snr_db())];
        for (link, rx) in [
            (&usrp_link, Receiver::usrp()),
            (&commodity_link, Receiver::commodity()),
        ] {
            for wave in [&pair.original, &pair.emulated] {
                let rs = receive_trials(wave, link, &rx, trials, 140_000 + i as u64 * 17);
                let per = 1.0 - packet_success_rate(&rs, b"00000");
                let ser = symbol_error_rate(&rs, b"00000");
                cells.push(format!("{}/{}", f4(per), f4(ser)));
                csv.push(f4(per));
                csv.push(f4(ser));
            }
        }
        rows.push(cells);
        csv_rows.push(csv);
    }
    let header: Vec<String> = [
        "distance (m)",
        "USRP orig PER/SER",
        "USRP emul PER/SER",
        "commodity orig PER/SER",
        "commodity emul PER/SER",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let csv_header: Vec<String> = [
        "distance_m",
        "snr_db",
        "usrp_orig_per",
        "usrp_orig_ser",
        "usrp_emul_per",
        "usrp_emul_ser",
        "commodity_orig_per",
        "commodity_orig_ser",
        "commodity_emul_per",
        "commodity_emul_ser",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "fig14_error_vs_distance.csv", &csv_header, &csv_rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Fig. 14 — Attack performance vs distance ({trials} packets per cell)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nShape check (paper Fig. 14): error rates stay low (< 0.1) at short\n\
         range; the hard-decision USRP receiver fails first as distance grows\n\
         (emulated frames before original ones), while the soft-decision\n\
         commodity receiver keeps decoding both to 8 m. PER ≥ SER everywhere.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        std::env::temp_dir().join("ctc_figures_test")
    }

    #[test]
    fn fig5_reports_cp_dominance() {
        let out = fig5(&dir());
        assert!(out.contains("CP region"));
    }

    #[test]
    fn fig7_small() {
        let out = fig7(&dir(), 3);
        assert!(out.contains("Hamming"));
    }

    #[test]
    fn fig9_reports_similarity() {
        let out = fig9(&dir());
        assert!(out.contains("Phase-trend similarity"));
    }

    #[test]
    fn fig12_small() {
        let out = fig12(&dir(), 4, 4);
        assert!(out.contains("calibrated Q"));
    }
}
