//! Protocol-level extension experiments: the channel-plan feasibility
//! sweep, the detector comparison (cumulants vs clustered EVM), and the
//! MAC anti-replay vs physical-layer defense comparison.

use crate::engine::{column, flag, rate_of, Artifacts, Ctx, Experiment, MonteCarlo, OneShot};
use crate::report::{f4, markdown_table, pct, write_csv};
use crate::trials::{mean, receive_with};
use ctc_channel::Link;
use ctc_core::attack::{Emulator, SpectralMode};
use ctc_core::defense::{ChannelAssumption, Detector, EvmDetector};
use ctc_zigbee::channels::ZigbeeChannel;
use ctc_zigbee::mac::{MacFrame, ZigbeeDevice};
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use std::path::PathBuf;
use std::sync::Arc;

/// The attacker's forged waveform for one ZigBee channel, memoised in the
/// artifact cache (the emulation itself is the expensive step).
fn channel_forged(
    artifacts: &Artifacts,
    ch: ZigbeeChannel,
    wifi_center: f64,
) -> Result<Arc<Vec<ctc_dsp::Complex>>, ctc_core::Error> {
    artifacts.try_memo(&format!("channels:forged:{}", ch.number()), || {
        let wave = Transmitter::new().transmit_payload(b"00000")?;
        let emulator = Emulator::new()
            .with_spectral_mode(SpectralMode::CarrierAllocated)
            .with_zigbee_center_hz(ch.center_hz());
        let _ = wifi_center;
        let em = emulator.emulate(&wave);
        Ok(emulator.received_at_zigbee(&em))
    })
}

/// Channel-plan sweep: which ZigBee channels the paper's 2440 MHz attacker
/// reaches, verified end to end.
pub fn channels(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    const WIFI_CENTER: f64 = 2.44e9;
    Box::new(MonteCarlo {
        name: "channels",
        cells: ZigbeeChannel::all().len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let ch = ZigbeeChannel::all()[cell];
            // The spectral placement only works when the band fits inside
            // the attacker's 20 MHz; skip the reception otherwise.
            if (ch.center_hz() - WIFI_CENTER).abs() >= 9.0e6 {
                return Ok(vec![]);
            }
            let forged = channel_forged(ctx.artifacts, ch, WIFI_CENTER)?;
            let r = Receiver::usrp().receive(&Link::awgn(15.0).transmit(&forged, rng));
            Ok(vec![flag(crate::trials::packet_ok(&r, b"00000"))])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (cell, ch) in ZigbeeChannel::all().into_iter().enumerate() {
                let predicted = ctc_zigbee::channels::attackable(ch, WIFI_CENTER);
                let in_band = (ch.center_hz() - WIFI_CENTER).abs() < 9.0e6;
                let note = if in_band {
                    String::new()
                } else {
                    " (band outside the attacker's 20 MHz)".into()
                };
                let rate = rate_of(&grouped[cell], 0);
                rows.push(vec![
                    format!("{}", ch.number()),
                    format!("{:.0}", ch.center_hz() / 1e6),
                    format!("{predicted}"),
                    format!("{}{}", pct(rate), note),
                ]);
            }
            let header: Vec<String> = [
                "ZigBee channel",
                "centre (MHz)",
                "predicted attackable",
                "measured attack success @ 15 dB",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_channels.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Channel-plan feasibility (attacker at 2440 MHz, {trials} frames per channel)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nThe attack's spectral precondition (paper Sec. IV): only victims\n\
                 whose 2 MHz channel fits inside the attacker's data-subcarrier span\n\
                 are controllable. The prediction from the channel plan matches the\n\
                 end-to-end measurement.\n",
            );
            Ok(out)
        },
    })
}

const DETECTOR_CONDITIONS: [&str; 3] = ["AWGN 15 dB", "phase offset", "CFO 400 Hz"];

fn detector_link(condition: usize) -> Link {
    match condition {
        0 => Link::awgn(15.0),
        1 => Link::awgn(15.0).with_random_phase(true),
        _ => Link::awgn(15.0)
            .with_max_cfo_hz(400.0)
            .with_random_phase(true),
    }
}

/// Detector comparison: the paper's cumulant detector vs the clustered-EVM
/// alternative, across AWGN, phase offset and CFO conditions.
pub fn detectors(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "detectors",
        // cell = condition * 2 + class (0 = ZigBee, 1 = emulated).
        cells: DETECTOR_CONDITIONS.len() * 2,
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if cell.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let link = detector_link(cell / 2);
            let r = Receiver::usrp().receive(&link.transmit(wave, rng));
            let cumulant = Detector::new(ChannelAssumption::Real).with_threshold(0.1);
            let evm = EvmDetector::new();
            Ok(vec![
                flag(cumulant.detect(&r).map(|v| v.is_attack).unwrap_or(false)),
                flag(evm.detect(&r).map(|v| v.is_attack).unwrap_or(false)),
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, name) in DETECTOR_CONDITIONS.iter().enumerate() {
                let cum_tn = 1.0 - rate_of(&grouped[i * 2], 0);
                let evm_tn = 1.0 - rate_of(&grouped[i * 2], 1);
                let cum_tp = rate_of(&grouped[i * 2 + 1], 0);
                let evm_tp = rate_of(&grouped[i * 2 + 1], 1);
                rows.push(vec![
                    name.to_string(),
                    pct(cum_tn),
                    pct(cum_tp),
                    pct(evm_tn),
                    pct(evm_tp),
                ]);
            }
            let header: Vec<String> = [
                "condition",
                "cumulant: authentic passed",
                "cumulant: attack caught",
                "EVM: authentic passed",
                "EVM: attack caught",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_detectors.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Detector comparison ({trials} frames per cell)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nClustered EVM matches the cumulant detector in static channels but\n\
                 collapses under residual CFO (the constellation spins within the\n\
                 frame and the clusters smear) — the quantitative case for the\n\
                 paper's higher-order-statistics choice.\n",
            );
            Ok(out)
        },
    })
}

/// MAC anti-replay (sequence cache) vs the physical-layer detector against
/// the replay attack. Inherently sequential (the device is stateful), so it
/// runs as a single reduce step.
pub fn replay(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(OneShot {
        name: "replay",
        render: move |_artifacts: &Artifacts| {
            let tx = Transmitter::new();
            let rx = Receiver::usrp();
            let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);

            // The gateway sends a MAC data frame; the attacker records it.
            let control = MacFrame::data(117, 0x1A2B, 0x0001, 0x00C0, b"unlock".to_vec());
            let symbols = control.to_symbols()?;
            let wave = tx.transmit_symbols(&symbols);
            let emulator = Emulator::new();
            let forged = emulator.received_at_zigbee(&emulator.emulate(&wave));

            let mut device = ZigbeeDevice::new(0x1A2B, 0x0001, 8);
            let mut rows = Vec::new();
            let mut step = |label: &str, wave: &[ctc_dsp::Complex], device: &mut ZigbeeDevice| {
                let reception = rx.receive(wave);
                let mac_result = reception
                    .payload()
                    .map(|p| device.handle(p))
                    .map(|r| match r {
                        Ok(_) => "ACCEPTED".to_string(),
                        Err(e) => format!("rejected ({e:?})"),
                    })
                    .unwrap_or_else(|| "PHY decode failed".into());
                let phy_verdict = detector
                    .detect(&reception)
                    .map(|v| {
                        if v.is_attack {
                            format!("ATTACK (DE² {})", f4(v.de_squared))
                        } else {
                            format!("authentic (DE² {})", f4(v.de_squared))
                        }
                    })
                    .unwrap_or_else(|_| "n/a".into());
                rows.push(vec![label.to_string(), mac_result, phy_verdict]);
            };

            step("1. gateway frame (seq 117)", &wave, &mut device);
            step("2. attacker replays emulation", &forged, &mut device);
            device.power_cycle();
            step("3. replay after device power-cycle", &forged, &mut device);

            let header: Vec<String> = [
                "event",
                "MAC anti-replay (8-entry cache)",
                "PHY cumulant detector",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_replay.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str("## Extension — MAC anti-replay vs the physical-layer defense\n\n");
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nThe sequence cache rejects the verbatim replay only while it holds\n\
                 state; after a power cycle (or cache eviction) the same forged frame\n\
                 is accepted. The cumulant detector flags the transmission itself,\n\
                 stateless — supporting the paper's claim that higher-layer defenses\n\
                 cannot stop a physical-layer emulation attack.\n",
            );
            Ok(out)
        },
    })
}

const LOWSNR_SNRS: [f64; 4] = [1.0, 3.0, 5.0, 7.0];
const LOWSNR_GROUPS: [usize; 3] = [1, 3, 10];
const LOWSNR_TRAIN: usize = 12;

/// Low-SNR detection via multi-frame aggregation: single-frame cumulant
/// estimates are noise-dominated below ~5 dB; pooling the constellations of
/// N frames shrinks the estimator variance until the (noise-biased but
/// still distinct) class means separate again. Thresholds are calibrated
/// per SNR from aggregated training groups, exactly as the paper calibrates
/// its Q from training waveforms.
pub fn lowsnr(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    let per_cell = LOWSNR_TRAIN.max(trials);
    Box::new(MonteCarlo {
        name: "lowsnr",
        // cell = (snr * GROUPS + group) * 4 + role, with roles
        // 0 = train ZigBee, 1 = train emulated, 2 = test ZigBee,
        // 3 = test emulated. One trial = one aggregated detection group.
        cells: LOWSNR_SNRS.len() * LOWSNR_GROUPS.len() * 4,
        per_cell,
        trial_fn: move |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let role = cell % 4;
            let budget = if role < 2 { LOWSNR_TRAIN } else { trials };
            let within = ctx.trial_index as usize % per_cell.max(1);
            if within >= budget {
                return Ok(vec![]);
            }
            let pair = ctx.artifacts.pair(b"00000")?;
            let wave = if role.is_multiple_of(2) {
                &pair.original
            } else {
                &pair.emulated
            };
            let group = LOWSNR_GROUPS[(cell / 4) % LOWSNR_GROUPS.len()];
            let link = Link::awgn(LOWSNR_SNRS[cell / (4 * LOWSNR_GROUPS.len())]);
            let rx = Receiver::usrp();
            let rs = receive_with(wave, &link, &rx, group, rng);
            let base = Detector::new(ChannelAssumption::Ideal);
            Ok(match base.detect_aggregated(&rs) {
                Ok(v) => vec![v.de_squared],
                Err(_) => vec![],
            })
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (si, &snr) in LOWSNR_SNRS.iter().enumerate() {
                let mut cells = vec![format!("{snr}")];
                for gi in 0..LOWSNR_GROUPS.len() {
                    let base_cell = (si * LOWSNR_GROUPS.len() + gi) * 4;
                    let de2 = |role: usize| column(&grouped[base_cell + role], 0);
                    let threshold = ((mean(&de2(0)) + mean(&de2(1))) / 2.0).max(1e-6);
                    let mut correct = 0usize;
                    let mut total = 0usize;
                    for v in de2(2) {
                        correct += usize::from(v <= threshold);
                        total += 1;
                    }
                    for v in de2(3) {
                        correct += usize::from(v > threshold);
                        total += 1;
                    }
                    cells.push(pct(correct as f64 / total.max(1) as f64));
                }
                rows.push(cells);
            }
            let header: Vec<String> = ["SNR (dB)", "1 frame", "3 frames", "10 frames"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            write_csv(&results, "ext_lowsnr_aggregation.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Low-SNR detection via frame aggregation ({trials} decisions per cell per class, per-SNR calibrated thresholds)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nBelow the paper's 7 dB operating floor a single frame's cumulant\n\
                 estimate is too noisy to classify reliably; pooling constellations\n\
                 across frames (the estimator is O(N), so this is cheap) restores\n\
                 accurate classification down to SNRs where the attack itself barely\n\
                 functions.\n",
            );
            Ok(out)
        },
    })
}

const HARDWARE_CASES: [&str; 3] = ["ideal radio", "typical IoT radio", "worst-case radio"];

/// Hardware-impairment robustness: does a benign but imperfect ZigBee
/// transmitter get false-flagged? Sweeps impairment severity and reports
/// both detector variants' false-positive rates alongside the attack's
/// detection rate (unchanged).
pub fn hardware(results: PathBuf, trials: usize) -> Box<dyn Experiment> {
    use ctc_channel::hardware::TxImpairments;
    Box::new(MonteCarlo {
        name: "hardware",
        cells: HARDWARE_CASES.len(),
        per_cell: trials,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, rng: &mut StdRng| {
            let imp = match cell {
                0 => TxImpairments::default(),
                1 => TxImpairments::typical_iot(),
                _ => TxImpairments::worst_case(),
            };
            let pair = ctx.artifacts.pair(b"00000")?;
            let rx = Receiver::usrp();
            let link = Link::awgn(15.0);
            let ideal = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
            let real = Detector::new(ChannelAssumption::Real).with_threshold(0.25);
            let dirty = imp.apply(&pair.original, rng);
            let rz = rx.receive(&link.transmit(&dirty, rng));
            let fp_ideal = ideal.detect(&rz).map(|v| v.is_attack).unwrap_or(false);
            let fp_real = real.detect(&rz).map(|v| v.is_attack).unwrap_or(false);
            let dirty_forged = imp.apply(&pair.emulated, rng);
            let re = rx.receive(&link.transmit(&dirty_forged, rng));
            let caught = real.detect(&re).map(|v| v.is_attack).unwrap_or(false);
            Ok(vec![flag(fp_ideal), flag(fp_real), flag(caught)])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, name) in HARDWARE_CASES.iter().enumerate() {
                rows.push(vec![
                    name.to_string(),
                    pct(rate_of(&grouped[i], 0)),
                    pct(rate_of(&grouped[i], 1)),
                    pct(rate_of(&grouped[i], 2)),
                ]);
            }
            let header: Vec<String> = [
                "transmitter hardware",
                "Ideal detector false positives",
                "|C40| detector false positives",
                "impaired attacker still caught",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_hardware.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(&format!(
                "## Extension — Hardware-impairment robustness ({trials} frames per cell, 15 dB)\n\n"
            ));
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nTypical IoT-grade I/Q imbalance, PA compression and phase noise do\n\
                 not push authentic waveforms over the detection threshold. The\n\
                 out-of-spec radio's phase noise starts false-flagging the Ideal\n\
                 (Re C40) variant, but the |C40| spectral-line variant stays clean —\n\
                 and an attacker using the same bad hardware remains fully\n\
                 detectable: the impairments stack on top of the emulation\n\
                 distortion rather than masking it.\n",
            );
            Ok(out)
        },
    })
}

/// Block-alignment sensitivity: the attacker's 4 µs block grid can sit at
/// any of 16 sample offsets within the victim frame; the CP-corruption
/// regions then hit different chip-sampling instants and the emulation's
/// DE² signature varies. Quantifies the spread — an evasion lever for the
/// attacker and a calibration requirement for the defender.
pub fn alignment(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "alignment",
        cells: 16,
        per_cell: 1,
        trial_fn: |ctx: &Ctx<'_>, cell: usize, _rng: &mut StdRng| {
            let frame = ctx.artifacts.pair(b"00000")?.original.clone();
            let rx = Receiver::usrp().with_sync_search(96);
            let emulator = Emulator::new();
            // Prepend `offset` zero samples: the attacker's block grid starts
            // at its recording boundary, so this shifts the frame within it.
            let mut observed = vec![ctc_dsp::Complex::ZERO; cell];
            observed.extend_from_slice(&frame);
            let forged = emulator.received_at_zigbee(&emulator.emulate(&observed));
            let r = rx.receive(&forged);
            let de = ctc_core::defense::features_from_reception(&r)
                .map(|f| f.de_squared_ideal())
                .unwrap_or(f64::NAN);
            let decoded = r.payload() == Some(&b"00000"[..]);
            Ok(vec![de, flag(decoded)])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            let mut de_values = Vec::new();
            for (offset, cell) in grouped.iter().enumerate() {
                let de = cell[0][0];
                let decoded = cell[0][1] > 0.5;
                de_values.push(de);
                rows.push(vec![format!("{offset}"), f4(de), format!("{decoded}")]);
            }
            let header: Vec<String> = ["frame offset (samples)", "emulated DE²", "frame decodes"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            write_csv(&results, "ext_alignment.csv", &header, &rows)?;
            let min = de_values.iter().cloned().fold(f64::MAX, f64::min);
            let max = de_values.iter().cloned().fold(f64::MIN, f64::max);
            let mut out = String::new();
            out.push_str("## Extension — Block-alignment sensitivity of the attack signature\n\n");
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(&format!(
                "\nEmulated DE² spans {} – {} across the 16 possible alignments (the\n\
                 attack succeeds at every one). An attacker choosing its best\n\
                 alignment shrinks its signature ~{:.0}x — still far above the\n\
                 authentic ~0.003 at high SNR, but defenders must calibrate their\n\
                 threshold against the *minimum*, not the average, emulated DE².\n",
                f4(min),
                f4(max),
                max / min.max(1e-9),
            ));
            Ok(out)
        },
    })
}

const SCENARIO_PERIODS: [usize; 4] = [16_000, 9_000, 5_000, 3_000];

/// End-to-end coexistence scenario: attack timeline vs gateway traffic
/// density — CCA deferrals, strikes landed, and monitor accuracy over the
/// composite channel. One trial per traffic density.
pub fn scenario(results: PathBuf) -> Box<dyn Experiment> {
    Box::new(MonteCarlo {
        name: "scenario",
        cells: SCENARIO_PERIODS.len(),
        per_cell: 1,
        trial_fn: |_ctx: &Ctx<'_>, cell: usize, _rng: &mut StdRng| {
            use ctc_core::defense::StreamMonitor;
            use ctc_core::scenario::{run as run_scenario, ScenarioConfig, Source};
            let config = ScenarioConfig {
                gateway_period: SCENARIO_PERIODS[cell],
                attacker_strikes: 4,
                ..ScenarioConfig::default()
            };
            let result = run_scenario(&config, 700 + cell as u64);
            let strikes = result
                .transmissions
                .iter()
                .filter(|t| t.source == Source::Attacker)
                .count();
            let collisions = result
                .transmissions
                .iter()
                .filter(|t| t.source == Source::Attacker && t.collided)
                .count();
            let monitor = StreamMonitor::with_detector(
                Detector::new(ChannelAssumption::Ideal).with_threshold(0.03),
            );
            let events = monitor.scan(&result.channel);
            let mut correct = 0usize;
            let mut matched = 0usize;
            for e in &events {
                let mid = (e.burst.start + e.burst.end) / 2;
                let (Some(truth), Some(v)) = (result.source_at(mid), e.verdict) else {
                    continue;
                };
                matched += 1;
                correct += usize::from((truth == Source::Attacker) == v.is_attack);
            }
            Ok(vec![
                strikes as f64,
                result.cca_deferrals as f64,
                collisions as f64,
                correct as f64,
                matched as f64,
            ])
        },
        reduce_fn: move |_artifacts: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
            let mut rows = Vec::new();
            for (i, &period) in SCENARIO_PERIODS.iter().enumerate() {
                let v = &grouped[i][0];
                rows.push(vec![
                    format!("{:.1}", period as f64 / 4000.0),
                    format!("{}/4", v[0] as usize),
                    format!("{}", v[1] as usize),
                    format!("{}", v[2] as usize),
                    format!("{}/{}", v[3] as usize, v[4] as usize),
                ]);
            }
            let header: Vec<String> = [
                "gateway period (ms)",
                "strikes landed",
                "CCA deferrals",
                "collisions",
                "monitor correct",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            write_csv(&results, "ext_scenario.csv", &header, &rows)?;
            let mut out = String::new();
            out.push_str(
                "## Extension — Coexistence scenario (listen → CCA → strike → monitor)\n\n",
            );
            out.push_str(&markdown_table(&header, &rows));
            out.push_str(
                "\nDenser gateway traffic forces the CSMA-respecting attacker to defer\n\
                 more, but every strike it does land decodes; the stream monitor\n\
                 classifies gateway and attacker transmissions correctly over the\n\
                 composite channel (threshold calibrated against the alignment\n\
                 minimum — see the `alignment` experiment).\n",
            );
            Ok(out)
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::{run_test, test_dir};

    fn dir() -> PathBuf {
        test_dir("ctc_protocol_test")
    }

    #[test]
    fn channels_renders() {
        let out = run_test(channels(dir(), 2));
        assert!(out.contains("ZigBee channel"));
        assert!(out.contains("2435"));
    }

    #[test]
    fn detectors_renders() {
        let out = run_test(detectors(dir(), 3));
        assert!(out.contains("CFO 400 Hz"));
    }

    #[test]
    fn replay_story_holds() {
        let out = run_test(replay(dir()));
        assert!(out.contains("rejected (DuplicateSequence)"));
        assert!(out.contains("power-cycle"));
        assert!(out.contains("ATTACK"));
    }
}
