//! Protocol-level extension experiments: the channel-plan feasibility
//! sweep, the detector comparison (cumulants vs clustered EVM), and the
//! MAC anti-replay vs physical-layer defense comparison.

use crate::report::{f4, markdown_table, pct, write_csv};
use crate::scenario::{packet_success_rate, receive_trials};
use ctc_channel::Link;
use ctc_core::attack::{Emulator, SpectralMode};
use ctc_core::defense::{
    ChannelAssumption, Detector, EvmDetector,
};
use ctc_zigbee::channels::{attackable, ZigbeeChannel};
use ctc_zigbee::mac::{MacFrame, ZigbeeDevice};
use ctc_zigbee::{Receiver, Transmitter};
use std::path::Path;

/// Channel-plan sweep: which ZigBee channels the paper's 2440 MHz attacker
/// reaches, verified end to end.
pub fn channels(results_dir: &Path, trials: usize) -> String {
    let wifi_center = 2.44e9;
    let rx = Receiver::usrp();
    let tx = Transmitter::new();
    let wave = tx.transmit_payload(b"00000").expect("short payload");
    let mut rows = Vec::new();
    for ch in ZigbeeChannel::all() {
        let predicted = attackable(ch, wifi_center);
        let emulator = Emulator::new()
            .with_spectral_mode(SpectralMode::CarrierAllocated)
            .with_zigbee_center_hz(ch.center_hz());
        // The spectral placement only works when the band fits inside the
        // attacker's 20 MHz; emulate regardless and measure.
        let offset = (ch.center_hz() - wifi_center).abs();
        let (rate, note) = if offset < 9.0e6 {
            let em = emulator.emulate(&wave);
            let captured = emulator.received_at_zigbee(&em);
            let rs = receive_trials(
                &captured,
                &Link::awgn(15.0),
                &rx,
                trials,
                400_000 + ch.number() as u64,
            );
            (packet_success_rate(&rs, b"00000"), String::new())
        } else {
            (0.0, " (band outside the attacker's 20 MHz)".into())
        };
        rows.push(vec![
            format!("{}", ch.number()),
            format!("{:.0}", ch.center_hz() / 1e6),
            format!("{predicted}"),
            format!("{}{}", pct(rate), note),
        ]);
    }
    let header: Vec<String> = [
        "ZigBee channel",
        "centre (MHz)",
        "predicted attackable",
        "measured attack success @ 15 dB",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_channels.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Channel-plan feasibility (attacker at 2440 MHz, {trials} frames per channel)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nThe attack's spectral precondition (paper Sec. IV): only victims\n\
         whose 2 MHz channel fits inside the attacker's data-subcarrier span\n\
         are controllable. The prediction from the channel plan matches the\n\
         end-to-end measurement.\n",
    );
    out
}

/// Detector comparison: the paper's cumulant detector vs the clustered-EVM
/// alternative, across AWGN, phase offset and CFO conditions.
pub fn detectors(results_dir: &Path, trials: usize) -> String {
    let tx = Transmitter::new();
    let orig = tx.transmit_payload(b"00000").expect("short payload");
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&orig));
    let rx = Receiver::usrp();
    let cumulant = Detector::new(ChannelAssumption::Real).with_threshold(0.1);
    let evm = EvmDetector::new();

    let conditions: Vec<(&str, Link)> = vec![
        ("AWGN 15 dB", Link::awgn(15.0)),
        (
            "phase offset",
            Link::awgn(15.0).with_random_phase(true),
        ),
        (
            "CFO 400 Hz",
            Link::awgn(15.0).with_max_cfo_hz(400.0).with_random_phase(true),
        ),
    ];
    let mut rows = Vec::new();
    for (i, (name, link)) in conditions.iter().enumerate() {
        let zig = receive_trials(&orig, link, &rx, trials, 410_000 + i as u64);
        let emu = receive_trials(&forged, link, &rx, trials, 411_000 + i as u64);
        let rate = |receptions: &[ctc_zigbee::Reception], want_attack: bool| -> (f64, f64) {
            let mut cum_ok = 0usize;
            let mut evm_ok = 0usize;
            for r in receptions {
                let c = cumulant.detect(r).map(|v| v.is_attack).unwrap_or(false);
                let e = evm.detect(r).map(|v| v.is_attack).unwrap_or(false);
                cum_ok += usize::from(c == want_attack);
                evm_ok += usize::from(e == want_attack);
            }
            (
                cum_ok as f64 / receptions.len() as f64,
                evm_ok as f64 / receptions.len() as f64,
            )
        };
        let (cum_tn, evm_tn) = rate(&zig, false);
        let (cum_tp, evm_tp) = rate(&emu, true);
        rows.push(vec![
            name.to_string(),
            pct(cum_tn),
            pct(cum_tp),
            pct(evm_tn),
            pct(evm_tp),
        ]);
    }
    let header: Vec<String> = [
        "condition",
        "cumulant: authentic passed",
        "cumulant: attack caught",
        "EVM: authentic passed",
        "EVM: attack caught",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_detectors.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Detector comparison ({trials} frames per cell)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nClustered EVM matches the cumulant detector in static channels but\n\
         collapses under residual CFO (the constellation spins within the\n\
         frame and the clusters smear) — the quantitative case for the\n\
         paper's higher-order-statistics choice.\n",
    );
    out
}

/// MAC anti-replay (sequence cache) vs the physical-layer detector against
/// the replay attack.
pub fn replay(results_dir: &Path) -> String {
    let tx = Transmitter::new();
    let rx = Receiver::usrp();
    let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);

    // The gateway sends a MAC data frame; the attacker records it.
    let control = MacFrame::data(117, 0x1A2B, 0x0001, 0x00C0, b"unlock".to_vec());
    let symbols = control.to_symbols().expect("short frame");
    let wave = tx.transmit_symbols(&symbols);
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&wave));

    let mut device = ZigbeeDevice::new(0x1A2B, 0x0001, 8);
    let mut rows = Vec::new();
    let mut step = |label: &str, wave: &[ctc_dsp::Complex], device: &mut ZigbeeDevice| {
        let reception = rx.receive(wave);
        let mac_result = reception
            .payload()
            .map(|p| device.handle(p))
            .map(|r| match r {
                Ok(_) => "ACCEPTED".to_string(),
                Err(e) => format!("rejected ({e:?})"),
            })
            .unwrap_or_else(|| "PHY decode failed".into());
        let phy_verdict = detector
            .detect(&reception)
            .map(|v| {
                if v.is_attack {
                    format!("ATTACK (DE² {})", f4(v.de_squared))
                } else {
                    format!("authentic (DE² {})", f4(v.de_squared))
                }
            })
            .unwrap_or_else(|_| "n/a".into());
        rows.push(vec![label.to_string(), mac_result, phy_verdict]);
    };

    step("1. gateway frame (seq 117)", &wave, &mut device);
    step("2. attacker replays emulation", &forged, &mut device);
    device.power_cycle();
    step("3. replay after device power-cycle", &forged, &mut device);

    let header: Vec<String> = ["event", "MAC anti-replay (8-entry cache)", "PHY cumulant detector"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_replay.csv", &header, &rows);
    let mut out = String::new();
    out.push_str("## Extension — MAC anti-replay vs the physical-layer defense\n\n");
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nThe sequence cache rejects the verbatim replay only while it holds\n\
         state; after a power cycle (or cache eviction) the same forged frame\n\
         is accepted. The cumulant detector flags the transmission itself,\n\
         stateless — supporting the paper's claim that higher-layer defenses\n\
         cannot stop a physical-layer emulation attack.\n",
    );
    out
}

/// Low-SNR detection via multi-frame aggregation: single-frame cumulant
/// estimates are noise-dominated below ~5 dB; pooling the constellations of
/// N frames shrinks the estimator variance until the (noise-biased but
/// still distinct) class means separate again. Thresholds are calibrated
/// per SNR from aggregated training groups, exactly as the paper calibrates
/// its Q from training waveforms.
pub fn lowsnr(results_dir: &Path, trials: usize) -> String {
    let tx = Transmitter::new();
    let orig = tx.transmit_payload(b"00000").expect("short payload");
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&orig));
    let rx = Receiver::usrp();
    let base = Detector::new(ChannelAssumption::Ideal);
    let mut rows = Vec::new();
    for snr in [1.0, 3.0, 5.0, 7.0] {
        let link = Link::awgn(snr);
        let mut cells = vec![format!("{snr}")];
        for group in [1usize, 3, 10] {
            // Calibrate: aggregated statistics of 12 training groups/class.
            let stat = |wave: &[ctc_dsp::Complex], seed: u64| -> Option<f64> {
                let rs = receive_trials(wave, &link, &rx, group, seed);
                Some(base.detect_aggregated(&rs).ok()?.de_squared)
            };
            let mut zig_train = Vec::new();
            let mut emu_train = Vec::new();
            for t in 0..12u64 {
                let seed = 430_000 + snr as u64 * 1000 + group as u64 * 97 + t * 13;
                zig_train.extend(stat(&orig, seed));
                emu_train.extend(stat(&forged, seed + 5));
            }
            let zmean = zig_train.iter().sum::<f64>() / zig_train.len() as f64;
            let emean = emu_train.iter().sum::<f64>() / emu_train.len() as f64;
            let threshold = (zmean + emean) / 2.0;
            let det = base.with_threshold(threshold.max(1e-6));
            // Test.
            let mut correct = 0usize;
            let mut total = 0usize;
            for t in 0..trials {
                let seed = 440_000 + snr as u64 * 1000 + group as u64 * 101 + t as u64 * 17;
                let zig = receive_trials(&orig, &link, &rx, group, seed);
                let emu = receive_trials(&forged, &link, &rx, group, seed + 7);
                if let Ok(v) = det.detect_aggregated(&zig) {
                    correct += usize::from(!v.is_attack);
                    total += 1;
                }
                if let Ok(v) = det.detect_aggregated(&emu) {
                    correct += usize::from(v.is_attack);
                    total += 1;
                }
            }
            cells.push(pct(correct as f64 / total.max(1) as f64));
        }
        rows.push(cells);
    }
    let header: Vec<String> = ["SNR (dB)", "1 frame", "3 frames", "10 frames"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_lowsnr_aggregation.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Low-SNR detection via frame aggregation ({trials} decisions per cell per class, per-SNR calibrated thresholds)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nBelow the paper's 7 dB operating floor a single frame's cumulant\n\
         estimate is too noisy to classify reliably; pooling constellations\n\
         across frames (the estimator is O(N), so this is cheap) restores\n\
         accurate classification down to SNRs where the attack itself barely\n\
         functions.\n",
    );
    out
}

/// Hardware-impairment robustness: does a benign but imperfect ZigBee
/// transmitter get false-flagged? Sweeps impairment severity and reports
/// both detector variants' false-positive rates alongside the attack's
/// detection rate (unchanged).
pub fn hardware(results_dir: &Path, trials: usize) -> String {
    use ctc_channel::hardware::TxImpairments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let tx = Transmitter::new();
    let orig = tx.transmit_payload(b"00000").expect("short payload");
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&orig));
    let rx = Receiver::usrp();
    let link = Link::awgn(15.0);
    let ideal = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let real = Detector::new(ChannelAssumption::Real).with_threshold(0.25);
    let cases: Vec<(&str, TxImpairments)> = vec![
        ("ideal radio", TxImpairments::default()),
        ("typical IoT radio", TxImpairments::typical_iot()),
        ("worst-case radio", TxImpairments::worst_case()),
    ];
    let mut rows = Vec::new();
    for (i, (name, imp)) in cases.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(450_000 + i as u64);
        let mut fp_ideal = 0usize;
        let mut fp_real = 0usize;
        let mut caught = 0usize;
        for _ in 0..trials {
            let dirty = imp.apply(&orig, &mut rng);
            let rz = rx.receive(&link.transmit(&dirty, &mut rng));
            fp_ideal += usize::from(ideal.detect(&rz).map(|v| v.is_attack).unwrap_or(false));
            fp_real += usize::from(real.detect(&rz).map(|v| v.is_attack).unwrap_or(false));
            let dirty_forged = imp.apply(&forged, &mut rng);
            let re = rx.receive(&link.transmit(&dirty_forged, &mut rng));
            caught += usize::from(real.detect(&re).map(|v| v.is_attack).unwrap_or(false));
        }
        rows.push(vec![
            name.to_string(),
            pct(fp_ideal as f64 / trials as f64),
            pct(fp_real as f64 / trials as f64),
            pct(caught as f64 / trials as f64),
        ]);
    }
    let header: Vec<String> = [
        "transmitter hardware",
        "Ideal detector false positives",
        "|C40| detector false positives",
        "impaired attacker still caught",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_hardware.csv", &header, &rows);
    let mut out = String::new();
    out.push_str(&format!(
        "## Extension — Hardware-impairment robustness ({trials} frames per cell, 15 dB)\n\n"
    ));
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nTypical IoT-grade I/Q imbalance, PA compression and phase noise do\n\
         not push authentic waveforms over the detection threshold. The\n\
         out-of-spec radio's phase noise starts false-flagging the Ideal\n\
         (Re C40) variant, but the |C40| spectral-line variant stays clean —\n\
         and an attacker using the same bad hardware remains fully\n\
         detectable: the impairments stack on top of the emulation\n\
         distortion rather than masking it.\n",
    );
    out
}

/// Block-alignment sensitivity: the attacker's 4 µs block grid can sit at
/// any of 16 sample offsets within the victim frame; the CP-corruption
/// regions then hit different chip-sampling instants and the emulation's
/// DE² signature varies. Quantifies the spread — an evasion lever for the
/// attacker and a calibration requirement for the defender.
pub fn alignment(results_dir: &Path) -> String {
    let tx = Transmitter::new();
    let frame = tx.transmit_payload(b"00000").expect("short payload");
    let rx = Receiver::usrp().with_sync_search(96);
    let emulator = Emulator::new();
    let mut rows = Vec::new();
    let mut de_values = Vec::new();
    for offset in 0..16usize {
        // Prepend `offset` zero samples: the attacker's block grid starts at
        // its recording boundary, so this shifts the frame within it.
        let mut observed = vec![ctc_dsp::Complex::ZERO; offset];
        observed.extend_from_slice(&frame);
        let forged = emulator.received_at_zigbee(&emulator.emulate(&observed));
        let r = rx.receive(&forged);
        let de = ctc_core::defense::features_from_reception(&r)
            .map(|f| f.de_squared_ideal())
            .unwrap_or(f64::NAN);
        let decoded = r.payload() == Some(&b"00000"[..]);
        de_values.push(de);
        rows.push(vec![
            format!("{offset}"),
            f4(de),
            format!("{decoded}"),
        ]);
    }
    let header: Vec<String> = ["frame offset (samples)", "emulated DE²", "frame decodes"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let _ = write_csv(results_dir, "ext_alignment.csv", &header, &rows);
    let min = de_values.iter().cloned().fold(f64::MAX, f64::min);
    let max = de_values.iter().cloned().fold(f64::MIN, f64::max);
    let mut out = String::new();
    out.push_str("## Extension — Block-alignment sensitivity of the attack signature\n\n");
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(&format!(
        "\nEmulated DE² spans {} – {} across the 16 possible alignments (the\n\
         attack succeeds at every one). An attacker choosing its best\n\
         alignment shrinks its signature ~{:.0}x — still far above the\n\
         authentic ~0.003 at high SNR, but defenders must calibrate their\n\
         threshold against the *minimum*, not the average, emulated DE².\n",
        f4(min),
        f4(max),
        max / min.max(1e-9),
    ));
    out
}

/// End-to-end coexistence scenario: attack timeline vs gateway traffic
/// density — CCA deferrals, strikes landed, and monitor accuracy over the
/// composite channel.
pub fn scenario(results_dir: &Path) -> String {
    use ctc_core::scenario::{run as run_scenario, ScenarioConfig, Source};
    use ctc_core::defense::StreamMonitor;
    let mut rows = Vec::new();
    for (i, period) in [16_000usize, 9_000, 5_000, 3_000].into_iter().enumerate() {
        let config = ScenarioConfig {
            gateway_period: period,
            attacker_strikes: 4,
            ..ScenarioConfig::default()
        };
        let result = run_scenario(&config, 700 + i as u64);
        let strikes = result
            .transmissions
            .iter()
            .filter(|t| t.source == Source::Attacker)
            .count();
        let collisions = result
            .transmissions
            .iter()
            .filter(|t| t.source == Source::Attacker && t.collided)
            .count();
        let monitor = StreamMonitor::with_detector(
            Detector::new(ChannelAssumption::Ideal).with_threshold(0.03),
        );
        let events = monitor.scan(&result.channel);
        let mut correct = 0usize;
        let mut matched = 0usize;
        for e in &events {
            let mid = (e.burst.start + e.burst.end) / 2;
            let (Some(truth), Some(v)) = (result.source_at(mid), e.verdict) else {
                continue;
            };
            matched += 1;
            correct += usize::from((truth == Source::Attacker) == v.is_attack);
        }
        rows.push(vec![
            format!("{:.1}", period as f64 / 4000.0),
            format!("{strikes}/4"),
            format!("{}", result.cca_deferrals),
            format!("{collisions}"),
            format!("{correct}/{matched}"),
        ]);
    }
    let header: Vec<String> = [
        "gateway period (ms)",
        "strikes landed",
        "CCA deferrals",
        "collisions",
        "monitor correct",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let _ = write_csv(results_dir, "ext_scenario.csv", &header, &rows);
    let mut out = String::new();
    out.push_str("## Extension — Coexistence scenario (listen → CCA → strike → monitor)\n\n");
    out.push_str(&markdown_table(&header, &rows));
    out.push_str(
        "\nDenser gateway traffic forces the CSMA-respecting attacker to defer\n\
         more, but every strike it does land decodes; the stream monitor\n\
         classifies gateway and attacker transmissions correctly over the\n\
         composite channel (threshold calibrated against the alignment\n\
         minimum — see the `alignment` experiment).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        std::env::temp_dir().join("ctc_protocol_test")
    }

    #[test]
    fn channels_renders() {
        let out = channels(&dir(), 2);
        assert!(out.contains("ZigBee channel"));
        assert!(out.contains("2435"));
    }

    #[test]
    fn detectors_renders() {
        let out = detectors(&dir(), 3);
        assert!(out.contains("CFO 400 Hz"));
    }

    #[test]
    fn replay_story_holds() {
        let out = replay(&dir());
        assert!(out.contains("rejected (DuplicateSequence)"));
        assert!(out.contains("power-cycle"));
        assert!(out.contains("ATTACK"));
    }
}
