//! Output helpers for the experiment harness: markdown tables to stdout and
//! CSV series under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Renders a markdown table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Writes a CSV file under the results directory, creating it if needed.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_csv(
    results_dir: &Path,
    name: &str,
    header: &[String],
    rows: &[Vec<String>],
) -> io::Result<PathBuf> {
    fs::create_dir_all(results_dir)?;
    let path = results_dir.join(name);
    let mut body = String::new();
    let _ = writeln!(body, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(body, "{}", row.join(","));
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Formats a float with 4 decimal places.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = markdown_table(&["a".into(), "b".into()], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = markdown_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("ctc_bench_test_csv");
        let p = write_csv(
            &dir,
            "t.csv",
            &["x".into(), "y".into()],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f2(1.235), "1.24");
        assert_eq!(pct(0.424), "42.4%");
    }
}
