//! The parallel Monte-Carlo trial engine.
//!
//! Every experiment in this crate is a set of independent trials (one
//! reception, one scenario run, one estimator evaluation, …) followed by a
//! single-threaded reduction that renders tables and CSVs. The engine
//! separates the two phases behind the [`Experiment`] trait and fans the
//! trial phase across a [`std::thread::scope`] pool:
//!
//! - **Determinism is independent of parallelism.** Trial `i` always runs
//!   with `StdRng::seed_from_u64(mix(base_seed, i))` (where `base_seed` mixes
//!   the runner seed with a hash of the experiment name), and outcomes are
//!   reassembled in trial order before [`Experiment::reduce`] sees them —
//!   so `--jobs 1` and `--jobs N` produce byte-identical reports.
//! - **Work is distributed in chunks.** Threads claim contiguous chunks of
//!   trial indices from a shared atomic cursor, which keeps cache locality
//!   without pre-partitioning (trials have wildly different costs across
//!   cells of a sweep).
//! - **Expensive precomputation is shared.** [`Artifacts`] memoizes
//!   waveform pairs, emulator products and other setup by key, so a sweep's
//!   threads build each one once and an `all` run reuses them across
//!   experiments.

use ctc_core::{Emulator, Error, WaveformPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared read-only cache of expensive per-experiment precomputation.
///
/// Values are built once under the cache lock and shared as `Arc`s; a
/// builder must not recursively call back into the same [`Artifacts`]
/// (it would deadlock on the cache lock).
#[derive(Default)]
pub struct Artifacts {
    memo: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
}

impl Artifacts {
    /// An empty cache.
    pub fn new() -> Self {
        Artifacts::default()
    }

    /// Returns the cached value for `key`, building it with `build` on the
    /// first call. The type `T` must match across all users of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` was previously memoized at a different type.
    pub fn memo<T, F>(&self, key: &str, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut memo = self.memo.lock().expect("artifacts lock poisoned");
        let entry = memo
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(build()) as Arc<dyn Any + Send + Sync>);
        entry
            .clone()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("artifact key {key:?} reused at a different type"))
    }

    /// Like [`Artifacts::memo`] for fallible builders. Only successes are
    /// cached; a failing builder reruns on the next call.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error.
    pub fn try_memo<T, F>(&self, key: &str, build: F) -> Result<Arc<T>, Error>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<T, Error>,
    {
        let mut memo = self.memo.lock().expect("artifacts lock poisoned");
        if let Some(entry) = memo.get(key) {
            return Ok(entry
                .clone()
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact key {key:?} reused at a different type")));
        }
        let value = Arc::new(build()?);
        memo.insert(key.to_string(), value.clone() as Arc<dyn Any + Send + Sync>);
        Ok(value)
    }

    /// The waveform pair for `payload` under the default attacker, built
    /// once and shared across trials and experiments.
    ///
    /// # Errors
    ///
    /// Propagates framing errors for invalid payloads.
    pub fn pair(&self, payload: &[u8]) -> Result<Arc<WaveformPair>, Error> {
        let key = format!("pair:{payload:?}");
        self.try_memo(&key, || WaveformPair::new(payload))
    }

    /// The waveform pair for `payload` under a custom attacker. `tag` must
    /// uniquely identify the emulator configuration.
    ///
    /// # Errors
    ///
    /// Propagates framing errors for invalid payloads.
    pub fn pair_with(
        &self,
        payload: &[u8],
        tag: &str,
        emulator: &Emulator,
    ) -> Result<Arc<WaveformPair>, Error> {
        let key = format!("pair:{tag}:{payload:?}");
        self.try_memo(&key, || WaveformPair::with_emulator(payload, emulator))
    }
}

/// Per-trial context handed to [`Experiment::trial`].
pub struct Ctx<'a> {
    /// The shared precomputation cache.
    pub artifacts: &'a Artifacts,
    /// Global trial index in `0..Experiment::trials()`.
    pub trial_index: u64,
}

/// The result of one trial: which sweep cell it belongs to and the measured
/// values (success flags, statistics, feature components, …).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Sweep-cell index the trial contributes to.
    pub cell: usize,
    /// Measured values; the experiment's `reduce` defines their meaning.
    pub values: Vec<f64>,
}

/// One experiment: a name, a trial count, a per-trial measurement and a
/// reduction that renders the report.
pub trait Experiment: Send + Sync {
    /// Stable identifier (used for seed derivation and progress output).
    fn name(&self) -> &str;

    /// Number of independent trials. Zero means all work happens in
    /// [`Experiment::reduce`] (deterministic one-shot experiments).
    fn trials(&self) -> u64;

    /// Runs trial `ctx.trial_index` with its derived generator.
    ///
    /// # Errors
    ///
    /// Any error aborts the run; the runner reports the error of the
    /// lowest-numbered failing trial.
    fn trial(&self, ctx: &Ctx<'_>, rng: &mut StdRng) -> Result<TrialOutcome, Error>;

    /// Reduces the ordered outcomes (trial order, independent of job
    /// count) to the final report text. Side effects (CSV files) happen
    /// here, single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates rendering/IO errors.
    fn reduce(&self, artifacts: &Artifacts, outcomes: Vec<TrialOutcome>) -> Result<String, Error>;
}

/// A finished run: the rendered report plus engine measurements.
#[derive(Debug, Clone)]
pub struct Report {
    /// The experiment's name.
    pub name: String,
    /// Rendered report text (tables, summaries).
    pub text: String,
    /// Number of trials executed.
    pub trials: u64,
    /// Wall-clock duration of the trial + reduce phases.
    pub elapsed: Duration,
    /// Worker threads used for the trial phase.
    pub jobs: usize,
}

impl Report {
    /// Trials per wall-clock second (0 when no trials ran).
    pub fn trials_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.trials as f64 / secs
        } else {
            0.0
        }
    }
}

/// Fans an experiment's trials across a scoped thread pool.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    jobs: usize,
    base_seed: u64,
}

/// Default base seed for trial RNG derivation.
pub const DEFAULT_BASE_SEED: u64 = 0x1DC5_1EE6;

/// Splitmix64-style finalizer deriving the per-trial seed. A plain
/// `seed ^ i` is too weak: for nearby base seeds the xor merely permutes a
/// contiguous trial-index range onto itself, so order-independent reduces
/// would see the identical seed set.
///
/// Public so deterministic harnesses outside the engine (the golden-vector
/// corpus generator) derive per-stage seeds exactly the way trials do.
pub fn splitmix(seed: u64, i: u64) -> u64 {
    mix(seed, i)
}

fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a name, used to give each experiment its own seed stream.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::new(available_jobs())
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl TrialRunner {
    /// A runner using `jobs` worker threads (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        TrialRunner {
            jobs: jobs.max(1),
            base_seed: DEFAULT_BASE_SEED,
        }
    }

    /// Overrides the base seed all per-trial generators derive from.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs the experiment: parallel trial phase, then single-threaded
    /// reduce, returning the rendered report with timing.
    ///
    /// Per-experiment stage timings land in the global
    /// [`ctc_obs::Registry`]: `ctc_bench_trials_total{experiment=...}`
    /// counts trials and `ctc_bench_stage_duration_us{experiment=...,
    /// stage="trials"|"reduce"}` histograms the two phases, so
    /// `experiments --obs-dump` shows where a sweep's wall-clock went.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-numbered failing trial, or the
    /// reduce phase's error.
    pub fn run(&self, experiment: &dyn Experiment, artifacts: &Artifacts) -> Result<Report, Error> {
        let n = experiment.trials();
        let start = Instant::now();
        let outcomes = self.fan_out(experiment, artifacts, n)?;
        let trials_done = start.elapsed();
        let text = experiment.reduce(artifacts, outcomes)?;
        let elapsed = start.elapsed();

        let registry = ctc_obs::Registry::global();
        let name = experiment.name();
        registry
            .counter_with(
                "ctc_bench_trials_total",
                "Monte-Carlo trials executed, by experiment.",
                &[("experiment", name)],
            )
            .add(n);
        let stage_help = "Wall-clock time of one engine phase, in microseconds.";
        registry
            .histogram_with(
                "ctc_bench_stage_duration_us",
                stage_help,
                &[("experiment", name), ("stage", "trials")],
            )
            .record(trials_done.as_micros() as u64);
        registry
            .histogram_with(
                "ctc_bench_stage_duration_us",
                stage_help,
                &[("experiment", name), ("stage", "reduce")],
            )
            .record((elapsed - trials_done).as_micros() as u64);

        Ok(Report {
            name: name.to_string(),
            text,
            trials: n,
            elapsed,
            jobs: self.jobs,
        })
    }

    /// Executes trials `0..n` across the pool, returning outcomes in trial
    /// order.
    fn fan_out(
        &self,
        experiment: &dyn Experiment,
        artifacts: &Artifacts,
        n: u64,
    ) -> Result<Vec<TrialOutcome>, Error> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let seed = self.base_seed ^ fnv1a(experiment.name());
        let workers = self.jobs.min(n as usize);
        // Small chunks balance load across cells of unequal cost while
        // amortizing the cursor and the results lock.
        let chunk = (n / (workers as u64 * 8)).clamp(1, 256);
        let cursor = AtomicU64::new(0);
        let failed = AtomicBool::new(false);
        let slots: Mutex<Vec<Option<TrialOutcome>>> = Mutex::new(vec![None; n as usize]);
        let first_error: Mutex<Option<(u64, Error)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(u64, TrialOutcome)> = Vec::with_capacity(chunk as usize);
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n || failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        local.clear();
                        for i in lo..hi {
                            let ctx = Ctx {
                                artifacts,
                                trial_index: i,
                            };
                            let mut rng = StdRng::seed_from_u64(mix(seed, i));
                            match experiment.trial(&ctx, &mut rng) {
                                Ok(outcome) => local.push((i, outcome)),
                                Err(e) => {
                                    let mut slot = first_error.lock().expect("error lock poisoned");
                                    if slot.as_ref().map(|(j, _)| i < *j).unwrap_or(true) {
                                        *slot = Some((i, e));
                                    }
                                    failed.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        let mut slots = slots.lock().expect("results lock poisoned");
                        for (i, outcome) in local.drain(..) {
                            slots[i as usize] = Some(outcome);
                        }
                    }
                });
            }
        });

        if let Some((_, e)) = first_error.into_inner().expect("error lock poisoned") {
            return Err(e);
        }
        let outcomes = slots
            .into_inner()
            .expect("results lock poisoned")
            .into_iter()
            .map(|slot| slot.expect("every trial ran"))
            .collect();
        Ok(outcomes)
    }
}

/// Groups ordered outcomes by cell: `result[cell]` holds each contributing
/// trial's values, in trial order.
pub fn group_by_cell(outcomes: Vec<TrialOutcome>, cells: usize) -> Vec<Vec<Vec<f64>>> {
    let mut grouped = vec![Vec::new(); cells];
    for outcome in outcomes {
        grouped[outcome.cell].push(outcome.values);
    }
    grouped
}

/// `1.0` / `0.0` for success flags in [`TrialOutcome::values`].
pub fn flag(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Fraction of trials whose `values[idx]` flag is set.
pub fn rate_of(cell: &[Vec<f64>], idx: usize) -> f64 {
    if cell.is_empty() {
        return 0.0;
    }
    cell.iter()
        .filter(|v| v.get(idx).copied().unwrap_or(0.0) > 0.5)
        .count() as f64
        / cell.len() as f64
}

/// Collects column `idx` across a cell's trials, skipping trials whose
/// values are empty (e.g. feature extraction failed).
pub fn column(cell: &[Vec<f64>], idx: usize) -> Vec<f64> {
    cell.iter()
        .filter(|v| !v.is_empty())
        .map(|v| v[idx])
        .collect()
}

/// A sweep-style Monte-Carlo experiment: `cells × per_cell` independent
/// trials, reduced cell-by-cell.
///
/// `trial_fn(ctx, cell, rng)` measures one trial of `cell`;
/// `reduce_fn(artifacts, grouped)` renders the report from
/// `grouped[cell][trial] -> values`.
pub struct MonteCarlo<T, R> {
    /// Stable experiment id.
    pub name: &'static str,
    /// Number of sweep cells.
    pub cells: usize,
    /// Trials per cell.
    pub per_cell: usize,
    /// Per-trial measurement.
    pub trial_fn: T,
    /// Cell-grouped reduction.
    pub reduce_fn: R,
}

impl<T, R> Experiment for MonteCarlo<T, R>
where
    T: Fn(&Ctx<'_>, usize, &mut StdRng) -> Result<Vec<f64>, Error> + Send + Sync,
    R: Fn(&Artifacts, Vec<Vec<Vec<f64>>>) -> Result<String, Error> + Send + Sync,
{
    fn name(&self) -> &str {
        self.name
    }

    fn trials(&self) -> u64 {
        (self.cells * self.per_cell) as u64
    }

    fn trial(&self, ctx: &Ctx<'_>, rng: &mut StdRng) -> Result<TrialOutcome, Error> {
        let cell = (ctx.trial_index as usize) / self.per_cell.max(1);
        let values = (self.trial_fn)(ctx, cell, rng)?;
        Ok(TrialOutcome { cell, values })
    }

    fn reduce(&self, artifacts: &Artifacts, outcomes: Vec<TrialOutcome>) -> Result<String, Error> {
        (self.reduce_fn)(artifacts, group_by_cell(outcomes, self.cells))
    }
}

/// A deterministic one-shot experiment: no trial phase, all work in the
/// render closure.
pub struct OneShot<R> {
    /// Stable experiment id.
    pub name: &'static str,
    /// Renders the report.
    pub render: R,
}

impl<R> Experiment for OneShot<R>
where
    R: Fn(&Artifacts) -> Result<String, Error> + Send + Sync,
{
    fn name(&self) -> &str {
        self.name
    }

    fn trials(&self) -> u64 {
        0
    }

    fn trial(&self, _ctx: &Ctx<'_>, _rng: &mut StdRng) -> Result<TrialOutcome, Error> {
        Err(Error::Other(format!(
            "one-shot experiment {} has no trials",
            self.name
        )))
    }

    fn reduce(&self, artifacts: &Artifacts, _outcomes: Vec<TrialOutcome>) -> Result<String, Error> {
        (self.render)(artifacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collatz;

    impl Experiment for Collatz {
        fn name(&self) -> &str {
            "collatz"
        }
        fn trials(&self) -> u64 {
            100
        }
        fn trial(&self, ctx: &Ctx<'_>, rng: &mut StdRng) -> Result<TrialOutcome, Error> {
            // Mix the derived rng into the value so the test detects any
            // change to per-trial seed derivation.
            let noise: f64 = rand::Rng::gen(rng);
            Ok(TrialOutcome {
                cell: (ctx.trial_index % 4) as usize,
                values: vec![ctx.trial_index as f64, noise],
            })
        }
        fn reduce(
            &self,
            _artifacts: &Artifacts,
            outcomes: Vec<TrialOutcome>,
        ) -> Result<String, Error> {
            let sum: f64 = outcomes.iter().map(|o| o.values[0] + o.values[1]).sum();
            Ok(format!("{sum:.12}"))
        }
    }

    #[test]
    fn outcomes_arrive_in_trial_order() {
        let artifacts = Artifacts::new();
        let runner = TrialRunner::new(4);
        let report = runner.run(&Collatz, &artifacts).unwrap();
        assert_eq!(report.trials, 100);
        assert_eq!(report.jobs, 4);
    }

    #[test]
    fn job_count_does_not_change_results() {
        let texts: Vec<String> = [1usize, 2, 7]
            .iter()
            .map(|&jobs| {
                TrialRunner::new(jobs)
                    .run(&Collatz, &Artifacts::new())
                    .unwrap()
                    .text
            })
            .collect();
        assert_eq!(texts[0], texts[1]);
        assert_eq!(texts[0], texts[2]);
    }

    #[test]
    fn base_seed_changes_results() {
        let a = TrialRunner::new(2)
            .with_base_seed(1)
            .run(&Collatz, &Artifacts::new())
            .unwrap();
        let b = TrialRunner::new(2)
            .with_base_seed(2)
            .run(&Collatz, &Artifacts::new())
            .unwrap();
        assert_ne!(a.text, b.text);
    }

    struct Failing;

    impl Experiment for Failing {
        fn name(&self) -> &str {
            "failing"
        }
        fn trials(&self) -> u64 {
            50
        }
        fn trial(&self, ctx: &Ctx<'_>, _rng: &mut StdRng) -> Result<TrialOutcome, Error> {
            if ctx.trial_index >= 20 {
                Err(Error::Other(format!("trial {} failed", ctx.trial_index)))
            } else {
                Ok(TrialOutcome {
                    cell: 0,
                    values: vec![],
                })
            }
        }
        fn reduce(&self, _: &Artifacts, _: Vec<TrialOutcome>) -> Result<String, Error> {
            Ok(String::new())
        }
    }

    #[test]
    fn lowest_failing_trial_wins() {
        let err = TrialRunner::new(4)
            .run(&Failing, &Artifacts::new())
            .unwrap_err();
        assert_eq!(err.to_string(), "trial 20 failed");
    }

    #[test]
    fn artifacts_memoize_once() {
        let artifacts = Artifacts::new();
        let mut built = 0;
        let a = artifacts.memo("k", || {
            built += 1;
            42usize
        });
        let b = artifacts.memo("k", || {
            built += 1;
            43usize
        });
        assert_eq!((*a, *b, built), (42, 42, 1));
    }

    #[test]
    fn artifacts_share_waveform_pairs() {
        let artifacts = Artifacts::new();
        let a = artifacts.pair(b"00000").unwrap();
        let b = artifacts.pair(b"00000").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(artifacts.pair(&vec![0u8; 4096]).is_err());
    }

    #[test]
    fn monte_carlo_adapter_groups_cells() {
        let exp = MonteCarlo {
            name: "mc",
            cells: 3,
            per_cell: 5,
            trial_fn: |_ctx: &Ctx<'_>, cell: usize, _rng: &mut StdRng| Ok(vec![cell as f64]),
            reduce_fn: |_a: &Artifacts, grouped: Vec<Vec<Vec<f64>>>| {
                assert_eq!(grouped.len(), 3);
                for (cell, trials) in grouped.iter().enumerate() {
                    assert_eq!(trials.len(), 5);
                    assert!(trials.iter().all(|v| v[0] as usize == cell));
                }
                Ok("ok".into())
            },
        };
        let report = TrialRunner::new(3).run(&exp, &Artifacts::new()).unwrap();
        assert_eq!(report.text, "ok");
        assert_eq!(report.trials, 15);
    }

    #[test]
    fn one_shot_runs_in_reduce() {
        let exp = OneShot {
            name: "shot",
            render: |_a: &Artifacts| Ok("rendered".into()),
        };
        let report = TrialRunner::new(8).run(&exp, &Artifacts::new()).unwrap();
        assert_eq!(report.trials, 0);
        assert_eq!(report.text, "rendered");
    }

    #[test]
    fn helper_stats() {
        let cell = vec![vec![1.0, 0.5], vec![0.0, 1.5], vec![1.0, 2.5], vec![]];
        assert!((rate_of(&cell, 0) - 0.5).abs() < 1e-12);
        assert_eq!(column(&cell, 1), vec![0.5, 1.5, 2.5]);
        assert_eq!(flag(true), 1.0);
        assert_eq!(flag(false), 0.0);
    }
}
