//! Job-count invariance: the engine's contract is that `--jobs 1` and
//! `--jobs N` produce byte-identical reports for the same base seed, and
//! that changing the base seed actually changes stochastic results.

use ctc_bench::engine::{Artifacts, TrialRunner};
use ctc_bench::experiments;
use std::path::PathBuf;

fn results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ctc-determinism-{tag}"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Renders `id` with the given runner config and returns the report text.
fn render(id: &str, jobs: usize, seed: u64, tag: &str) -> String {
    let exp = experiments::build(id, &results_dir(tag), true).expect("known experiment id");
    let artifacts = Artifacts::new();
    let runner = TrialRunner::new(jobs).with_base_seed(seed);
    let report = runner
        .run(exp.as_ref(), &artifacts)
        .expect("experiment runs");
    report.text
}

#[test]
fn jobs_1_and_jobs_4_reports_are_byte_identical() {
    // A mix of stochastic experiments covering the MonteCarlo adapter's
    // cell encodings: plain sweep, multi-factor, and role-budgeted.
    for id in ["table2", "fig12", "lowsnr"] {
        let serial = render(id, 1, 42, "serial");
        let parallel = render(id, 4, 42, "parallel");
        assert_eq!(
            serial, parallel,
            "{id}: --jobs 1 and --jobs 4 reports diverged"
        );
    }
}

#[test]
fn base_seed_changes_stochastic_reports() {
    let a = render("table2", 2, 1, "seed-a");
    let b = render("table2", 2, 2, "seed-b");
    assert_ne!(a, b, "different base seeds should change table2");
}
