//! Scratch profiler for the gateway hot path (dev tool, not a bench).
use ctc_channel::noise::complex_gaussian;
use ctc_core::attack::Emulator;
use ctc_core::attack::EnergyDetector;
use ctc_core::defense::features::{constellation_from_reception, Features};
use ctc_core::defense::stream::BurstSplitter;
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(29);
    let sigma2 = 1e-3;
    let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    println!(
        "frame len: authentic {} forged {}",
        authentic.len(),
        forged.len()
    );
    let total = 1 << 20;
    let mut stream: Vec<Complex> = Vec::with_capacity(total);
    let mut forge = false;
    while stream.len() < total {
        stream.extend((0..20_000).map(|_| complex_gaussian(&mut rng, sigma2)));
        stream.extend_from_slice(if forge { &forged } else { &authentic });
        forge = !forge;
    }
    stream.truncate(total);

    // Ingest: burst splitting over the whole stream.
    let t0 = Instant::now();
    let mut splitter = BurstSplitter::new(EnergyDetector::default());
    let mut captures = Vec::new();
    for chunk in stream.chunks(16384) {
        splitter.push_into(chunk, &mut captures);
    }
    splitter.finish_into(&mut captures);
    let t_split = t0.elapsed();
    println!(
        "splitter: {:?} for {} samples -> {} captures ({:.1} M/s)",
        t_split,
        total,
        captures.len(),
        total as f64 / t_split.as_secs_f64() / 1e6
    );

    // Decode each capture.
    let rx = Receiver::usrp().with_sync_search(96);
    let t0 = Instant::now();
    let receptions: Vec<_> = captures.iter().map(|c| rx.receive(&c.samples)).collect();
    let t_decode = t0.elapsed();
    println!(
        "decode: {:?} total, {:?}/frame",
        t_decode,
        t_decode / captures.len() as u32
    );

    // Sync alone: receive on a no-correction receiver to bound sync cost.
    let rx_nosync = Receiver::usrp().with_sync_search(0);
    let t0 = Instant::now();
    let _r2: Vec<_> = captures
        .iter()
        .map(|c| rx_nosync.receive(&c.samples))
        .collect();
    let t_nosearch = t0.elapsed();
    println!("decode w/o timing search: {:?} total", t_nosearch);

    // Classify.
    let t0 = Instant::now();
    let mut acc = 0.0;
    for r in &receptions {
        let pts = constellation_from_reception(r);
        let f = Features::estimate(&pts).unwrap();
        acc += f.c40_magnitude;
    }
    let t_classify = t0.elapsed();
    println!(
        "classify: {:?} total, {:?}/frame (acc {acc:.3})",
        t_classify,
        t_classify / receptions.len() as u32
    );
    let pts = constellation_from_reception(&receptions[0]);
    println!("constellation points/frame: {}", pts.len());

    // Line-search cost alone vs cumulants.
    let t0 = Instant::now();
    for _ in 0..100 {
        let c = ctc_dsp::cumulants::Cumulants::estimate(&pts).unwrap();
        std::hint::black_box(c);
    }
    println!("cumulants alone: {:?}/frame", t0.elapsed() / 100);

    let t0 = Instant::now();
    for _ in 0..100 {
        let f = Features::estimate(&pts).unwrap();
        std::hint::black_box(f);
    }
    println!("features alone: {:?}/frame", t0.elapsed() / 100);

    // cf32 parse cost (the gateway bench feeds bytes, so this is on the
    // measured path).
    let mut bytes = Vec::with_capacity(total * 8);
    ctc_dsp::io::write_cf32(&mut bytes, &stream).unwrap();
    let t0 = Instant::now();
    let parsed = ctc_dsp::io::read_cf32(&bytes[..]).unwrap();
    let t_parse = t0.elapsed();
    println!(
        "cf32 parse: {:?} for {} samples ({:.1} M/s)",
        t_parse,
        parsed.len(),
        parsed.len() as f64 / t_parse.as_secs_f64() / 1e6
    );

    // Steady-state chunked parse with a reused buffer (the server path).
    let t0 = Instant::now();
    let mut reader = ctc_dsp::io::Cf32Reader::new(&bytes[..]);
    let mut chunk = Vec::new();
    let mut n = 0usize;
    while reader.read_chunk(&mut chunk).unwrap() > 0 {
        n += chunk.len();
    }
    let t_chunked = t0.elapsed();
    println!(
        "cf32 chunked parse: {:?} for {} samples ({:.1} M/s)",
        t_chunked,
        n,
        n as f64 / t_chunked.as_secs_f64() / 1e6
    );

    // Splitter on pure noise (no bursts): bounds the idle per-sample cost.
    let mut rng2 = StdRng::seed_from_u64(31);
    let noise: Vec<Complex> = (0..total)
        .map(|_| complex_gaussian(&mut rng2, 1e-3))
        .collect();
    let t0 = Instant::now();
    let mut splitter = BurstSplitter::new(EnergyDetector::default());
    let mut caps = Vec::new();
    for chunk in noise.chunks(16384) {
        splitter.push_into(chunk, &mut caps);
    }
    splitter.finish_into(&mut caps);
    let t_idle = t0.elapsed();
    println!(
        "splitter idle: {:?} ({:.1} M/s)",
        t_idle,
        total as f64 / t_idle.as_secs_f64() / 1e6
    );

    // Component breakdown: energy stream alone, history VecDeque alone.
    let t0 = Instant::now();
    let mut es = EnergyDetector::default().stream();
    let mut nbursts = 0usize;
    for chunk in noise.chunks(16384) {
        es.push_each(chunk, |_| nbursts += 1);
    }
    es.finish();
    println!(
        "energy stream alone: {:?} ({} bursts)",
        t0.elapsed(),
        nbursts
    );

    let t0 = Instant::now();
    let mut dq: std::collections::VecDeque<Complex> = std::collections::VecDeque::new();
    for chunk in noise.chunks(16384) {
        dq.extend(chunk.iter().copied());
        if dq.len() > 4096 {
            dq.drain(..dq.len() - 4096);
        }
    }
    println!("history deque alone: {:?} (len {})", t0.elapsed(), dq.len());

    let t0 = Instant::now();
    let mut scratch = Vec::new();
    for chunk in noise.chunks(16384) {
        ctc_dsp::simd::norm_sqr_into(chunk, &mut scratch);
        std::hint::black_box(scratch.last());
    }
    println!("norm_sqr_into alone: {:?}", t0.elapsed());

    // Scan kernel alone (no bookkeeping).
    let mut ring = vec![0.0; 16];
    let mut st = ctc_dsp::simd::GateScanState {
        slot: 0,
        acc: 0.0,
        floor: 1e-3,
        gate: 4e-3,
        threshold: 4.0,
        alpha: 1.0 / 64.0,
        floor_eps: 1e-12,
        inv_w: 1.0 / 16.0,
    };
    let mut active = vec![0u8; 16384];
    let t0 = Instant::now();
    for chunk in noise.chunks(16384) {
        ctc_dsp::simd::gated_power_scan(chunk, &mut ring, &mut st, &mut active[..chunk.len()]);
        std::hint::black_box(active.last());
    }
    println!(
        "gated_power_scan alone: {:?} (floor {:.3e})",
        t0.elapsed(),
        st.floor
    );
}
