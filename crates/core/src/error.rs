//! The workspace-wide error type.
//!
//! Fallible operations across the reproduction — framing/transmission
//! ([`ctc_zigbee::frame::FrameError`]) and detection
//! ([`crate::defense::DetectError`]) — converge on one [`Error`] enum so
//! callers (the experiment engine, the CLI, examples) can propagate with
//! `?` instead of panicking or juggling per-crate error types.

use crate::defense::DetectError;
use ctc_zigbee::frame::FrameError;

/// Any error the attack/defense pipeline can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// ZigBee framing or transmission failed (payload too long, bad FCS, …).
    Frame(FrameError),
    /// The detector could not run (no chip samples, …).
    Detect(DetectError),
    /// Anything else, with a human-readable message (I/O in the experiment
    /// harness, unknown experiment ids, …).
    Other(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Frame(e) => write!(f, "frame error: {e}"),
            Error::Detect(e) => write!(f, "detect error: {e}"),
            Error::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Frame(e) => Some(e),
            Error::Detect(e) => Some(e),
            Error::Other(_) => None,
        }
    }
}

impl From<FrameError> for Error {
    fn from(e: FrameError) -> Self {
        Error::Frame(e)
    }
}

impl From<DetectError> for Error {
    fn from(e: DetectError) -> Self {
        Error::Detect(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Other(format!("i/o error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = FrameError::Truncated.into();
        assert!(matches!(e, Error::Frame(_)));
        assert!(e.to_string().contains("frame error"));

        let e: Error = DetectError::NoSamples.into();
        assert!(matches!(e, Error::Detect(_)));
        assert!(e.to_string().contains("detect error"));

        let e = Error::Other("boom".into());
        assert_eq!(e.to_string(), "boom");
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e: Error = DetectError::NoSamples.into();
        assert!(e.source().is_some());
        assert!(Error::Other("x".into()).source().is_none());
    }
}
