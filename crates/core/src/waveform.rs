//! The authentic/emulated waveform pair used throughout the evaluation.
//!
//! Every attack and defense experiment starts from the same construction:
//! a ZigBee transmitter emits a frame, the WiFi attacker records it and
//! re-synthesizes it, and the ZigBee front-end captures the emulation back
//! at 4 MHz. [`WaveformPair`] packages the three artifacts. It lives here —
//! not in the benchmark crate — so the experiment harness, CLI and examples
//! share one implementation.

use crate::attack::{Emulation, Emulator};
use crate::error::Error;
use ctc_dsp::{Complex, SampleBuf};
use ctc_zigbee::Transmitter;

/// A reusable pair of transmit waveforms: the authentic frame and its
/// emulation as captured by the ZigBee front-end.
#[derive(Debug, Clone)]
pub struct WaveformPair {
    /// Authentic ZigBee baseband waveform (4 MHz).
    pub original: Vec<Complex>,
    /// The attacker's emulated waveform after the ZigBee front-end (4 MHz).
    pub emulated: Vec<Complex>,
    /// Full emulation metadata.
    pub emulation: Emulation,
}

impl WaveformPair {
    /// Builds the pair for one payload with the default attacker.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Frame`] when the payload cannot be framed
    /// (e.g. it exceeds the maximum frame size).
    pub fn new(payload: &[u8]) -> Result<Self, Error> {
        Self::with_emulator(payload, &Emulator::new())
    }

    /// Builds the pair for one payload with a custom attacker.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Frame`] when the payload cannot be framed.
    pub fn with_emulator(payload: &[u8], emulator: &Emulator) -> Result<Self, Error> {
        let original = Transmitter::new().transmit_payload(payload)?;
        let emulation = emulator.emulate(&original);
        // Capture straight into the buffer that becomes `emulated` — the
        // front-end decimates from the emulation in place of the old
        // shift-copy + collect, so no intermediate full-waveform copy.
        let mut scratch = SampleBuf::detached(0);
        let mut captured = SampleBuf::detached(emulation.waveform_20mhz.len() / 5 + 1);
        emulator.received_at_zigbee_into(&emulation, &mut scratch, &mut captured);
        Ok(WaveformPair {
            original,
            emulated: captured.into_vec(),
            emulation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_zigbee::Receiver;

    #[test]
    fn pair_decodes_both_ways() {
        let pair = WaveformPair::new(b"00000").unwrap();
        let rx = Receiver::usrp();
        assert_eq!(rx.receive(&pair.original).payload(), Some(&b"00000"[..]));
        assert_eq!(rx.receive(&pair.emulated).payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn oversized_payload_is_an_error_not_a_panic() {
        let long = vec![0u8; 4096];
        assert!(matches!(WaveformPair::new(&long), Err(Error::Frame(_))));
    }
}
