//! The pluggable detection pipeline: named feature extraction fused by a
//! small pure-Rust classifier (extension beyond the paper's single DE²
//! threshold).
//!
//! The paper's defense (Sec. VI) thresholds one scalar. This module
//! generalizes it into `extractors -> FeatureVector -> classifier`:
//!
//! - [`FeatureExtractor`] implementations each contribute named entries to
//!   a [`FeatureVector`] — the cumulant/DE² statistics of
//!   [`features`](crate::defense::features), PSD shape and OFDM artifacts
//!   (`ctc_dsp::psd`), the cyclic-prefix and phase-trend statistics of
//!   [`naive`](crate::defense::naive), the clustered EVM of
//!   [`alternatives`](crate::defense::alternatives), and burst RSSI.
//! - [`Classifier`] fuses the vector into one score + decision. Three
//!   kinds: a single-feature [`Classifier::Threshold`] (the legacy
//!   detector as one pipeline configuration), calibrated logistic
//!   regression ([`train_logistic`]), and an AdaBoost-style decision-stump
//!   ensemble ([`train_stumps`]) — both trainable offline from labelled
//!   receptions and serializable to a versioned text model file (the
//!   workspace is dependency-free, so the format is hand-rolled).
//!
//! [`DetectionPipeline::legacy`] reproduces [`Detector`] verdicts
//! *bit-for-bit*: the DE² feature is computed by the same code path and
//! compared with the same threshold, so golden vectors and gateway
//! exit-code semantics are preserved while per-feature scores become
//! visible to JSONL events and Prometheus metrics.

use crate::defense::alternatives::clustered_evm;
use crate::defense::detector::{ChannelAssumption, DetectError, Detector, Verdict};
use crate::defense::features::Features;
use crate::defense::naive::{cp_similarity_4mhz, phase_trend_similarity};
use ctc_dsp::psd::{welch_psd, Window};
use ctc_dsp::Complex;
use ctc_zigbee::Reception;
use std::cell::OnceCell;
use std::sync::Arc;

/// Lazily shared per-burst inputs handed to every extractor.
///
/// The constellation and its cumulant [`Features`] are computed at most
/// once per burst no matter how many extractors read them — this is the
/// single constellation→`Features::estimate` path that
/// [`Detector::detect`] and [`Detector::detect_aggregated`] used to
/// duplicate inline.
#[derive(Debug)]
pub struct FeatureInput<'a> {
    reception: &'a Reception,
    samples: Option<&'a [Complex]>,
    constellation: OnceCell<Vec<Complex>>,
    features: OnceCell<Option<Features>>,
}

impl<'a> FeatureInput<'a> {
    /// Input from a reception alone (no raw burst waveform available, so
    /// waveform-level extractors fall back to neutral values).
    pub fn new(reception: &'a Reception) -> Self {
        FeatureInput {
            reception,
            samples: None,
            constellation: OnceCell::new(),
            features: OnceCell::new(),
        }
    }

    /// Input from a reception plus the raw burst waveform it was decoded
    /// from (the gateway's [`BurstCapture`](crate::defense::BurstCapture)
    /// samples) — enables the PSD and OFDM-artifact extractors.
    pub fn with_samples(reception: &'a Reception, samples: &'a [Complex]) -> Self {
        FeatureInput {
            reception,
            samples: Some(samples),
            constellation: OnceCell::new(),
            features: OnceCell::new(),
        }
    }

    /// The reception under test.
    pub fn reception(&self) -> &Reception {
        self.reception
    }

    /// The raw burst waveform, when the caller had one.
    pub fn samples(&self) -> Option<&[Complex]> {
        self.samples
    }

    /// The defense constellation (computed once, shared by extractors).
    pub fn constellation(&self) -> &[Complex] {
        self.constellation
            .get_or_init(|| crate::defense::features::constellation_from_reception(self.reception))
    }

    /// Cumulant features of the constellation (computed once); `None` when
    /// the reception carried no chip samples.
    pub fn features(&self) -> Option<&Features> {
        self.features
            .get_or_init(|| Features::estimate(self.constellation()).ok())
            .as_ref()
    }
}

/// An ordered set of named feature values. Order is the extractor order,
/// so a pipeline's vectors are positionally stable run to run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureVector {
    entries: Vec<(&'static str, f64)>,
}

impl FeatureVector {
    /// An empty vector.
    pub fn new() -> Self {
        FeatureVector::default()
    }

    /// Appends one named value.
    pub fn push(&mut self, name: &'static str, value: f64) {
        self.entries.push((name, value));
    }

    /// The value of `name`, when present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// All entries in extraction order.
    pub fn entries(&self) -> &[(&'static str, f64)] {
        &self.entries
    }

    /// The names, in extraction order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One pluggable feature source. Extractors must be deterministic and must
/// push a value for **every** name in [`feature_names`] on every call
/// (pushing a neutral `0.0` when a statistic is unavailable), so vectors
/// from different bursts always align positionally.
///
/// [`feature_names`]: FeatureExtractor::feature_names
pub trait FeatureExtractor: std::fmt::Debug + Send + Sync {
    /// Stable identifier of the extractor (used in docs and specs).
    fn name(&self) -> &'static str;

    /// The feature names this extractor pushes, in push order.
    fn feature_names(&self) -> &'static [&'static str];

    /// Pushes this extractor's features for one burst.
    fn extract(&self, input: &FeatureInput<'_>, out: &mut FeatureVector);
}

/// Cumulant and DE² features (the paper's statistics, Sec. VI-B/VI-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct CumulantExtractor;

/// Feature names pushed by [`CumulantExtractor`].
pub const CUMULANT_FEATURES: [&str; 7] = [
    "de2_ideal",
    "de2_real",
    "c40_re",
    "c40_im",
    "c40_mag",
    "c42",
    "line_freq",
];

impl FeatureExtractor for CumulantExtractor {
    fn name(&self) -> &'static str {
        "cumulants"
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &CUMULANT_FEATURES
    }

    fn extract(&self, input: &FeatureInput<'_>, out: &mut FeatureVector) {
        match input.features() {
            Some(f) => {
                out.push("de2_ideal", f.de_squared_ideal());
                out.push("de2_real", f.de_squared_real());
                out.push("c40_re", f.c40.re);
                out.push("c40_im", f.c40.im);
                out.push("c40_mag", f.c40_magnitude);
                out.push("c42", f.c42);
                out.push("line_freq", f.line_frequency);
            }
            None => {
                for name in CUMULANT_FEATURES {
                    out.push(name, 0.0);
                }
            }
        }
    }
}

/// PSD shape features over the raw burst waveform (Welch, 64-bin
/// segments): in-band fraction, out-of-band leakage, spectral flatness and
/// bin peak-to-average — the spectral-truncation artifacts an OFDM
/// emulation cannot fully hide.
#[derive(Debug, Clone, Copy)]
pub struct SpectralExtractor {
    segment_len: usize,
}

impl Default for SpectralExtractor {
    fn default() -> Self {
        SpectralExtractor { segment_len: 64 }
    }
}

/// Feature names pushed by [`SpectralExtractor`].
pub const SPECTRAL_FEATURES: [&str; 4] = ["psd_inband", "psd_oob", "psd_flatness", "psd_papr_db"];

impl FeatureExtractor for SpectralExtractor {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &SPECTRAL_FEATURES
    }

    fn extract(&self, input: &FeatureInput<'_>, out: &mut FeatureVector) {
        let psd = input
            .samples()
            .and_then(|s| welch_psd(s, self.segment_len, Window::Hann).ok());
        match psd {
            Some(psd) => {
                // At the 4 MHz capture rate the 2 MHz ZigBee band is
                // |f| <= 0.25; leakage past |f| = 0.375 is pure attacker
                // spectrum (filter skirts aside).
                out.push("psd_inband", psd.band_power_fraction(0.25));
                out.push("psd_oob", 1.0 - psd.band_power_fraction(0.375));
                let n = psd.power.len() as f64;
                let mean = psd.power.iter().sum::<f64>() / n;
                let log_mean = psd.power.iter().map(|p| p.max(1e-300).ln()).sum::<f64>() / n;
                let flatness = if mean > 0.0 {
                    log_mean.exp() / mean
                } else {
                    0.0
                };
                out.push("psd_flatness", flatness);
                let peak = psd.power.iter().copied().fold(0.0f64, f64::max);
                let papr_db = if mean > 0.0 && peak > 0.0 {
                    10.0 * (peak / mean).log10()
                } else {
                    0.0
                };
                out.push("psd_papr_db", papr_db);
            }
            None => {
                for name in SPECTRAL_FEATURES {
                    out.push(name, 0.0);
                }
            }
        }
    }
}

/// OFDM-artifact features from the rejected naive defenses: cyclic-prefix
/// self-similarity per 16-sample block and the phase-trend correlation of
/// the burst's two halves. Individually weak (the paper's point), but the
/// fused classifier can still use their residual signal.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfdmArtifactExtractor;

/// Feature names pushed by [`OfdmArtifactExtractor`].
pub const OFDM_FEATURES: [&str; 2] = ["cp_similarity", "phase_self_sim"];

impl FeatureExtractor for OfdmArtifactExtractor {
    fn name(&self) -> &'static str {
        "ofdm_artifacts"
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &OFDM_FEATURES
    }

    fn extract(&self, input: &FeatureInput<'_>, out: &mut FeatureVector) {
        let cp = input.samples().and_then(cp_similarity_4mhz).unwrap_or(0.0);
        out.push("cp_similarity", cp);
        let self_sim = input
            .samples()
            .map(|s| {
                let mid = s.len() / 2;
                phase_trend_similarity(&s[..mid], &s[mid..])
            })
            .unwrap_or(0.0);
        out.push("phase_self_sim", self_sim);
    }
}

/// Clustered-EVM feature (the alternative detector as one pipeline input).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvmExtractor;

/// Feature names pushed by [`EvmExtractor`].
pub const EVM_FEATURES: [&str; 1] = ["clustered_evm"];

impl FeatureExtractor for EvmExtractor {
    fn name(&self) -> &'static str {
        "evm"
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &EVM_FEATURES
    }

    fn extract(&self, input: &FeatureInput<'_>, out: &mut FeatureVector) {
        out.push(
            "clustered_evm",
            clustered_evm(input.constellation()).unwrap_or(0.0),
        );
    }
}

/// Burst power features: RSSI (mean power, dB) and waveform peak-to-average
/// power ratio. Computed over the raw waveform when available, else over
/// the constellation points.
#[derive(Debug, Clone, Copy, Default)]
pub struct RssiExtractor;

/// Feature names pushed by [`RssiExtractor`].
pub const RSSI_FEATURES: [&str; 2] = ["rssi_db", "papr_db"];

impl FeatureExtractor for RssiExtractor {
    fn name(&self) -> &'static str {
        "rssi"
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &RSSI_FEATURES
    }

    fn extract(&self, input: &FeatureInput<'_>, out: &mut FeatureVector) {
        let points: &[Complex] = match input.samples() {
            Some(s) if !s.is_empty() => s,
            _ => input.constellation(),
        };
        if points.is_empty() {
            out.push("rssi_db", 0.0);
            out.push("papr_db", 0.0);
            return;
        }
        let mean = points.iter().map(|p| p.norm_sqr()).sum::<f64>() / points.len() as f64;
        let peak = points.iter().map(|p| p.norm_sqr()).fold(0.0f64, f64::max);
        out.push("rssi_db", 10.0 * mean.max(1e-300).log10());
        let papr_db = if mean > 0.0 {
            10.0 * (peak / mean).max(1e-300).log10()
        } else {
            0.0
        };
        out.push("papr_db", papr_db);
    }
}

/// The standard extractor set, in canonical order (cumulants, PSD shape,
/// OFDM artifacts, clustered EVM, RSSI).
pub fn standard_extractors() -> Vec<Box<dyn FeatureExtractor>> {
    vec![
        Box::new(CumulantExtractor),
        Box::new(SpectralExtractor::default()),
        Box::new(OfdmArtifactExtractor),
        Box::new(EvmExtractor),
        Box::new(RssiExtractor),
    ]
}

/// A fitted logistic-regression model over standardized features.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Feature names, aligned with the weight vector.
    pub names: Vec<String>,
    /// Per-feature training means (standardization).
    pub means: Vec<f64>,
    /// Per-feature training standard deviations (standardization).
    pub stds: Vec<f64>,
    /// Weights over standardized features.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LogisticModel {
    /// Attack probability for one feature vector (missing features read as
    /// the training mean, i.e. a zero z-score).
    pub fn probability(&self, fv: &FeatureVector) -> f64 {
        let mut z = self.bias;
        for (i, name) in self.names.iter().enumerate() {
            let v = fv.get(name).unwrap_or(self.means[i]);
            let s = if self.stds[i] > 0.0 {
                self.stds[i]
            } else {
                1.0
            };
            z += self.weights[i] * (v - self.means[i]) / s;
        }
        sigmoid(z)
    }
}

/// One decision stump of an AdaBoost ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Stump {
    /// The feature this stump splits on.
    pub feature: String,
    /// Split threshold.
    pub threshold: f64,
    /// `true`: vote attack when `value > threshold`; `false`: when `<=`.
    pub greater_is_attack: bool,
    /// The stump's vote weight.
    pub alpha: f64,
}

impl Stump {
    /// This stump's vote in `{-1, +1}` (+1 = attack).
    fn vote(&self, fv: &FeatureVector) -> f64 {
        let v = fv.get(&self.feature).unwrap_or(0.0);
        let attack = (v > self.threshold) == self.greater_is_attack;
        if attack {
            1.0
        } else {
            -1.0
        }
    }
}

/// A weighted decision-stump ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct StumpEnsemble {
    /// The stumps, in boosting order.
    pub stumps: Vec<Stump>,
}

impl StumpEnsemble {
    /// Ensemble score in `[0, 1]` (weighted attack-vote fraction).
    pub fn score(&self, fv: &FeatureVector) -> f64 {
        let total: f64 = self.stumps.iter().map(|s| s.alpha).sum();
        if total <= 0.0 {
            return 0.5;
        }
        let vote: f64 = self.stumps.iter().map(|s| s.alpha * s.vote(fv)).sum();
        (vote / total + 1.0) / 2.0
    }
}

/// The fusion layer: turns one [`FeatureVector`] into a score + decision.
///
/// Score conventions: `Threshold` scores are the raw feature value
/// (decided against the configured threshold, exactly the legacy
/// detector); `Logistic` and `Stumps` scores live in `[0, 1]` and decide
/// at `0.5`.
#[derive(Debug, Clone, PartialEq)]
pub enum Classifier {
    /// Single feature vs fixed threshold — the legacy detector as one
    /// pipeline configuration.
    Threshold {
        /// The feature to threshold (e.g. `de2_ideal`).
        feature: String,
        /// Decide attack when the feature exceeds this.
        threshold: f64,
    },
    /// Calibrated logistic regression (see [`train_logistic`]).
    Logistic(LogisticModel),
    /// AdaBoost decision-stump ensemble (see [`train_stumps`]).
    Stumps(StumpEnsemble),
}

impl Classifier {
    /// Fused score and decision for one feature vector.
    pub fn decide(&self, fv: &FeatureVector) -> (f64, bool) {
        match self {
            Classifier::Threshold { feature, threshold } => {
                let score = fv.get(feature).unwrap_or(0.0);
                (score, score > *threshold)
            }
            Classifier::Logistic(m) => {
                let p = m.probability(fv);
                (p, p > 0.5)
            }
            Classifier::Stumps(e) => {
                let s = e.score(fv);
                (s, s > 0.5)
            }
        }
    }

    /// Short kind tag (used by the model file and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Classifier::Threshold { .. } => "threshold",
            Classifier::Logistic(_) => "logistic",
            Classifier::Stumps(_) => "stumps",
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// One labelled training example.
#[derive(Debug, Clone)]
pub struct LabelledSample {
    /// Extracted features.
    pub features: FeatureVector,
    /// `true` = WiFi attacker (H1).
    pub is_attack: bool,
}

/// Errors from classifier training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training samples supplied.
    Empty,
    /// All samples carry the same label.
    SingleClass,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Empty => write!(f, "no training samples"),
            TrainError::SingleClass => write!(f, "training set contains a single class"),
        }
    }
}

impl std::error::Error for TrainError {}

fn check_classes(samples: &[LabelledSample]) -> Result<(), TrainError> {
    if samples.is_empty() {
        return Err(TrainError::Empty);
    }
    let attacks = samples.iter().filter(|s| s.is_attack).count();
    if attacks == 0 || attacks == samples.len() {
        return Err(TrainError::SingleClass);
    }
    Ok(())
}

/// Trains a calibrated logistic regression by full-batch gradient descent
/// over standardized features. Deterministic: fixed iteration count, no
/// randomness.
///
/// # Errors
///
/// [`TrainError::Empty`] / [`TrainError::SingleClass`] on degenerate sets.
pub fn train_logistic(samples: &[LabelledSample]) -> Result<Classifier, TrainError> {
    check_classes(samples)?;
    let names: Vec<String> = samples[0]
        .features
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    let k = names.len();
    let n = samples.len() as f64;
    let mut means = vec![0.0f64; k];
    let mut stds = vec![0.0f64; k];
    let value = |s: &LabelledSample, i: usize| s.features.get(&names[i]).unwrap_or(0.0);
    for (i, mean) in means.iter_mut().enumerate() {
        *mean = samples.iter().map(|s| value(s, i)).sum::<f64>() / n;
    }
    for (i, std) in stds.iter_mut().enumerate() {
        let var = samples
            .iter()
            .map(|s| (value(s, i) - means[i]).powi(2))
            .sum::<f64>()
            / n;
        *std = var.sqrt();
    }
    // Standardized design matrix (constant features become all-zero
    // columns, so their weights stay at zero).
    let rows: Vec<(Vec<f64>, f64)> = samples
        .iter()
        .map(|s| {
            let z: Vec<f64> = (0..k)
                .map(|i| {
                    let sd = if stds[i] > 0.0 { stds[i] } else { 1.0 };
                    (value(s, i) - means[i]) / sd
                })
                .collect();
            (z, if s.is_attack { 1.0 } else { 0.0 })
        })
        .collect();
    let mut weights = vec![0.0f64; k];
    let mut bias = 0.0f64;
    const EPOCHS: usize = 400;
    const LR: f64 = 0.5;
    const L2: f64 = 1e-3;
    for _ in 0..EPOCHS {
        let mut grad_w = vec![0.0f64; k];
        let mut grad_b = 0.0f64;
        for (z, y) in &rows {
            let mut logit = bias;
            for i in 0..k {
                logit += weights[i] * z[i];
            }
            let err = sigmoid(logit) - y;
            for i in 0..k {
                grad_w[i] += err * z[i];
            }
            grad_b += err;
        }
        for i in 0..k {
            weights[i] -= LR * (grad_w[i] / n + L2 * weights[i]);
        }
        bias -= LR * grad_b / n;
    }
    Ok(Classifier::Logistic(LogisticModel {
        names,
        means,
        stds,
        weights,
        bias,
    }))
}

/// Trains an AdaBoost decision-stump ensemble (`rounds` stumps, candidate
/// thresholds at the midpoints of sorted feature values). Deterministic.
///
/// # Errors
///
/// [`TrainError::Empty`] / [`TrainError::SingleClass`] on degenerate sets.
pub fn train_stumps(samples: &[LabelledSample], rounds: usize) -> Result<Classifier, TrainError> {
    check_classes(samples)?;
    let names: Vec<String> = samples[0]
        .features
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    let n = samples.len();
    let value = |s: &LabelledSample, name: &str| s.features.get(name).unwrap_or(0.0);
    // y in {-1, +1}, +1 = attack.
    let y: Vec<f64> = samples
        .iter()
        .map(|s| if s.is_attack { 1.0 } else { -1.0 })
        .collect();
    let mut w = vec![1.0 / n as f64; n];
    let mut stumps = Vec::with_capacity(rounds);
    for _ in 0..rounds.max(1) {
        let mut best: Option<(Stump, f64)> = None;
        for name in &names {
            let mut vals: Vec<f64> = samples.iter().map(|s| value(s, name)).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            let mut candidates: Vec<f64> = vals.windows(2).map(|p| (p[0] + p[1]) / 2.0).collect();
            if candidates.is_empty() {
                candidates.push(vals.first().copied().unwrap_or(0.0));
            }
            for &thr in &candidates {
                for greater in [true, false] {
                    let err: f64 = samples
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            let attack = (value(s, name) > thr) == greater;
                            let h = if attack { 1.0 } else { -1.0 };
                            if h != y[i] {
                                w[i]
                            } else {
                                0.0
                            }
                        })
                        .sum();
                    if best.as_ref().map(|(_, e)| err < *e).unwrap_or(true) {
                        best = Some((
                            Stump {
                                feature: name.clone(),
                                threshold: thr,
                                greater_is_attack: greater,
                                alpha: 0.0,
                            },
                            err,
                        ));
                    }
                }
            }
        }
        let (mut stump, err) = best.expect("at least one candidate stump");
        let err = err.clamp(1e-9, 1.0 - 1e-9);
        stump.alpha = 0.5 * ((1.0 - err) / err).ln();
        // Re-weight: mistakes gain weight, hits lose it.
        let mut total = 0.0;
        for (i, s) in samples.iter().enumerate() {
            let attack = (value(s, &stump.feature) > stump.threshold) == stump.greater_is_attack;
            let h = if attack { 1.0 } else { -1.0 };
            w[i] *= (-stump.alpha * y[i] * h).exp();
            total += w[i];
        }
        for wi in &mut w {
            *wi /= total;
        }
        let done = err < 1e-8;
        stumps.push(stump);
        if done {
            break;
        }
    }
    Ok(Classifier::Stumps(StumpEnsemble { stumps }))
}

/// Per-feature scores attached to a pipeline verdict (what the gateway
/// surfaces in JSONL events and `ctc_detector_score{feature=...}`).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineScores {
    /// The fused classifier score (see [`Classifier`] conventions).
    pub fused: f64,
    /// The full named feature vector.
    pub features: FeatureVector,
}

/// Outcome of one pipeline detection: the legacy-shaped [`Verdict`]
/// (`de_squared` is the configured assumption's DE², `is_attack` is the
/// classifier decision) plus the per-feature scores behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineVerdict {
    /// Legacy-compatible verdict (what streaming events carry).
    pub verdict: Verdict,
    /// The fused score and named per-feature values.
    pub scores: PipelineScores,
}

/// A configured detection pipeline: extractors + classifier + the channel
/// assumption used for the verdict's DE² field.
#[derive(Debug)]
pub struct DetectionPipeline {
    extractors: Vec<Box<dyn FeatureExtractor>>,
    classifier: Classifier,
    assumption: ChannelAssumption,
}

impl DetectionPipeline {
    /// The legacy detector as a pipeline: cumulant features only, single
    /// DE² feature thresholded at the detector's `Q`. Verdicts are
    /// bit-for-bit identical to [`Detector::detect`].
    pub fn legacy(detector: Detector) -> Self {
        DetectionPipeline {
            extractors: vec![Box::new(CumulantExtractor)],
            classifier: Classifier::Threshold {
                feature: de2_feature(detector.assumption()).to_string(),
                threshold: detector.threshold(),
            },
            assumption: detector.assumption(),
        }
    }

    /// The standard extractor set with the legacy threshold decision:
    /// identical verdicts to [`Detector::detect`], but every feature's
    /// score becomes visible downstream.
    pub fn standard(detector: Detector) -> Self {
        DetectionPipeline {
            extractors: standard_extractors(),
            classifier: Classifier::Threshold {
                feature: de2_feature(detector.assumption()).to_string(),
                threshold: detector.threshold(),
            },
            assumption: detector.assumption(),
        }
    }

    /// A pipeline with an explicit extractor set and classifier.
    pub fn with_parts(
        extractors: Vec<Box<dyn FeatureExtractor>>,
        classifier: Classifier,
        assumption: ChannelAssumption,
    ) -> Self {
        DetectionPipeline {
            extractors,
            classifier,
            assumption,
        }
    }

    /// Replaces the classifier, keeping extractors and assumption.
    pub fn with_classifier(mut self, classifier: Classifier) -> Self {
        self.classifier = classifier;
        self
    }

    /// The fusion classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// The channel assumption backing the verdict's DE² field.
    pub fn assumption(&self) -> ChannelAssumption {
        self.assumption
    }

    /// All feature names the pipeline produces, in extraction order.
    pub fn feature_names(&self) -> Vec<&'static str> {
        self.extractors
            .iter()
            .flat_map(|e| e.feature_names().iter().copied())
            .collect()
    }

    /// Extracts the full feature vector for one burst.
    ///
    /// # Errors
    ///
    /// [`DetectError::NoSamples`] when the reception carries no chip
    /// samples (matching the legacy detector's contract).
    pub fn extract(&self, input: &FeatureInput<'_>) -> Result<FeatureVector, DetectError> {
        if input.features().is_none() {
            return Err(DetectError::NoSamples);
        }
        let mut fv = FeatureVector::new();
        for e in &self.extractors {
            e.extract(input, &mut fv);
        }
        Ok(fv)
    }

    /// Runs extraction + fusion for one burst.
    ///
    /// # Errors
    ///
    /// [`DetectError::NoSamples`] when the reception carries no chip
    /// samples.
    pub fn score(&self, input: &FeatureInput<'_>) -> Result<PipelineVerdict, DetectError> {
        let features = *input.features().ok_or(DetectError::NoSamples)?;
        let fv = self.extract(input)?;
        let (fused, is_attack) = self.classifier.decide(&fv);
        Ok(PipelineVerdict {
            verdict: Verdict {
                de_squared: self.assumption.de_squared(&features),
                is_attack,
                features,
            },
            scores: PipelineScores {
                fused,
                features: fv,
            },
        })
    }

    /// Convenience: score a reception without a raw waveform.
    ///
    /// # Errors
    ///
    /// [`DetectError::NoSamples`] when the reception carries no chip
    /// samples.
    pub fn detect(&self, reception: &Reception) -> Result<PipelineVerdict, DetectError> {
        self.score(&FeatureInput::new(reception))
    }

    /// Shared handle for multi-threaded consumers (gateway workers).
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

/// The DE² feature name for a channel assumption.
pub fn de2_feature(assumption: ChannelAssumption) -> &'static str {
    match assumption {
        ChannelAssumption::Ideal => "de2_ideal",
        ChannelAssumption::Real => "de2_real",
    }
}

// ---------------------------------------------------------------------------
// Versioned model file (hand-rolled text format; no serde in the workspace).
// ---------------------------------------------------------------------------

/// Magic first line of a serialized model.
pub const MODEL_MAGIC: &str = "ctc-detector-model v1";

/// A model-file parse failure: 1-based line plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParseError {
    /// 1-based line number of the first problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ModelParseError {}

impl DetectionPipeline {
    /// Serializes the classifier + assumption to the versioned text model
    /// format. Floats use Rust's shortest round-trip rendering, so
    /// parse(render(m)) reproduces the model exactly.
    pub fn to_model_string(&self) -> String {
        let mut out = String::new();
        out.push_str(MODEL_MAGIC);
        out.push('\n');
        out.push_str(&format!("kind {}\n", self.classifier.kind()));
        let assumption = match self.assumption {
            ChannelAssumption::Ideal => "ideal",
            ChannelAssumption::Real => "real",
        };
        out.push_str(&format!("assumption {assumption}\n"));
        match &self.classifier {
            Classifier::Threshold { feature, threshold } => {
                out.push_str(&format!("feature {feature}\n"));
                out.push_str(&format!("threshold {threshold}\n"));
            }
            Classifier::Logistic(m) => {
                out.push_str(&format!("features {}\n", m.names.join(" ")));
                out.push_str(&format!("means {}\n", join_floats(&m.means)));
                out.push_str(&format!("stds {}\n", join_floats(&m.stds)));
                out.push_str(&format!("weights {}\n", join_floats(&m.weights)));
                out.push_str(&format!("bias {}\n", m.bias));
            }
            Classifier::Stumps(e) => {
                for s in &e.stumps {
                    let dir = if s.greater_is_attack { ">" } else { "<=" };
                    out.push_str(&format!(
                        "stump {} {} {} {}\n",
                        s.feature, s.threshold, dir, s.alpha
                    ));
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a model file back into a pipeline over the standard
    /// extractor set.
    ///
    /// # Errors
    ///
    /// [`ModelParseError`] on version/field problems.
    pub fn from_model_str(text: &str) -> Result<Self, ModelParseError> {
        let err = |line: usize, message: &str| ModelParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or_else(|| err(1, "empty model file"))?;
        if magic.trim() != MODEL_MAGIC {
            return Err(err(1, &format!("expected {MODEL_MAGIC:?}")));
        }
        let mut kind: Option<String> = None;
        let mut assumption = ChannelAssumption::Ideal;
        let mut feature: Option<String> = None;
        let mut threshold: Option<f64> = None;
        let mut names: Vec<String> = Vec::new();
        let mut means: Vec<f64> = Vec::new();
        let mut stds: Vec<f64> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut bias: Option<f64> = None;
        let mut stumps: Vec<Stump> = Vec::new();
        let mut ended = false;
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().expect("non-empty line has a token");
            let rest: Vec<&str> = parts.collect();
            match key {
                "kind" => kind = Some(rest.join(" ")),
                "assumption" => {
                    assumption = match rest.first().copied() {
                        Some("ideal") => ChannelAssumption::Ideal,
                        Some("real") => ChannelAssumption::Real,
                        _ => return Err(err(lineno, "assumption must be ideal|real")),
                    }
                }
                "feature" => feature = rest.first().map(|s| s.to_string()),
                "threshold" => {
                    threshold = Some(parse_float(rest.first().copied(), lineno)?);
                }
                "features" => names = rest.iter().map(|s| s.to_string()).collect(),
                "means" => means = parse_floats(&rest, lineno)?,
                "stds" => stds = parse_floats(&rest, lineno)?,
                "weights" => weights = parse_floats(&rest, lineno)?,
                "bias" => bias = Some(parse_float(rest.first().copied(), lineno)?),
                "stump" => {
                    if rest.len() != 4 {
                        return Err(err(lineno, "stump needs: feature threshold dir alpha"));
                    }
                    let greater_is_attack = match rest[2] {
                        ">" => true,
                        "<=" => false,
                        _ => return Err(err(lineno, "stump direction must be > or <=")),
                    };
                    stumps.push(Stump {
                        feature: rest[0].to_string(),
                        threshold: parse_float(Some(rest[1]), lineno)?,
                        greater_is_attack,
                        alpha: parse_float(Some(rest[3]), lineno)?,
                    });
                }
                "end" => {
                    ended = true;
                    break;
                }
                other => return Err(err(lineno, &format!("unknown key {other:?}"))),
            }
        }
        if !ended {
            return Err(err(text.lines().count(), "missing end marker"));
        }
        let classifier = match kind.as_deref() {
            Some("threshold") => Classifier::Threshold {
                feature: feature.ok_or_else(|| err(2, "threshold model needs a feature"))?,
                threshold: threshold.ok_or_else(|| err(2, "threshold model needs a threshold"))?,
            },
            Some("logistic") => {
                let k = names.len();
                if k == 0 || means.len() != k || stds.len() != k || weights.len() != k {
                    return Err(err(2, "logistic model vectors must align with features"));
                }
                Classifier::Logistic(LogisticModel {
                    names,
                    means,
                    stds,
                    weights,
                    bias: bias.ok_or_else(|| err(2, "logistic model needs a bias"))?,
                })
            }
            Some("stumps") => {
                if stumps.is_empty() {
                    return Err(err(2, "stumps model needs at least one stump"));
                }
                Classifier::Stumps(StumpEnsemble { stumps })
            }
            _ => return Err(err(2, "kind must be threshold|logistic|stumps")),
        };
        Ok(DetectionPipeline {
            extractors: standard_extractors(),
            classifier,
            assumption,
        })
    }
}

fn join_floats(v: &[f64]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_float(s: Option<&str>, line: usize) -> Result<f64, ModelParseError> {
    s.and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| ModelParseError {
            line,
            message: "expected a float".to_string(),
        })
}

fn parse_floats(parts: &[&str], line: usize) -> Result<Vec<f64>, ModelParseError> {
    parts.iter().map(|s| parse_float(Some(s), line)).collect()
}

// ---------------------------------------------------------------------------
// ROC mathematics (shared by ctc-bench, the CLI evaluator and roc_smoke).
// ---------------------------------------------------------------------------

/// One ROC operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// The decision threshold producing this point.
    pub threshold: f64,
    /// False-positive rate (authentic flagged as attack).
    pub fpr: f64,
    /// True-positive rate (attacks caught).
    pub tpr: f64,
}

/// A ROC curve with its trapezoid AUC.
#[derive(Debug, Clone, PartialEq)]
pub struct Roc {
    /// Operating points, one per distinct score threshold (ascending).
    pub points: Vec<RocPoint>,
    /// Area under the curve (1.0 = perfect separation, 0.5 = chance).
    pub auc: f64,
}

impl Roc {
    /// Builds the curve from per-class scores (higher = more attack-like),
    /// sweeping every distinct score as a `score > q` threshold.
    pub fn from_scores(authentic: &[f64], attack: &[f64]) -> Self {
        if authentic.is_empty() || attack.is_empty() {
            return Roc {
                points: Vec::new(),
                auc: 0.5,
            };
        }
        let mut thresholds: Vec<f64> = authentic.iter().chain(attack).copied().collect();
        thresholds.sort_by(f64::total_cmp);
        thresholds.dedup();
        let mut points = Vec::with_capacity(thresholds.len());
        let mut auc = 0.0;
        let mut prev = (1.0, 1.0); // (fpr, tpr) at threshold -inf
        for &q in &thresholds {
            let fpr = authentic.iter().filter(|&&v| v > q).count() as f64 / authentic.len() as f64;
            let tpr = attack.iter().filter(|&&v| v > q).count() as f64 / attack.len() as f64;
            auc += (prev.0 - fpr) * (tpr + prev.1) / 2.0;
            prev = (fpr, tpr);
            points.push(RocPoint {
                threshold: q,
                fpr,
                tpr,
            });
        }
        auc += prev.0 * prev.1 / 2.0;
        Roc { points, auc }
    }

    /// Equal-error rate: the error level where FPR meets the miss rate
    /// (1 − TPR), taken at the operating point minimizing their gap.
    pub fn eer(&self) -> f64 {
        self.points
            .iter()
            .map(|p| ((p.fpr - (1.0 - p.tpr)).abs(), (p.fpr + 1.0 - p.tpr) / 2.0))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, eer)| eer)
            .unwrap_or(0.5)
    }

    /// Best TPR achievable at or below an FPR budget (e.g. `0.01`).
    pub fn tpr_at_fpr(&self, max_fpr: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.fpr <= max_fpr)
            .map(|p| p.tpr)
            .fold(0.0, f64::max)
    }

    /// The AUC of the better-oriented score direction (a feature that runs
    /// opposite to "higher = attack" still separates; report that power).
    pub fn oriented_auc(&self) -> f64 {
        self.auc.max(1.0 - self.auc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use ctc_channel::Link;
    use ctc_zigbee::{Receiver, Transmitter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn zigbee_wave() -> Vec<Complex> {
        Transmitter::new().transmit_payload(b"00000").unwrap()
    }

    fn emulated_wave() -> Vec<Complex> {
        let emu = Emulator::new();
        emu.received_at_zigbee(&emu.emulate(&zigbee_wave()))
    }

    fn noisy(wave: &[Complex], snr_db: f64, seed: u64) -> Vec<Complex> {
        let mut rng = StdRng::seed_from_u64(seed);
        Link::awgn(snr_db).transmit(wave, &mut rng)
    }

    fn labelled(n_per_class: usize, snr_db: f64, seed: u64) -> Vec<LabelledSample> {
        let pipeline = DetectionPipeline::standard(Detector::default());
        let zig = zigbee_wave();
        let emu = emulated_wave();
        let rx = Receiver::usrp();
        let mut out = Vec::new();
        for i in 0..n_per_class {
            for (wave, is_attack) in [(&zig, false), (&emu, true)] {
                let w = noisy(wave, snr_db, seed + i as u64 * 2 + u64::from(is_attack));
                let r = rx.receive(&w);
                let input = FeatureInput::with_samples(&r, &w);
                out.push(LabelledSample {
                    features: pipeline.extract(&input).unwrap(),
                    is_attack,
                });
            }
        }
        out
    }

    #[test]
    fn legacy_pipeline_matches_detector_bitwise() {
        let zig = zigbee_wave();
        let emu = emulated_wave();
        let rx = Receiver::usrp();
        for assumption in [ChannelAssumption::Ideal, ChannelAssumption::Real] {
            let det = Detector::new(assumption).with_threshold(0.25);
            let pipeline = DetectionPipeline::legacy(det);
            for (wave, seed) in [(&zig, 10u64), (&emu, 20)] {
                let r = rx.receive(&noisy(wave, 15.0, seed));
                let legacy = det.detect(&r).unwrap();
                let pv = pipeline.detect(&r).unwrap();
                assert_eq!(pv.verdict, legacy, "verdicts must be bit-identical");
                assert_eq!(pv.scores.fused.to_bits(), legacy.de_squared.to_bits());
            }
        }
    }

    #[test]
    fn standard_pipeline_keeps_legacy_decisions() {
        let det = Detector::default().with_threshold(0.25);
        let pipeline = DetectionPipeline::standard(det);
        let r = Receiver::usrp().receive(&noisy(&emulated_wave(), 15.0, 3));
        let legacy = det.detect(&r).unwrap();
        let pv = pipeline.detect(&r).unwrap();
        assert_eq!(pv.verdict, legacy);
        assert_eq!(pv.scores.features.len(), pipeline.feature_names().len());
    }

    #[test]
    fn feature_vector_is_complete_and_finite() {
        let pipeline = DetectionPipeline::standard(Detector::default());
        let w = noisy(&zigbee_wave(), 12.0, 7);
        let r = Receiver::usrp().receive(&w);
        let fv = pipeline
            .extract(&FeatureInput::with_samples(&r, &w))
            .unwrap();
        let names = pipeline.feature_names();
        assert_eq!(fv.names(), names);
        for (name, value) in fv.entries() {
            assert!(value.is_finite(), "{name} = {value}");
        }
        // Waveform-level features are really populated on this path.
        assert!(fv.get("psd_inband").unwrap() > 0.5);
        assert!(fv.get("rssi_db").unwrap().is_finite());
    }

    #[test]
    fn without_samples_waveform_features_are_neutral() {
        let pipeline = DetectionPipeline::standard(Detector::default());
        let r = Receiver::usrp().receive(&noisy(&zigbee_wave(), 12.0, 8));
        let fv = pipeline.extract(&FeatureInput::new(&r)).unwrap();
        assert_eq!(fv.get("psd_inband"), Some(0.0));
        assert_eq!(fv.get("cp_similarity"), Some(0.0));
        // Constellation-level features still work.
        assert!(fv.get("de2_ideal").unwrap() > 0.0);
        assert!(fv.get("clustered_evm").unwrap() > 0.0);
    }

    #[test]
    fn empty_reception_errors_like_legacy() {
        let pipeline = DetectionPipeline::legacy(Detector::default());
        let r = Receiver::usrp().receive(&[]);
        assert_eq!(pipeline.detect(&r).unwrap_err(), DetectError::NoSamples);
    }

    #[test]
    fn logistic_training_separates_classes() {
        let train = labelled(8, 12.0, 1000);
        let test = labelled(4, 12.0, 9000);
        let clf = train_logistic(&train).unwrap();
        let correct = test
            .iter()
            .filter(|s| clf.decide(&s.features).1 == s.is_attack)
            .count();
        assert!(
            correct >= test.len() - 1,
            "logistic got {correct}/{} right",
            test.len()
        );
    }

    #[test]
    fn stump_training_separates_classes() {
        let train = labelled(8, 12.0, 2000);
        let test = labelled(4, 12.0, 9500);
        let clf = train_stumps(&train, 8).unwrap();
        let correct = test
            .iter()
            .filter(|s| clf.decide(&s.features).1 == s.is_attack)
            .count();
        assert!(
            correct >= test.len() - 1,
            "stumps got {correct}/{} right",
            test.len()
        );
    }

    #[test]
    fn training_rejects_degenerate_sets() {
        assert_eq!(train_logistic(&[]), Err(TrainError::Empty));
        let one_class = vec![LabelledSample {
            features: FeatureVector::new(),
            is_attack: true,
        }];
        assert_eq!(train_logistic(&one_class), Err(TrainError::SingleClass));
        assert_eq!(train_stumps(&one_class, 4), Err(TrainError::SingleClass));
    }

    #[test]
    fn model_files_round_trip() {
        let det = Detector::default().with_threshold(0.25);
        let train = labelled(6, 12.0, 3000);
        for classifier in [
            Classifier::Threshold {
                feature: "de2_ideal".to_string(),
                threshold: 0.25,
            },
            train_logistic(&train).unwrap(),
            train_stumps(&train, 5).unwrap(),
        ] {
            let pipeline = DetectionPipeline::standard(det).with_classifier(classifier.clone());
            let text = pipeline.to_model_string();
            let parsed = DetectionPipeline::from_model_str(&text).unwrap();
            assert_eq!(
                parsed.classifier(),
                &classifier,
                "kind {}",
                classifier.kind()
            );
            assert_eq!(parsed.assumption(), det.assumption());
            // Scores agree exactly after the round trip.
            let sample = &train[0];
            assert_eq!(
                classifier.decide(&sample.features),
                parsed.classifier().decide(&sample.features)
            );
        }
    }

    #[test]
    fn model_parse_rejects_garbage() {
        assert!(DetectionPipeline::from_model_str("").is_err());
        assert!(DetectionPipeline::from_model_str("wrong magic\nend\n").is_err());
        let no_end = format!("{MODEL_MAGIC}\nkind threshold\nfeature de2_ideal\nthreshold 0.5\n");
        assert!(DetectionPipeline::from_model_str(&no_end).is_err());
        let bad_kind = format!("{MODEL_MAGIC}\nkind forest\nend\n");
        assert!(DetectionPipeline::from_model_str(&bad_kind).is_err());
        let misaligned =
            format!("{MODEL_MAGIC}\nkind logistic\nfeatures a b\nmeans 1\nstds 1 1\nweights 1 1\nbias 0\nend\n");
        assert!(DetectionPipeline::from_model_str(&misaligned).is_err());
    }

    #[test]
    fn roc_math_on_separable_scores() {
        let roc = Roc::from_scores(&[0.1, 0.2, 0.15], &[0.8, 0.9, 0.85]);
        assert!((roc.auc - 1.0).abs() < 1e-12);
        assert!(roc.eer() < 1e-12);
        assert!((roc.tpr_at_fpr(0.01) - 1.0).abs() < 1e-12);
        let inverted = Roc::from_scores(&[0.8, 0.9], &[0.1, 0.2]);
        assert!(inverted.auc < 0.1);
        assert!((inverted.oriented_auc() - inverted.auc.max(1.0 - inverted.auc)).abs() < 1e-12);
        let empty = Roc::from_scores(&[], &[1.0]);
        assert_eq!(empty.auc, 0.5);
    }

    #[test]
    fn roc_matches_hand_computed_overlap() {
        // authentic {1,3}, attack {2,4}: AUC = 3/4 by pair counting.
        let roc = Roc::from_scores(&[1.0, 3.0], &[2.0, 4.0]);
        assert!((roc.auc - 0.75).abs() < 1e-12, "auc {}", roc.auc);
    }

    #[test]
    fn feature_input_caches_constellation() {
        let w = noisy(&zigbee_wave(), 15.0, 42);
        let r = Receiver::usrp().receive(&w);
        let input = FeatureInput::with_samples(&r, &w);
        let a = input.constellation().as_ptr();
        let b = input.constellation().as_ptr();
        assert_eq!(a, b, "constellation computed once");
        assert!(input.features().is_some());
    }
}
