//! The constellation higher-order-statistics defense (paper Sec. VI).

pub mod alternatives;
pub mod detector;
pub mod features;
pub mod naive;
pub mod stream;

pub use alternatives::{clustered_evm, EvmDetector, EvmVerdict};
pub use detector::{ChannelAssumption, DetectError, Detector, Verdict};
pub use features::{constellation_from_reception, features_from_reception, Features};
pub use stream::{
    BurstCapture, BurstSplitter, FrameProcessor, MonitorFactory, StreamEvent, StreamMonitor,
};
