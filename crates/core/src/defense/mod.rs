//! The constellation higher-order-statistics defense (paper Sec. VI).

pub mod alternatives;
pub mod detector;
pub mod features;
pub mod naive;
pub mod pipeline;
pub mod stream;

pub use alternatives::{clustered_evm, EvmDetector, EvmVerdict};
pub use detector::{ChannelAssumption, DetectError, Detector, Verdict};
pub use features::{constellation_from_reception, features_from_reception, Features};
pub use pipeline::{
    standard_extractors, train_logistic, train_stumps, Classifier, DetectionPipeline,
    FeatureExtractor, FeatureInput, FeatureVector, LabelledSample, PipelineScores, PipelineVerdict,
    Roc,
};
pub use stream::{
    BurstCapture, BurstSplitter, FrameProcessor, MonitorFactory, StreamEvent, StreamMonitor,
};
