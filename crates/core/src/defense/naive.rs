//! The rejected defensive strategies (paper Sec. VI-A1, Figs. 8–9).
//!
//! Before settling on constellation statistics the paper walks through three
//! candidate defenses and shows each fails. They are implemented here so the
//! evaluation can reproduce that negative result quantitatively:
//!
//! 1. **Cyclic-prefix repetition** — each emulated 4 µs block starts with a
//!    copy of its tail, an authentic ZigBee waveform does not; but at the
//!    ZigBee receiver's 4 MHz rate the CP spans only ~3 samples and noise
//!    buries the margin.
//! 2. **O-QPSK demodulation output (phase trend)** — the instantaneous
//!    frequency trend is the same for both waveforms.
//! 3. **Chip sequences after hard decision** — the sequences differ, but
//!    DSSS tolerance decodes both to the same symbols.

use ctc_dsp::metrics::correlation;
use ctc_dsp::Complex;
use ctc_zigbee::modem::instantaneous_phase;

/// Samples per emulated WiFi-symbol block at the ZigBee rate
/// (4 µs × 4 MHz).
pub const BLOCK_LEN_4MHZ: usize = 16;

/// Cyclic-prefix samples per block at the ZigBee rate (0.8 µs × 4 MHz,
/// rounded down).
pub const CP_LEN_4MHZ: usize = 3;

/// Mean CP self-similarity across all complete 16-sample blocks of a 4 MHz
/// waveform: correlation between each block's first [`CP_LEN_4MHZ`] samples
/// and the corresponding tail samples.
///
/// A noiseless emulated waveform scores high; an authentic ZigBee waveform
/// scores whatever its chip pattern happens to produce. The experiment
/// harness shows the distributions collapse together under channel noise —
/// the reason the paper rejects this strategy.
///
/// Returns `None` when the waveform holds no complete block.
pub fn cp_similarity_4mhz(wave: &[Complex]) -> Option<f64> {
    let blocks = wave.len() / BLOCK_LEN_4MHZ;
    if blocks == 0 {
        return None;
    }
    let mut acc = 0.0;
    for b in 0..blocks {
        let block = &wave[b * BLOCK_LEN_4MHZ..(b + 1) * BLOCK_LEN_4MHZ];
        // The CP copies the last 0.8 µs: samples ~12.8..16 at 4 MHz. The
        // fractional offset costs a fifth of a sample; the signal is
        // oversampled 2x, so nearest-sample alignment suffices here.
        let head = &block[..CP_LEN_4MHZ];
        let tail = &block[BLOCK_LEN_4MHZ - CP_LEN_4MHZ..];
        acc += correlation(head, tail);
    }
    Some(acc / blocks as f64)
}

/// The phase-trend trace of Fig. 9a: unwrapped instantaneous phase of the
/// received waveform. Identical trends for original and emulated waveforms
/// defeat strategy 2.
pub fn phase_trend(wave: &[Complex]) -> Vec<f64> {
    instantaneous_phase(wave)
}

/// Quantifies how similar two phase trends are: the correlation of their
/// per-sample increments over the overlapping span, in `[-1, 1]`.
pub fn phase_trend_similarity(a: &[Complex], b: &[Complex]) -> f64 {
    let pa = phase_trend(a);
    let pb = phase_trend(b);
    let n = pa.len().min(pb.len());
    if n < 2 {
        return 0.0;
    }
    let da: Vec<f64> = pa[..n].windows(2).map(|w| w[1] - w[0]).collect();
    let db: Vec<f64> = pb[..n].windows(2).map(|w| w[1] - w[0]).collect();
    let ma = da.iter().sum::<f64>() / da.len() as f64;
    let mb = db.iter().sum::<f64>() / db.len() as f64;
    let cov: f64 = da.iter().zip(&db).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = da.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = db.iter().map(|y| (y - mb).powi(2)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Strategy 3 summary: fraction of 32-chip groups whose hard-decision chip
/// sequences differ between two receptions, against the fraction whose
/// decoded symbols differ. The paper's point is the first is large while the
/// second is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipComparison {
    /// Fraction of symbol-sized chip groups that differ at chip level.
    pub chip_groups_differing: f64,
    /// Fraction of decoded symbols that differ.
    pub symbols_differing: f64,
}

/// Compares the chip and symbol streams of two receptions over their common
/// prefix.
pub fn compare_chip_streams(
    a: &ctc_zigbee::Reception,
    b: &ctc_zigbee::Reception,
) -> ChipComparison {
    let chips_a = a.chip_samples.hard_chips();
    let chips_b = b.chip_samples.hard_chips();
    let groups = (chips_a.len() / 32).min(chips_b.len() / 32);
    let mut chip_diff = 0usize;
    for g in 0..groups {
        let lo = g * 32;
        if chips_a[lo..lo + 32] != chips_b[lo..lo + 32] {
            chip_diff += 1;
        }
    }
    let syms = a.symbols.len().min(b.symbols.len());
    let sym_diff = a
        .symbols
        .iter()
        .zip(&b.symbols)
        .filter(|(x, y)| x != y)
        .count();
    ChipComparison {
        chip_groups_differing: if groups > 0 {
            chip_diff as f64 / groups as f64
        } else {
            0.0
        },
        symbols_differing: if syms > 0 {
            sym_diff as f64 / syms as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use ctc_channel::Link;
    use ctc_zigbee::{Receiver, Transmitter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> (Vec<Complex>, Vec<Complex>) {
        let orig = Transmitter::new().transmit_payload(b"00000").unwrap();
        let emu = Emulator::new();
        let em = emu.emulate(&orig);
        let back = emu.received_at_zigbee(&em);
        (orig, back)
    }

    #[test]
    fn cp_similarity_empty_is_none() {
        assert_eq!(cp_similarity_4mhz(&[]), None);
        assert!(cp_similarity_4mhz(&[Complex::ONE; 16]).is_some());
    }

    #[test]
    fn noiseless_emulation_has_higher_cp_similarity() {
        let (orig, emu) = pair();
        let n = orig.len().min(emu.len());
        let c_orig = cp_similarity_4mhz(&orig[..n]).unwrap();
        let c_emu = cp_similarity_4mhz(&emu[..n]).unwrap();
        assert!(
            c_emu > c_orig,
            "emulated CP similarity {c_emu} should exceed original {c_orig}"
        );
    }

    #[test]
    fn noise_destroys_cp_margin() {
        // Under realistic noise the CP statistic gap shrinks drastically —
        // the quantitative form of "this methodology is not reliable".
        let (orig, emu) = pair();
        let n = orig.len().min(emu.len());
        let clean_gap =
            cp_similarity_4mhz(&emu[..n]).unwrap() - cp_similarity_4mhz(&orig[..n]).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let link = Link::awgn(0.0);
        let mut noisy_gap_sum = 0.0;
        const RUNS: usize = 20;
        for _ in 0..RUNS {
            let no = link.transmit(&orig[..n], &mut rng);
            let ne = link.transmit(&emu[..n], &mut rng);
            noisy_gap_sum += cp_similarity_4mhz(&ne).unwrap() - cp_similarity_4mhz(&no).unwrap();
        }
        let noisy_gap = noisy_gap_sum / RUNS as f64;
        assert!(
            noisy_gap < clean_gap * 0.7,
            "noise should shrink the CP gap: clean {clean_gap}, noisy {noisy_gap}"
        );
    }

    #[test]
    fn phase_trends_carry_no_attacker_signature() {
        // Fig. 9a's point, quantified: the phase-trend similarity between an
        // original waveform and its emulation is in the same range as
        // between two unrelated authentic waveforms — the statistic has no
        // power to separate attacker from transmitter.
        let (orig, emu) = pair();
        let other = Transmitter::new().transmit_payload(b"zq!#x").unwrap();
        let n = orig.len().min(emu.len()).min(other.len());
        let sim_emulated = phase_trend_similarity(&orig[..n], &emu[..n]);
        let sim_unrelated = phase_trend_similarity(&orig[..n], &other[..n]);
        assert!(
            sim_emulated > 0.4,
            "emulated phase trend diverged: {sim_emulated}"
        );
        assert!(
            (sim_emulated - sim_unrelated).abs() < 0.2,
            "phase trend should not separate attacker ({sim_emulated}) from \
             an unrelated authentic waveform ({sim_unrelated})"
        );
    }

    #[test]
    fn phase_trend_similarity_degenerate_inputs() {
        assert_eq!(phase_trend_similarity(&[], &[]), 0.0);
        assert_eq!(
            phase_trend_similarity(&[Complex::ONE; 5], &[Complex::ONE; 5]),
            0.0 // zero variance in both increments
        );
    }

    #[test]
    fn cp_similarity_short_burst_is_none() {
        // One sample short of a complete 16-sample block: no blocks, no
        // statistic. Pins the `blocks == 0` early return.
        assert_eq!(
            cp_similarity_4mhz(&[Complex::ONE; BLOCK_LEN_4MHZ - 1]),
            None
        );
    }

    #[test]
    fn cp_similarity_degenerate_bursts_pin_extremes() {
        // An all-zero block has zero power in head and tail, so the
        // correlation convention returns 0 rather than NaN.
        assert_eq!(cp_similarity_4mhz(&[Complex::ZERO; 32]), Some(0.0));
        // A constant nonzero burst is perfectly self-similar in every block.
        let c = cp_similarity_4mhz(&[Complex::ONE; 2 * BLOCK_LEN_4MHZ]).unwrap();
        assert!((c - 1.0).abs() < 1e-12, "constant burst similarity: {c}");
    }

    #[test]
    fn phase_trend_similarity_short_overlap_is_zero() {
        // Fewer than two overlapping samples means no increments to
        // correlate; pins the `n < 2` early return, including the
        // mismatched-length case where only one side is short.
        assert_eq!(
            phase_trend_similarity(&[Complex::ONE], &[Complex::ONE]),
            0.0
        );
        assert_eq!(
            phase_trend_similarity(&[Complex::ONE], &[Complex::ONE; 64]),
            0.0
        );
        assert_eq!(phase_trend_similarity(&[], &[Complex::ONE; 64]), 0.0);
    }

    #[test]
    fn chips_differ_but_symbols_agree() {
        let (orig, emu) = pair();
        let ra = Receiver::usrp().receive(&orig);
        let rb = Receiver::usrp().receive(&emu[..orig.len().min(emu.len())]);
        let cmp = compare_chip_streams(&ra, &rb);
        assert!(
            cmp.chip_groups_differing > 0.5,
            "most chip groups should differ, got {}",
            cmp.chip_groups_differing
        );
        assert_eq!(
            cmp.symbols_differing, 0.0,
            "DSSS tolerance should hide all chip differences"
        );
    }
}
