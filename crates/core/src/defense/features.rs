//! Constellation reconstruction and cumulant feature extraction
//! (paper Sec. VI-A2, VI-B, VI-C).
//!
//! The receiver taps the chip-rate samples feeding DSSS demodulation and
//! treats each chip pair as one point of a QPSK constellation. Authentic
//! O-QPSK chips land on the four QPSK points; emulated waveforms carry
//! quantization error and spectral-truncation distortion that spread and
//! bias the cloud. Fourth-order cumulants summarize the shape:
//! `Ĉ40 → 1`, `Ĉ42 → -1` for clean QPSK (Table III).
//!
//! ## The real-channel `|C40|` estimator
//!
//! A channel phase offset `θ` scales `C40` by `e^{j4θ}`, and a residual
//! carrier-frequency offset `Δf` makes that rotation *time-varying*, so the
//! plain sample average of `d⁴` washes out. The paper's remedy is to use
//! `|C40|` (Sec. VI-C); we realize it with the standard fourth-power
//! spectral-line estimator: for QPSK-like samples, `d_i⁴ ≈ C40·e^{j(4θ +
//! 4ω i)}` plus zero-mean terms, so `|C40|` is the peak magnitude of the
//! frequency spectrum of `d_i⁴` — invariant to both `θ` and `Δf`. `C42`
//! depends only on `|d|` and needs no protection.

use ctc_dsp::cumulants::{Cumulants, EmptySamplesError};
use ctc_dsp::{simd, Complex};
use ctc_zigbee::Reception;
use std::sync::OnceLock;

/// Theoretical QPSK feature vector `v = [C40, C42]ᵀ` (Table III row 2).
pub const QPSK_C40: f64 = 1.0;
/// Theoretical QPSK `C42`.
pub const QPSK_C42: f64 = -1.0;

/// Widest per-point rotation rate (radians per chip pair) the spectral-line
/// search covers: ±0.3 rad/pair ≈ ±12 kHz of residual CFO at the 2 MHz chip
/// rate — an order of magnitude beyond realistic front-end residue.
const LINE_SEARCH_MAX: f64 = 0.3;
/// Grid resolution of the line search.
const LINE_SEARCH_STEPS: usize = 301;

/// The fixed line-search frequency grid, computed once: `LINE_SEARCH_STEPS`
/// points spanning `[-LINE_SEARCH_MAX, +LINE_SEARCH_MAX]`.
fn nu_grid() -> &'static [f64; LINE_SEARCH_STEPS] {
    static GRID: OnceLock<[f64; LINE_SEARCH_STEPS]> = OnceLock::new();
    GRID.get_or_init(|| {
        let mut grid = [0.0; LINE_SEARCH_STEPS];
        for (s, nu) in grid.iter_mut().enumerate() {
            *nu = -LINE_SEARCH_MAX
                + 2.0 * LINE_SEARCH_MAX * s as f64 / (LINE_SEARCH_STEPS - 1) as f64;
        }
        grid
    })
}

/// Builds the defense's constellation from a reception: the raw chip
/// midpoints exactly as digitized (no phase or CFO correction — the defense
/// must not depend on decode-path estimates), rotated by `-pi/4` so a clean
/// ZigBee waveform lands on the axis-aligned QPSK set `{1, i, -1, -i}`
/// whose theoretical `C40` is `+1`.
pub fn constellation_from_reception(reception: &Reception) -> Vec<Complex> {
    let rot = Complex::cis(-std::f64::consts::FRAC_PI_4);
    reception
        .raw_chip_samples
        .constellation()
        .into_iter()
        .map(|p| p * rot)
        .collect()
}

/// Normalized fourth-order cumulant features of one constellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Features {
    /// Normalized `Ĉ40 = C̃40 / C̃21²` (complex; rotates with channel phase
    /// and washes out under CFO — valid in the ideal scenario only).
    pub c40: Complex,
    /// Normalized `Ĉ42 = C̃42 / C̃21²` (real, rotation and CFO invariant).
    pub c42: f64,
    /// `|Ĉ40|` from the fourth-power spectral-line search — invariant to
    /// static phase offset and residual CFO (the Sec. VI-C estimator).
    pub c40_magnitude: f64,
    /// Rotation rate (radians per chip pair) at which the line peaked;
    /// `4 x` the per-pair CFO.
    pub line_frequency: f64,
    /// Number of constellation points used.
    pub sample_count: usize,
}

impl Features {
    /// Estimates features from constellation points.
    ///
    /// # Errors
    ///
    /// Returns [`EmptySamplesError`] for an empty point set.
    pub fn estimate(points: &[Complex]) -> Result<Self, EmptySamplesError> {
        Self::estimate_with_scratch(points, &mut Vec::new())
    }

    /// Estimates features for a whole batch of constellations (one slice
    /// per burst), sharing the fourth-power scratch buffer across bursts so
    /// steady-state classification performs one allocation per batch
    /// instead of one per frame.
    pub fn estimate_batch(bursts: &[&[Complex]]) -> Vec<Result<Self, EmptySamplesError>> {
        let mut z = Vec::new();
        bursts
            .iter()
            .map(|pts| Self::estimate_with_scratch(pts, &mut z))
            .collect()
    }

    fn estimate_with_scratch(
        points: &[Complex],
        z: &mut Vec<Complex>,
    ) -> Result<Self, EmptySamplesError> {
        let c = Cumulants::estimate(points)?;
        let c21 = c.c21();
        // Fourth-power sequence for the spectral-line search.
        z.clear();
        z.extend(points.iter().map(|&p| {
            let p2 = p * p;
            p2 * p2
        }));
        let d = z.len() as f64;
        // Evaluate the whole grid lane-parallel across frequencies; the
        // per-frequency arithmetic is bit-equal to `dtft_magnitude`, so the
        // argmax below selects exactly the same line as the scalar loop.
        let nus = nu_grid();
        let mut mags = [0.0f64; LINE_SEARCH_STEPS];
        simd::dtft_norms(z, nus, &mut mags);
        let mut best_mag = 0.0f64;
        let mut best_nu = 0.0f64;
        for (s, &m) in mags.iter().enumerate() {
            let mag = m / d;
            if mag > best_mag {
                best_mag = mag;
                best_nu = nus[s];
            }
        }
        // Normalize like the other cumulants. The `-3 C20²` correction is
        // omitted in the line estimator: under rotation C20 washes to ~0,
        // and for axis-aligned QPSK it is exactly 0.
        let c40_magnitude = if c21 > 0.0 {
            best_mag / (c21 * c21)
        } else {
            0.0
        };
        Ok(Features {
            c40: c.c40_normalized(),
            c42: c.c42_normalized(),
            c40_magnitude,
            line_frequency: best_nu,
            sample_count: c.sample_count(),
        })
    }

    /// Squared Euclidean distance to the QPSK Voronoi point in the ideal
    /// (AWGN, no phase offset) scenario:
    /// `DE² = (Re Ĉ40 − 1)² + (Ĉ42 + 1)²`.
    pub fn de_squared_ideal(&self) -> f64 {
        (self.c40.re - QPSK_C40).powi(2) + (self.c42 - QPSK_C42).powi(2)
    }

    /// Squared distance using the offset-immune `|Ĉ40|` (Sec. VI-C):
    /// `DE² = (|Ĉ40| − 1)² + (Ĉ42 + 1)²`.
    pub fn de_squared_real(&self) -> f64 {
        (self.c40_magnitude - QPSK_C40).powi(2) + (self.c42 - QPSK_C42).powi(2)
    }
}

/// One-call feature extraction from a reception.
///
/// # Errors
///
/// Returns [`EmptySamplesError`] when the reception captured no chip pairs.
pub fn features_from_reception(reception: &Reception) -> Result<Features, EmptySamplesError> {
    Features::estimate(&constellation_from_reception(reception))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_channel::Link;
    use ctc_zigbee::{Receiver, Transmitter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reception(snr_db: f64, seed: u64) -> Reception {
        let wave = Transmitter::new().transmit_payload(b"00000").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rx_wave = Link::awgn(snr_db).transmit(&wave, &mut rng);
        Receiver::usrp().receive(&rx_wave)
    }

    #[test]
    fn clean_zigbee_features_match_qpsk_theory() {
        let r = reception(60.0, 71);
        let f = features_from_reception(&r).unwrap();
        assert!((f.c40.re - 1.0).abs() < 0.05, "C40 {:?}", f.c40);
        assert!((f.c42 + 1.0).abs() < 0.05, "C42 {}", f.c42);
        assert!(
            (f.c40_magnitude - 1.0).abs() < 0.05,
            "|C40| {}",
            f.c40_magnitude
        );
        assert!(f.line_frequency.abs() < 0.01);
        assert!(f.de_squared_ideal() < 0.01);
        assert!(f.de_squared_real() < 0.01);
    }

    #[test]
    fn noise_pushes_cumulants_toward_gaussian() {
        let high = features_from_reception(&reception(17.0, 72)).unwrap();
        let low = features_from_reception(&reception(3.0, 73)).unwrap();
        assert!(
            low.de_squared_ideal() > high.de_squared_ideal(),
            "low-SNR DE² {} should exceed high-SNR {}",
            low.de_squared_ideal(),
            high.de_squared_ideal()
        );
    }

    #[test]
    fn phase_offset_breaks_ideal_but_not_real_variant() {
        let wave = Transmitter::new().transmit_payload(b"00000").unwrap();
        let rotated = ctc_channel::impairments::apply_phase(&wave, 0.5);
        let r = Receiver::usrp().receive(&rotated);
        let f = features_from_reception(&r).unwrap();
        // Re(C40) rotated by 4*0.5 = 2 rad -> far from 1.
        assert!(
            f.de_squared_ideal() > 0.5,
            "ideal DE² {}",
            f.de_squared_ideal()
        );
        // |C40| unaffected.
        assert!(
            f.de_squared_real() < 0.05,
            "real DE² {}",
            f.de_squared_real()
        );
    }

    #[test]
    fn cfo_breaks_plain_c40_but_not_line_estimator() {
        let wave = Transmitter::new().transmit_payload(b"00000").unwrap();
        let shifted = ctc_channel::impairments::apply_cfo(&wave, 400.0, 4.0e6, 0.3);
        let r = Receiver::usrp().receive(&shifted);
        let f = features_from_reception(&r).unwrap();
        assert!(
            f.c40.norm() < 0.6,
            "plain C40 should wash out under CFO, got {:?}",
            f.c40
        );
        assert!(
            (f.c40_magnitude - 1.0).abs() < 0.1,
            "line |C40| should survive CFO, got {}",
            f.c40_magnitude
        );
        // Line frequency = 4 * per-pair rotation; a chip pair spans 4
        // samples at 4 MHz, so omega_pair = 2*pi*400/4e6*4.
        let expected = 4.0 * 2.0 * std::f64::consts::PI * 400.0 / 4.0e6 * 4.0;
        assert!(
            (f.line_frequency - expected).abs() < 0.01,
            "line at {} vs expected {expected}",
            f.line_frequency
        );
    }

    #[test]
    fn sample_count_matches_constellation() {
        let r = reception(20.0, 74);
        let pts = constellation_from_reception(&r);
        let f = Features::estimate(&pts).unwrap();
        assert_eq!(f.sample_count, pts.len());
    }

    #[test]
    fn empty_points_error() {
        assert!(Features::estimate(&[]).is_err());
    }

    #[test]
    fn horner_dtft_matches_naive_sum() {
        // Lengths exercising every partial-block case (len % 4 = 0..=3).
        for n in [1usize, 2, 3, 4, 5, 96, 97, 98, 99] {
            let z: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            for &nu in &[-0.3, -0.1234, 0.0, 0.077, 0.3] {
                let naive: Complex = z
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v * Complex::cis(-nu * i as f64))
                    .sum();
                let mut fast = [0.0];
                simd::dtft_norms(&z, &[nu], &mut fast);
                assert!(
                    (fast[0] - naive.norm()).abs() < 1e-9,
                    "n={n} nu={nu}: {} vs {}",
                    fast[0],
                    naive.norm()
                );
            }
        }
        let mut empty = [1.0];
        simd::dtft_norms(&[], &[0.1], &mut empty);
        assert_eq!(empty[0], 0.0);
    }

    #[test]
    fn estimate_batch_matches_per_burst_estimate() {
        let a = constellation_from_reception(&reception(20.0, 75));
        let b = constellation_from_reception(&reception(5.0, 76));
        let batch = Features::estimate_batch(&[&a, &[], &b]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].unwrap(), Features::estimate(&a).unwrap());
        assert!(batch[1].is_err());
        assert_eq!(batch[2].unwrap(), Features::estimate(&b).unwrap());
    }
}
