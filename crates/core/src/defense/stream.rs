//! Online deployment of the defense: monitor a continuous sample stream,
//! find frames, decode them, and classify each as authentic or emulated.
//!
//! This is the form a defending ZigBee gateway would actually run: the
//! hypothesis test of Sec. VI-B3 applied per received frame, on top of
//! energy-based frame detection.

use crate::attack::listener::{Burst, EnergyDetector};
use crate::defense::detector::{Detector, Verdict};
use ctc_dsp::Complex;
use ctc_zigbee::{Receiver, Reception};

/// One frame-shaped event found in the stream.
#[derive(Debug, Clone)]
pub struct StreamEvent {
    /// Where in the stream the burst sat.
    pub burst: Burst,
    /// Decoded payload, when the frame parsed and passed its FCS.
    pub payload: Option<Vec<u8>>,
    /// The defense verdict (absent when too few chip samples were captured).
    pub verdict: Option<Verdict>,
    /// Full reception diagnostics.
    pub reception: Reception,
}

impl StreamEvent {
    /// True when the frame decoded *and* the detector attributed it to the
    /// WiFi attacker — the case a gateway must alarm on, because the
    /// payload was accepted by the stock stack.
    pub fn accepted_forgery(&self) -> bool {
        self.payload.is_some() && self.verdict.map(|v| v.is_attack).unwrap_or(false)
    }
}

/// A configured stream monitor.
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    energy: EnergyDetector,
    receiver: Receiver,
    detector: Detector,
}

impl StreamMonitor {
    /// Builds a monitor from its three stages.
    pub fn new(energy: EnergyDetector, receiver: Receiver, detector: Detector) -> Self {
        StreamMonitor {
            energy,
            receiver,
            detector,
        }
    }

    /// Defaults: standard energy detector, hard-decision receiver with a
    /// 96-sample timing search, the given detector.
    pub fn with_detector(detector: Detector) -> Self {
        StreamMonitor {
            energy: EnergyDetector::default(),
            receiver: Receiver::usrp().with_sync_search(96),
            detector,
        }
    }

    /// Scans a recording, returning one event per detected burst.
    pub fn scan(&self, stream: &[Complex]) -> Vec<StreamEvent> {
        let margin = 2 * self.energy.window;
        self.energy
            .detect(stream)
            .into_iter()
            .map(|burst| {
                let start = burst.start.saturating_sub(margin);
                let end = (burst.end + margin).min(stream.len());
                let reception = self.receiver.receive(&stream[start..end]);
                let payload = reception.payload().map(<[u8]>::to_vec);
                let verdict = self.detector.detect(&reception).ok();
                StreamEvent {
                    burst,
                    payload,
                    verdict,
                    reception,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use crate::defense::ChannelAssumption;
    use ctc_channel::noise::complex_gaussian;
    use ctc_zigbee::Transmitter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn monitor() -> StreamMonitor {
        StreamMonitor::with_detector(Detector::new(ChannelAssumption::Ideal).with_threshold(0.25))
    }

    fn build_stream(seed: u64) -> (Vec<Complex>, usize) {
        // noise | authentic frame | noise | forged frame | noise
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma2 = 1e-3;
        let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
        let emulator = Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
        let mut stream = Vec::new();
        let mut noise = |n: usize, stream: &mut Vec<Complex>| {
            stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
        };
        noise(600, &mut stream);
        stream.extend_from_slice(&authentic);
        noise(600, &mut stream);
        let forged_at = stream.len();
        stream.extend_from_slice(&forged);
        noise(600, &mut stream);
        (stream, forged_at)
    }

    #[test]
    fn finds_and_classifies_both_frames() {
        let (stream, forged_at) = build_stream(1);
        let events = monitor().scan(&stream);
        assert_eq!(events.len(), 2, "events: {:?}", events.len());
        let (first, second) = (&events[0], &events[1]);
        assert_eq!(first.payload.as_deref(), Some(&b"00000"[..]));
        assert_eq!(second.payload.as_deref(), Some(&b"00000"[..]));
        assert!(!first.verdict.unwrap().is_attack, "authentic flagged");
        assert!(second.verdict.unwrap().is_attack, "forgery missed");
        assert!(second.burst.start >= forged_at - 64);
        assert!(!first.accepted_forgery());
        assert!(second.accepted_forgery());
    }

    #[test]
    fn empty_stream_no_events() {
        assert!(monitor().scan(&[]).is_empty());
    }

    #[test]
    fn noise_only_no_events() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise: Vec<Complex> = (0..5000)
            .map(|_| complex_gaussian(&mut rng, 1e-3))
            .collect();
        assert!(monitor().scan(&noise).is_empty());
    }
}
