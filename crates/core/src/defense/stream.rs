//! Online deployment of the defense: monitor a continuous sample stream,
//! find frames, decode them, and classify each as authentic or emulated.
//!
//! This is the form a defending ZigBee gateway would actually run: the
//! hypothesis test of Sec. VI-B3 applied per received frame, on top of
//! energy-based frame detection.
//!
//! The module is split into resumable stages so a real gateway can spread
//! them across threads:
//!
//! - [`BurstSplitter`] — ingest side: feeds chunks to an [`EnergyStream`]
//!   and carves out each
//!   completed burst's samples (plus a decode margin), carrying detector
//!   and buffer state across chunk boundaries. O(burst length) memory.
//! - [`FrameProcessor`] — worker side: decodes one captured burst with the
//!   stock 802.15.4 receiver and classifies it with the cumulant detector.
//! - [`StreamMonitor`] — both stages inline: `push` chunks, get events.
//!   [`StreamMonitor::scan`] (one-shot, whole recording) is a thin wrapper
//!   over `push` + `finish`, so the two paths cannot drift: any chunking
//!   of a stream yields exactly the events `scan` yields on the whole
//!   buffer.

use crate::attack::listener::{Burst, BurstEnd, EnergyDetector, EnergyStream};
use crate::defense::detector::{Detector, Verdict};
use crate::defense::pipeline::{DetectionPipeline, FeatureInput, PipelineScores};
use ctc_dsp::{BufferPool, Complex, SampleBuf};
use ctc_zigbee::{Receiver, Reception};
use std::collections::VecDeque;
use std::sync::Arc;

/// One frame-shaped event found in the stream.
#[derive(Debug, Clone)]
pub struct StreamEvent {
    /// Where in the stream the burst sat.
    pub burst: Burst,
    /// Decoded payload, when the frame parsed and passed its FCS.
    pub payload: Option<Vec<u8>>,
    /// The defense verdict (absent when too few chip samples were captured).
    pub verdict: Option<Verdict>,
    /// Full reception diagnostics.
    pub reception: Reception,
    /// True when the burst did not end on a clean idle gap (cut by end of
    /// stream or by the splitter's burst-length cap).
    pub truncated: bool,
    /// Fused score plus per-feature values, present only when the
    /// processor runs a [`DetectionPipeline`] (`None` on the legacy
    /// single-detector path, whose events are unchanged).
    pub scores: Option<PipelineScores>,
}

impl StreamEvent {
    /// True when the frame decoded *and* the detector attributed it to the
    /// WiFi attacker — the case a gateway must alarm on, because the
    /// payload was accepted by the stock stack.
    pub fn accepted_forgery(&self) -> bool {
        self.payload.is_some() && self.verdict.map(|v| v.is_attack).unwrap_or(false)
    }
}

/// A completed burst cut out of the stream with its decode margin: the
/// unit of work handed from the ingest stage to a decode worker.
#[derive(Debug, Clone)]
pub struct BurstCapture {
    /// The burst, in absolute stream sample indices.
    pub burst: Burst,
    /// Absolute stream index of `samples[0]` (burst start minus margin).
    pub capture_start: usize,
    /// The burst's samples plus margin on both sides. Drawn from the
    /// splitter's [`BufferPool`]; dropping the capture recycles the buffer.
    pub samples: SampleBuf,
    /// True when the burst was cut (end of stream / burst-length cap).
    pub truncated: bool,
}

/// Ingest stage: resumable burst extraction over an unbounded stream.
///
/// Wraps an [`EnergyStream`] and buffers just enough sample history to
/// hand each completed burst onward with `margin` guard samples on both
/// sides (so detector latency never clips a preamble). A capture is
/// emitted only once its trailing margin has arrived, or at [`finish`],
/// whichever comes first — exactly the margins the one-shot scan applies.
///
/// [`finish`]: BurstSplitter::finish
#[derive(Debug, Clone)]
pub struct BurstSplitter {
    stream: EnergyStream,
    margin: usize,
    /// Sample history; `history[0]` is absolute stream index `base`.
    history: VecDeque<Complex>,
    base: usize,
    /// Completed bursts whose trailing margin has not fully arrived yet.
    pending: VecDeque<(Burst, BurstEnd)>,
    /// Capture buffers come from here (and return on drop downstream).
    pool: BufferPool,
}

impl BurstSplitter {
    /// Splitter with the standard decode margin of two detection windows.
    ///
    /// # Panics
    ///
    /// Panics when `energy.window == 0`.
    pub fn new(energy: EnergyDetector) -> Self {
        BurstSplitter {
            stream: energy.stream(),
            margin: 2 * energy.window,
            history: VecDeque::new(),
            base: 0,
            pending: VecDeque::new(),
            pool: BufferPool::new(),
        }
    }

    /// Draws capture buffers from `pool` instead of a private one — share
    /// the pool with the consuming side so buffers dropped by workers are
    /// reused for the next captures.
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = pool;
        self
    }

    /// The pool capture buffers are drawn from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Caps burst length (see
    /// [`EnergyStream::with_max_burst`](crate::attack::EnergyStream::with_max_burst)),
    /// bounding this splitter's buffering on continuous transmissions.
    ///
    /// # Panics
    ///
    /// Panics when `max` is below the detector's `min_len`.
    pub fn with_max_burst(mut self, max: usize) -> Self {
        self.stream = self.stream.clone().with_max_burst(max);
        self
    }

    /// The energy-detector configuration in use.
    pub fn energy(&self) -> &EnergyDetector {
        self.stream.config()
    }

    /// Total samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.stream.samples_seen()
    }

    /// Consumes a chunk, returning every capture completed by it.
    pub fn push(&mut self, chunk: &[Complex]) -> Vec<BurstCapture> {
        let mut out = Vec::new();
        self.push_into(chunk, &mut out);
        out
    }

    /// [`push`](Self::push) appending captures to a caller-owned vector —
    /// the streaming form: an ingest loop clears and reuses one vector, so
    /// a quiet chunk costs zero allocations.
    pub fn push_into(&mut self, chunk: &[Complex], out: &mut Vec<BurstCapture>) {
        // Detection first: the energy stream needs no sample history, and
        // knowing where the chunk's bursts sit lets a quiet chunk skip
        // buffering almost all of itself.
        let pending = &mut self.pending;
        self.stream
            .push_each(chunk, |sb| pending.push_back((sb.burst, sb.end_reason)));
        let old_total = self.base + self.history.len();
        let keep_from = self.keep_from(old_total + chunk.len());
        if keep_from >= old_total {
            // Nothing before this chunk can be captured any more: drop the
            // old history outright and buffer only the reachable suffix.
            self.history.clear();
            self.base = keep_from;
            self.history
                .extend(chunk[keep_from - old_total..].iter().copied());
        } else {
            self.history.extend(chunk.iter().copied());
            let drop_n = keep_from.saturating_sub(self.base);
            if drop_n > 0 {
                self.history.drain(..drop_n);
                self.base = keep_from;
            }
        }
        self.flush_ready(out);
    }

    /// Ends the stream: emits every remaining capture (any still-open
    /// burst is closed and marked truncated) and resets the splitter.
    pub fn finish(&mut self) -> Vec<BurstCapture> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// [`finish`](Self::finish) appending captures to a caller-owned vector.
    pub fn finish_into(&mut self, out: &mut Vec<BurstCapture>) {
        if let Some(sb) = self.stream.finish() {
            self.pending.push_back((sb.burst, sb.end_reason));
        }
        let total = self.base + self.history.len();
        while let Some((burst, reason)) = self.pending.pop_front() {
            out.push(self.capture(burst, reason, total));
        }
        self.history.clear();
        self.base = 0;
    }

    /// Emits pending captures whose trailing margin has fully arrived.
    fn flush_ready(&mut self, out: &mut Vec<BurstCapture>) {
        let total = self.base + self.history.len();
        while let Some(&(burst, reason)) = self.pending.front() {
            if burst.end + self.margin > total {
                break;
            }
            self.pending.pop_front();
            out.push(self.capture(burst, reason, total));
        }
    }

    /// Cuts one capture out of the history buffer, into a pooled buffer.
    fn capture(&self, burst: Burst, reason: BurstEnd, total: usize) -> BurstCapture {
        let capture_start = burst.start.saturating_sub(self.margin);
        let capture_end = (burst.end + self.margin).min(total);
        debug_assert!(capture_start >= self.base, "history trimmed too far");
        let lo = capture_start - self.base;
        let hi = lo + (capture_end - capture_start);
        let mut samples = self.pool.checkout(hi - lo);
        let (front, back) = self.history.as_slices();
        if lo < front.len() {
            samples.extend_from_slice(&front[lo..hi.min(front.len())]);
        }
        if hi > front.len() {
            samples.extend_from_slice(&back[lo.saturating_sub(front.len())..hi - front.len()]);
        }
        BurstCapture {
            burst,
            capture_start,
            samples,
            truncated: reason != BurstEnd::Gap,
        }
    }

    /// First stream index any future capture can still reach once `total`
    /// samples have been consumed: the oldest of (pending captures, the
    /// open burst, the margin horizon behind the read position). History
    /// before it is dead.
    fn keep_from(&self, total: usize) -> usize {
        let horizon = total.saturating_sub(self.margin + self.energy().window + self.energy().hang);
        let mut keep_from = horizon;
        if let Some(&(burst, _)) = self.pending.front() {
            keep_from = keep_from.min(burst.start.saturating_sub(self.margin));
        }
        if let Some(open) = self.stream.open_burst_start() {
            keep_from = keep_from.min(open.saturating_sub(self.margin));
        }
        keep_from
    }
}

/// Worker stage: decode + classify one captured burst.
#[derive(Debug, Clone)]
pub struct FrameProcessor {
    receiver: Receiver,
    detector: Detector,
    pipeline: Option<Arc<DetectionPipeline>>,
}

impl FrameProcessor {
    /// Builds the stage from its receiver and detector.
    pub fn new(receiver: Receiver, detector: Detector) -> Self {
        FrameProcessor {
            receiver,
            detector,
            pipeline: None,
        }
    }

    /// Classifies with a detection pipeline instead of the bare detector:
    /// events gain per-feature [`PipelineScores`] and the verdict's
    /// `is_attack` comes from the pipeline's classifier. With
    /// [`DetectionPipeline::legacy`] the verdicts are bit-identical to the
    /// bare detector's.
    pub fn with_pipeline(mut self, pipeline: Arc<DetectionPipeline>) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// The detection pipeline, when one is configured.
    pub fn pipeline(&self) -> Option<&Arc<DetectionPipeline>> {
        self.pipeline.as_ref()
    }

    /// Runs the stock receiver and the cumulant detector on one capture.
    pub fn process(&self, capture: &BurstCapture) -> StreamEvent {
        let reception = self.decode(capture);
        self.classify(capture, reception)
    }

    /// Stage 1: the stock 802.15.4 receiver over the capture. Split from
    /// [`classify`](Self::classify) so a pipeline can time each stage.
    pub fn decode(&self, capture: &BurstCapture) -> Reception {
        self.receiver.receive(&capture.samples)
    }

    /// Stage 2: the hypothesis test, folded into the final event.
    pub fn classify(&self, capture: &BurstCapture, reception: Reception) -> StreamEvent {
        let payload = reception.payload().map(<[u8]>::to_vec);
        let (verdict, scores) = match &self.pipeline {
            None => (self.detector.detect(&reception).ok(), None),
            Some(pipeline) => {
                let input = FeatureInput::with_samples(&reception, &capture.samples);
                match pipeline.score(&input) {
                    Ok(pv) => (Some(pv.verdict), Some(pv.scores)),
                    Err(_) => (None, None),
                }
            }
        };
        StreamEvent {
            burst: capture.burst,
            payload,
            verdict,
            reception,
            truncated: capture.truncated,
            scores,
        }
    }

    /// The receiver this stage decodes with.
    pub fn receiver(&self) -> &Receiver {
        &self.receiver
    }

    /// The detector this stage classifies with.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }
}

/// Mints per-session monitor state for a multi-stream gateway: each
/// session needs its own [`BurstSplitter`] (detector floor, open burst,
/// margin history are per-stream), while the [`FrameProcessor`] and the
/// capture [`BufferPool`] are safely shared across every session.
///
/// A server holds one factory and calls [`splitter`](Self::splitter) per
/// accepted connection; buffers dropped by any session's workers are
/// recycled into the next capture of *any* session.
#[derive(Debug, Clone)]
pub struct MonitorFactory {
    energy: EnergyDetector,
    processor: FrameProcessor,
    pool: BufferPool,
    max_burst: Option<usize>,
}

impl MonitorFactory {
    /// Builds the factory from the shared stage configuration.
    pub fn new(energy: EnergyDetector, receiver: Receiver, detector: Detector) -> Self {
        MonitorFactory {
            energy,
            processor: FrameProcessor::new(receiver, detector),
            pool: BufferPool::new(),
            max_burst: None,
        }
    }

    /// Draws every session's capture buffers from `pool` instead of a
    /// private one.
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = pool;
        self
    }

    /// Caps burst length for every minted splitter (see
    /// [`BurstSplitter::with_max_burst`]).
    pub fn with_max_burst(mut self, max: usize) -> Self {
        self.max_burst = Some(max);
        self
    }

    /// Classifies every session's bursts with a shared
    /// [`DetectionPipeline`] (see [`FrameProcessor::with_pipeline`]).
    pub fn with_pipeline(mut self, pipeline: Arc<DetectionPipeline>) -> Self {
        self.processor = self.processor.with_pipeline(pipeline);
        self
    }

    /// The shared capture-buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The shared energy-detector configuration.
    pub fn energy(&self) -> &EnergyDetector {
        &self.energy
    }

    /// The shared worker-side stage (clone is cheap; decode/classify hold
    /// no per-stream state).
    pub fn processor(&self) -> &FrameProcessor {
        &self.processor
    }

    /// A fresh ingest stage for one session, drawing from the shared pool.
    ///
    /// # Panics
    ///
    /// Panics when `energy.window == 0`, or when a configured max burst is
    /// below the detector's `min_len` (both are configuration errors the
    /// gateway's builder rejects earlier).
    pub fn splitter(&self) -> BurstSplitter {
        let splitter = BurstSplitter::new(self.energy).with_pool(self.pool.clone());
        match self.max_burst {
            Some(max) => splitter.with_max_burst(max),
            None => splitter,
        }
    }

    /// A fresh inline monitor for one session (splitter + processor).
    pub fn monitor(&self) -> StreamMonitor {
        StreamMonitor {
            splitter: self.splitter(),
            processor: self.processor.clone(),
        }
    }
}

/// A configured stream monitor: burst splitting plus decode/classify, in
/// one resumable object.
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    splitter: BurstSplitter,
    processor: FrameProcessor,
}

impl StreamMonitor {
    /// Builds a monitor from its three stages.
    pub fn new(energy: EnergyDetector, receiver: Receiver, detector: Detector) -> Self {
        StreamMonitor {
            splitter: BurstSplitter::new(energy),
            processor: FrameProcessor::new(receiver, detector),
        }
    }

    /// Defaults: standard energy detector, hard-decision receiver with a
    /// 96-sample timing search, the given detector.
    pub fn with_detector(detector: Detector) -> Self {
        StreamMonitor::new(
            EnergyDetector::default(),
            Receiver::usrp().with_sync_search(96),
            detector,
        )
    }

    /// The ingest-side stage (for running the stages on separate threads,
    /// clone this before any `push`).
    pub fn splitter(&self) -> &BurstSplitter {
        &self.splitter
    }

    /// The worker-side stage.
    pub fn processor(&self) -> &FrameProcessor {
        &self.processor
    }

    /// Total samples consumed since construction or the last `finish`.
    pub fn samples_seen(&self) -> usize {
        self.splitter.samples_seen()
    }

    /// Consumes the next chunk of the stream, returning one event per
    /// burst completed inside it. State (detector floor, open bursts,
    /// margin buffering) carries across calls: a frame split over any
    /// number of chunks decodes exactly as if the stream arrived at once.
    pub fn push(&mut self, chunk: &[Complex]) -> Vec<StreamEvent> {
        self.splitter
            .push(chunk)
            .iter()
            .map(|c| self.processor.process(c))
            .collect()
    }

    /// Ends the stream: flushes any open burst (marked truncated) and
    /// resets the monitor for a new stream.
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.splitter
            .finish()
            .iter()
            .map(|c| self.processor.process(c))
            .collect()
    }

    /// Scans a whole recording, returning one event per detected burst.
    ///
    /// Thin wrapper over [`push`](Self::push) + [`finish`](Self::finish)
    /// on a fresh session — byte-for-byte the streaming code path.
    pub fn scan(&self, stream: &[Complex]) -> Vec<StreamEvent> {
        let mut session = StreamMonitor {
            splitter: BurstSplitter::new(*self.splitter.energy()),
            processor: self.processor.clone(),
        };
        let mut events = session.push(stream);
        events.extend(session.finish());
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use crate::defense::ChannelAssumption;
    use ctc_channel::noise::complex_gaussian;
    use ctc_zigbee::Transmitter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn monitor() -> StreamMonitor {
        StreamMonitor::with_detector(Detector::new(ChannelAssumption::Ideal).with_threshold(0.25))
    }

    fn build_stream(seed: u64) -> (Vec<Complex>, usize) {
        // noise | authentic frame | noise | forged frame | noise
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma2 = 1e-3;
        let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
        let emulator = Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
        let mut stream = Vec::new();
        let mut noise = |n: usize, stream: &mut Vec<Complex>| {
            stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
        };
        noise(600, &mut stream);
        stream.extend_from_slice(&authentic);
        noise(600, &mut stream);
        let forged_at = stream.len();
        stream.extend_from_slice(&forged);
        noise(600, &mut stream);
        (stream, forged_at)
    }

    fn assert_events_equal(a: &[StreamEvent], b: &[StreamEvent], context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: event count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.burst, y.burst, "{context}: burst");
            assert_eq!(x.payload, y.payload, "{context}: payload");
            assert_eq!(x.truncated, y.truncated, "{context}: truncated");
            match (x.verdict, y.verdict) {
                (Some(vx), Some(vy)) => {
                    assert_eq!(vx.is_attack, vy.is_attack, "{context}: verdict");
                    assert_eq!(vx.de_squared, vy.de_squared, "{context}: DE²");
                }
                (None, None) => {}
                other => panic!("{context}: verdict presence differs: {other:?}"),
            }
        }
    }

    /// Pushing a stream in chunks of any size yields exactly the events of
    /// a whole-buffer scan — the gateway's correctness property.
    #[test]
    fn push_is_chunking_invariant() {
        let (stream, _) = build_stream(1);
        let reference = monitor().scan(&stream);
        assert_eq!(reference.len(), 2);
        for chunk_size in [1usize, 63, 256, 1000, 4096, stream.len()] {
            let mut m = monitor();
            let mut events = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                events.extend(m.push(chunk));
            }
            events.extend(m.finish());
            assert_events_equal(&events, &reference, &format!("chunk size {chunk_size}"));
        }
    }

    #[test]
    fn finds_and_classifies_both_frames() {
        let (stream, forged_at) = build_stream(1);
        let events = monitor().scan(&stream);
        assert_eq!(events.len(), 2, "events: {:?}", events.len());
        let (first, second) = (&events[0], &events[1]);
        assert_eq!(first.payload.as_deref(), Some(&b"00000"[..]));
        assert_eq!(second.payload.as_deref(), Some(&b"00000"[..]));
        assert!(!first.verdict.unwrap().is_attack, "authentic flagged");
        assert!(second.verdict.unwrap().is_attack, "forgery missed");
        assert!(second.burst.start >= forged_at - 64);
        assert!(!first.accepted_forgery());
        assert!(second.accepted_forgery());
    }

    #[test]
    fn empty_stream_no_events() {
        assert!(monitor().scan(&[]).is_empty());
    }

    #[test]
    fn noise_only_no_events() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise: Vec<Complex> = (0..5000)
            .map(|_| complex_gaussian(&mut rng, 1e-3))
            .collect();
        assert!(monitor().scan(&noise).is_empty());
    }

    /// A frame split exactly at a chunk boundary still decodes.
    #[test]
    fn frame_split_at_chunk_boundary_decodes() {
        let (stream, forged_at) = build_stream(3);
        let reference = monitor().scan(&stream);
        assert_eq!(reference.len(), 2);
        // Boundaries inside the first frame, at the forged frame's first
        // sample, and inside the forged frame.
        for boundary in [900usize, forged_at, forged_at + 500] {
            let mut m = monitor();
            let mut events = m.push(&stream[..boundary]);
            events.extend(m.push(&stream[boundary..]));
            events.extend(m.finish());
            assert_events_equal(&events, &reference, &format!("boundary {boundary}"));
            assert_eq!(events[0].payload.as_deref(), Some(&b"00000"[..]));
            assert_eq!(events[1].payload.as_deref(), Some(&b"00000"[..]));
        }
    }

    /// Two frames closer together than the decode margin: both bursts are
    /// found, their (overlapping) captures both decode, and the streaming
    /// path agrees with the one-shot scan.
    #[test]
    fn back_to_back_frames_with_overlapping_margins() {
        let mut rng = StdRng::seed_from_u64(4);
        let sigma2 = 1e-3;
        let frame = Transmitter::new().transmit_payload(b"00000").unwrap();
        // Default window 16 => margin 32. A 30-sample gap is closer than
        // the margin, but wide enough (with hang 8) to split the bursts.
        let energy = EnergyDetector {
            hang: 8,
            ..EnergyDetector::default()
        };
        let gap = 30usize;
        let mut stream: Vec<Complex> = (0..600)
            .map(|_| complex_gaussian(&mut rng, sigma2))
            .collect();
        stream.extend_from_slice(&frame);
        stream.extend((0..gap).map(|_| complex_gaussian(&mut rng, sigma2)));
        stream.extend_from_slice(&frame);
        stream.extend((0..600).map(|_| complex_gaussian(&mut rng, sigma2)));

        let m = StreamMonitor::new(
            energy,
            Receiver::usrp().with_sync_search(96),
            Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
        );
        let reference = m.scan(&stream);
        assert_eq!(reference.len(), 2, "both bursts found: {reference:?}");
        for e in &reference {
            assert_eq!(e.payload.as_deref(), Some(&b"00000"[..]));
            assert!(!e.verdict.unwrap().is_attack);
        }
        let gap_between = reference[1].burst.start - reference[0].burst.end;
        assert!(
            gap_between < 2 * 2 * energy.window,
            "captures overlap (gap {gap_between})"
        );
        for chunk_size in [17usize, 256, 2048] {
            let mut session = m.clone();
            let mut events = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                events.extend(session.push(chunk));
            }
            events.extend(session.finish());
            assert_events_equal(&events, &reference, &format!("chunk size {chunk_size}"));
        }
    }

    /// A burst cut off by end-of-stream is still reported, marked
    /// truncated, identically for scan and push.
    #[test]
    fn burst_truncated_by_end_of_stream() {
        let (stream, forged_at) = build_stream(5);
        let cut = forged_at + 400; // mid-frame
        let reference = monitor().scan(&stream[..cut]);
        assert_eq!(reference.len(), 2, "events: {reference:?}");
        assert!(!reference[0].truncated);
        assert!(reference[1].truncated, "cut burst marked truncated");
        assert!(reference[1].burst.end <= cut);
        assert_eq!(reference[1].payload, None, "a partial frame cannot parse");

        let mut m = monitor();
        let mut events = Vec::new();
        for chunk in stream[..cut].chunks(97) {
            events.extend(m.push(chunk));
        }
        events.extend(m.finish());
        assert_events_equal(&events, &reference, "truncated stream");
    }

    /// finish() resets the monitor: a second stream through the same
    /// monitor sees none of the first stream's state.
    #[test]
    fn finish_resets_for_reuse() {
        let (stream, _) = build_stream(6);
        let mut m = monitor();
        let mut first = m.push(&stream);
        first.extend(m.finish());
        let mut second = m.push(&stream);
        second.extend(m.finish());
        assert_events_equal(&first, &second, "reused monitor");
    }

    /// The splitter alone: captures carry the margin and absolute offsets.
    #[test]
    fn splitter_capture_geometry() {
        let (stream, _) = build_stream(7);
        let mut splitter = BurstSplitter::new(EnergyDetector::default());
        let mut captures = splitter.push(&stream);
        captures.extend(splitter.finish());
        assert_eq!(captures.len(), 2);
        let margin = 2 * EnergyDetector::default().window;
        for c in &captures {
            assert_eq!(c.capture_start, c.burst.start - margin);
            assert_eq!(c.samples.len(), c.burst.len() + 2 * margin);
            assert!(!c.truncated);
            // The capture really is that slice of the stream.
            let expected = &stream[c.capture_start..c.capture_start + c.samples.len()];
            assert_eq!(&c.samples[..], expected);
        }
    }

    /// A factory mints independent per-session splitters that share one
    /// pool: sessions do not see each other's stream state, but buffers
    /// dropped by one session recycle into the other's captures.
    #[test]
    fn factory_sessions_are_isolated_but_share_the_pool() {
        let (stream, _) = build_stream(9);
        let factory = MonitorFactory::new(
            EnergyDetector::default(),
            Receiver::usrp().with_sync_search(96),
            Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
        );
        let reference = factory.monitor().scan(&stream);
        assert_eq!(reference.len(), 2);

        // Two interleaved sessions each reproduce the scan exactly.
        let mut a = factory.splitter();
        let mut b = factory.splitter();
        let mut captures_a = Vec::new();
        let mut captures_b = Vec::new();
        for chunk in stream.chunks(512) {
            a.push_into(chunk, &mut captures_a);
            b.push_into(chunk, &mut captures_b);
        }
        a.finish_into(&mut captures_a);
        b.finish_into(&mut captures_b);
        let events_a: Vec<StreamEvent> = captures_a
            .iter()
            .map(|c| factory.processor().process(c))
            .collect();
        let events_b: Vec<StreamEvent> = captures_b
            .iter()
            .map(|c| factory.processor().process(c))
            .collect();
        assert_events_equal(&events_a, &reference, "session a");
        assert_events_equal(&events_b, &reference, "session b");

        // Dropping one session's captures feeds the next session's pool.
        let misses = factory.pool().misses();
        drop(captures_a);
        drop(captures_b);
        let mut c = factory.splitter();
        let mut captures_c = c.push(&stream);
        c.finish_into(&mut captures_c);
        assert_eq!(captures_c.len(), 2);
        assert_eq!(factory.pool().misses(), misses, "third session is all hits");
    }

    /// Capture buffers recycle through a shared pool: once the first
    /// stream's captures are dropped, a second stream's captures are all
    /// pool hits (no fresh allocations).
    #[test]
    fn splitter_captures_recycle_through_shared_pool() {
        let (stream, _) = build_stream(8);
        let pool = ctc_dsp::BufferPool::new();
        let mut captures = Vec::new();
        let mut splitter = BurstSplitter::new(EnergyDetector::default()).with_pool(pool.clone());
        splitter.push_into(&stream, &mut captures);
        splitter.finish_into(&mut captures);
        assert_eq!(captures.len(), 2);
        let misses_first = pool.misses();
        assert!(misses_first > 0, "first pass allocates");
        captures.clear(); // drop -> buffers return to the pool
        splitter.push_into(&stream, &mut captures);
        splitter.finish_into(&mut captures);
        assert_eq!(captures.len(), 2);
        assert_eq!(pool.misses(), misses_first, "second pass is all hits");
        assert!(pool.hits() >= 2);
    }
}
