//! The hypothesis-testing detector (paper Sec. VI-B3, eq. (10)–(11)).
//!
//! `H0`: the waveform came from the ZigBee transmitter;
//! `H1`: it came from the WiFi attacker. The statistic is the squared
//! distance `DE²` between the estimated feature vector
//! `φ = [Ĉ40, Ĉ42]ᵀ` and the QPSK Voronoi point `v = [1, -1]ᵀ`; decide `H1`
//! when `DE² > Q`. The paper derives `Q = 0.5` from its training data; the
//! [`Detector::calibrate`] constructor re-derives a threshold from training
//! receptions the same way (midpoint of the gap between the two classes).

use crate::defense::features::{features_from_reception, Features};
use ctc_dsp::Complex;
use ctc_zigbee::Reception;

/// Channel assumption selecting the `C40` flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelAssumption {
    /// AWGN only: use `Re Ĉ40` (Sec. VI-B).
    #[default]
    Ideal,
    /// Frequency/phase offsets present: use `|Ĉ40|` (Sec. VI-C).
    Real,
}

impl ChannelAssumption {
    /// The DE² statistic this assumption reads from estimated features —
    /// the single place the `Ideal`/`Real` flavour choice lives, shared by
    /// [`Detector::detect`], [`Detector::detect_aggregated`],
    /// [`Detector::statistic_for_points`], calibration and the detection
    /// pipeline ([`crate::defense::pipeline`]).
    pub fn de_squared(self, features: &Features) -> f64 {
        match self {
            ChannelAssumption::Ideal => features.de_squared_ideal(),
            ChannelAssumption::Real => features.de_squared_real(),
        }
    }
}

/// Outcome of one detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// The decision statistic `DE²`.
    pub de_squared: f64,
    /// `true` = `H1` (WiFi attacker).
    pub is_attack: bool,
    /// The features behind the decision.
    pub features: Features,
}

/// Errors from detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectError {
    /// The reception carried no chip samples to analyze.
    NoSamples,
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::NoSamples => write!(f, "reception contains no chip samples"),
        }
    }
}

impl std::error::Error for DetectError {}

/// The constellation-statistics detector.
///
/// # Examples
///
/// ```
/// use ctc_core::defense::{ChannelAssumption, Detector};
/// use ctc_zigbee::{Receiver, Transmitter};
///
/// let wave = Transmitter::new().transmit_payload(b"00000")?;
/// let reception = Receiver::usrp().receive(&wave);
/// let verdict = Detector::new(ChannelAssumption::Ideal).detect(&reception).unwrap();
/// assert!(!verdict.is_attack);
/// # Ok::<(), ctc_zigbee::frame::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detector {
    assumption: ChannelAssumption,
    threshold: f64,
}

impl Default for Detector {
    fn default() -> Self {
        Detector::new(ChannelAssumption::Ideal)
    }
}

impl Detector {
    /// Detector with the paper's threshold `Q = 0.5`.
    pub fn new(assumption: ChannelAssumption) -> Self {
        Detector {
            assumption,
            threshold: 0.5,
        }
    }

    /// Overrides the decision threshold.
    ///
    /// # Panics
    ///
    /// Panics if `q <= 0`.
    pub fn with_threshold(mut self, q: f64) -> Self {
        assert!(q > 0.0, "threshold must be positive");
        self.threshold = q;
        self
    }

    /// Calibrates a threshold from labelled training receptions, mirroring
    /// the paper's procedure (Sec. VII-B: first 50 waveforms of each class):
    /// the threshold is the midpoint between the largest ZigBee statistic
    /// and the smallest emulated statistic. Falls back to `Q = 0.5` when a
    /// class is empty or the classes overlap.
    pub fn calibrate(
        assumption: ChannelAssumption,
        zigbee_training: &[Reception],
        emulated_training: &[Reception],
    ) -> Self {
        let stat = |r: &Reception| -> Option<f64> {
            let f = features_from_reception(r).ok()?;
            Some(assumption.de_squared(&f))
        };
        let zig: Vec<f64> = zigbee_training.iter().filter_map(stat).collect();
        let emu: Vec<f64> = emulated_training.iter().filter_map(stat).collect();
        Self::calibrate_from_stats(assumption, &zig, &emu)
    }

    /// Calibrates a threshold from already-computed training statistics
    /// (per-reception `DE²` values) using the same rule as
    /// [`Detector::calibrate`]: midpoint of the gap between the largest
    /// ZigBee statistic and the smallest emulated statistic, falling back
    /// to `Q = 0.5` when a class is empty or the classes overlap. Useful
    /// when the caller has reduced receptions to their statistics already
    /// (e.g. the experiment engine's map/reduce pipeline).
    pub fn calibrate_from_stats(
        assumption: ChannelAssumption,
        zigbee_stats: &[f64],
        emulated_stats: &[f64],
    ) -> Self {
        let zig_max = zigbee_stats.iter().copied().fold(f64::NAN, f64::max);
        let emu_min = emulated_stats.iter().copied().fold(f64::NAN, f64::min);
        let threshold = if zig_max.is_finite() && emu_min.is_finite() && emu_min > zig_max {
            (zig_max + emu_min) / 2.0
        } else {
            0.5
        };
        Detector {
            assumption,
            threshold,
        }
    }

    /// Configured threshold `Q`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Configured channel assumption.
    pub fn assumption(&self) -> ChannelAssumption {
        self.assumption
    }

    /// Computes the statistic for explicit constellation points.
    pub fn statistic_for_points(&self, points: &[Complex]) -> Option<f64> {
        let f = Features::estimate(points).ok()?;
        Some(self.assumption.de_squared(&f))
    }

    /// The verdict for already-estimated features: the one place the
    /// statistic meets the threshold. `detect` and `detect_aggregated`
    /// used to repeat this match inline; the detection pipeline's legacy
    /// configuration reuses it for bit-identical decisions.
    pub fn verdict_for(&self, features: Features) -> Verdict {
        let de_squared = self.assumption.de_squared(&features);
        Verdict {
            de_squared,
            is_attack: de_squared > self.threshold,
            features,
        }
    }

    /// Runs the hypothesis test on a reception.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::NoSamples`] when no chip samples exist.
    pub fn detect(&self, reception: &Reception) -> Result<Verdict, DetectError> {
        let features = features_from_reception(reception).map_err(|_| DetectError::NoSamples)?;
        Ok(self.verdict_for(features))
    }

    /// Aggregated detection: pools the constellation points of several
    /// receptions *from the same transmitter* and runs one test over the
    /// combined cloud. Cumulant estimator variance shrinks with sample
    /// count, so aggregation buys detection at SNRs where single frames are
    /// too noisy to classify (extension; see the `lowsnr` experiment).
    ///
    /// In the Ideal variant the frames must share a phase reference (AWGN
    /// link); in the Real variant per-frame phase is irrelevant but each
    /// frame's constellation rotates as a block, which the spectral-line
    /// |C40| search handles per the concatenated index — adequate for the
    /// residual-CFO magnitudes modelled here.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::NoSamples`] when no reception carries chip
    /// samples.
    pub fn detect_aggregated(&self, receptions: &[Reception]) -> Result<Verdict, DetectError> {
        let mut points = Vec::new();
        for r in receptions {
            points.extend(crate::defense::features::constellation_from_reception(r));
        }
        let features = crate::defense::features::Features::estimate(&points)
            .map_err(|_| DetectError::NoSamples)?;
        Ok(self.verdict_for(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use ctc_channel::Link;
    use ctc_zigbee::{Receiver, Transmitter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn zigbee_reception(snr_db: f64, seed: u64) -> Reception {
        let wave = Transmitter::new().transmit_payload(b"00000").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Receiver::usrp().receive(&Link::awgn(snr_db).transmit(&wave, &mut rng))
    }

    fn emulated_reception(snr_db: f64, seed: u64) -> Reception {
        let wave = Transmitter::new().transmit_payload(b"00000").unwrap();
        let emu = Emulator::new();
        let em = emu.emulate(&wave);
        let back = emu.received_at_zigbee(&em);
        let mut rng = StdRng::seed_from_u64(seed);
        Receiver::usrp().receive(&Link::awgn(snr_db).transmit(&back, &mut rng))
    }

    #[test]
    fn authentic_zigbee_passes() {
        let det = Detector::new(ChannelAssumption::Ideal);
        for seed in 0..5 {
            let v = det.detect(&zigbee_reception(17.0, 100 + seed)).unwrap();
            assert!(!v.is_attack, "false positive: DE² {}", v.de_squared);
        }
    }

    #[test]
    fn emulated_waveform_caught() {
        // Our emulation is cleaner than the paper's Matlab pipeline (their
        // fixed alpha = sqrt(26) clips the strongest bins), so the emulated
        // DE² sits near 0.35 rather than their 1.6; the calibrated threshold
        // lands in the gap either way. 0.25 is our calibrated equivalent of
        // the paper's Q = 0.5.
        let det = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
        for seed in 0..5 {
            let v = det.detect(&emulated_reception(17.0, 200 + seed)).unwrap();
            assert!(v.is_attack, "missed attack: DE² {}", v.de_squared);
        }
    }

    #[test]
    fn detection_works_across_paper_snr_range() {
        // Table IV shape: a persistent DE² gap between authentic and
        // emulated waveforms for SNR in {7, 12, 17} dB, with a single
        // threshold separating the classes at every SNR.
        let det = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
        for (i, snr) in [7.0, 12.0, 17.0].into_iter().enumerate() {
            let z = det.detect(&zigbee_reception(snr, 300 + i as u64)).unwrap();
            let e = det
                .detect(&emulated_reception(snr, 400 + i as u64))
                .unwrap();
            assert!(!z.is_attack, "SNR {snr}: zigbee DE² {}", z.de_squared);
            assert!(e.is_attack, "SNR {snr}: emulated DE² {}", e.de_squared);
            assert!(e.de_squared > z.de_squared * 1.5);
        }
    }

    #[test]
    fn calibration_finds_gap_threshold() {
        let zig: Vec<Reception> = (0..10).map(|i| zigbee_reception(12.0, 500 + i)).collect();
        let emu: Vec<Reception> = (0..10).map(|i| emulated_reception(12.0, 600 + i)).collect();
        let det = Detector::calibrate(ChannelAssumption::Ideal, &zig, &emu);
        // Threshold sits strictly between the classes.
        for r in &zig {
            assert!(!det.detect(r).unwrap().is_attack);
        }
        for r in &emu {
            assert!(det.detect(r).unwrap().is_attack);
        }
    }

    #[test]
    fn calibration_fallback_when_no_training() {
        let det = Detector::calibrate(ChannelAssumption::Real, &[], &[]);
        assert_eq!(det.threshold(), 0.5);
    }

    #[test]
    fn real_variant_survives_phase_offset() {
        let wave = Transmitter::new().transmit_payload(b"00000").unwrap();
        let det = Detector::new(ChannelAssumption::Real);
        for (i, theta) in [0.3f64, 0.9, 1.7, 2.5].into_iter().enumerate() {
            let rotated = ctc_channel::impairments::apply_phase(&wave, theta);
            let mut rng = StdRng::seed_from_u64(700 + i as u64);
            let noisy = Link::awgn(17.0).transmit(&rotated, &mut rng);
            let v = det.detect(&Receiver::usrp().receive(&noisy)).unwrap();
            assert!(
                !v.is_attack,
                "phase {theta}: authentic flagged, DE² {}",
                v.de_squared
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = Detector::default().with_threshold(0.0);
    }

    #[test]
    fn aggregation_stabilizes_low_snr_detection() {
        // At 3 dB a single frame's DE² is noise-dominated; pooling ten
        // frames recovers the class separation.
        let det = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
        let zig: Vec<Reception> = (0..10).map(|i| zigbee_reception(3.0, 900 + i)).collect();
        let emu: Vec<Reception> = (0..10).map(|i| emulated_reception(3.0, 950 + i)).collect();
        let vz = det.detect_aggregated(&zig).unwrap();
        let ve = det.detect_aggregated(&emu).unwrap();
        assert!(
            ve.de_squared > vz.de_squared * 1.5,
            "aggregated gap lost: {} vs {}",
            ve.de_squared,
            vz.de_squared
        );
        assert!(vz.features.sample_count > 4000, "pooled all frames");
    }

    #[test]
    fn aggregated_empty_errors() {
        let det = Detector::default();
        assert!(det.detect_aggregated(&[]).is_err());
    }

    #[test]
    fn statistic_for_points_matches_detect() {
        let r = zigbee_reception(15.0, 800);
        let det = Detector::default();
        let via_points = det
            .statistic_for_points(&crate::defense::features::constellation_from_reception(&r))
            .unwrap();
        let via_detect = det.detect(&r).unwrap().de_squared;
        assert!((via_points - via_detect).abs() < 1e-12);
    }
}
