//! Alternative detectors for comparison against the paper's cumulant
//! approach (extension): a clustered error-vector-magnitude (EVM) detector.
//!
//! EVM is the obvious first idea — measure how tightly the reconstructed
//! constellation clusters. With k-means (k = 4) supplying the cluster
//! centres it is even rotation-robust. The comparison experiment shows
//! where it breaks: under residual CFO the constellation *spins during the
//! frame*, the clusters smear into a ring, and EVM loses its margin — while
//! the |C40| spectral-line cumulant estimator keeps working. That contrast
//! is the quantitative argument for the paper's choice of higher-order
//! statistics.

use crate::defense::features::constellation_from_reception;
use ctc_dsp::kmeans::kmeans;
use ctc_dsp::Complex;
use ctc_zigbee::Reception;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The clustered-EVM statistic of a constellation: RMS distance to the
/// nearest of 4 k-means centroids, normalized by the RMS point radius.
///
/// Returns `None` for fewer than 4 points.
pub fn clustered_evm(points: &[Complex]) -> Option<f64> {
    if points.len() < 4 {
        return None;
    }
    // Deterministic seeding: the statistic must not be stochastic.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let clustering = kmeans(points, 4, 100, &mut rng).ok()?;
    let rms_radius =
        (points.iter().map(|p| p.norm_sqr()).sum::<f64>() / points.len() as f64).sqrt();
    if rms_radius <= 0.0 {
        return None;
    }
    let rms_err = (clustering.inertia / points.len() as f64).sqrt();
    Some(rms_err / rms_radius)
}

/// EVM-based hypothesis test, API-compatible with the cumulant
/// [`crate::defense::Detector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvmDetector {
    threshold: f64,
}

impl Default for EvmDetector {
    fn default() -> Self {
        EvmDetector::new()
    }
}

impl EvmDetector {
    /// A detector with a default threshold of 0.28 (between the authentic
    /// ~0.1–0.2 and emulated ~0.35–0.45 ranges at moderate SNR).
    pub fn new() -> Self {
        EvmDetector { threshold: 0.28 }
    }

    /// Overrides the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 0`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        self.threshold = threshold;
        self
    }

    /// Configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Computes the statistic and verdict for a reception; `None` when too
    /// few chip samples exist.
    pub fn detect(&self, reception: &Reception) -> Option<EvmVerdict> {
        let evm = clustered_evm(&constellation_from_reception(reception))?;
        Some(EvmVerdict {
            evm,
            is_attack: evm > self.threshold,
        })
    }
}

/// Outcome of one EVM detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvmVerdict {
    /// Normalized clustered EVM.
    pub evm: f64,
    /// `true` = flagged as the WiFi attacker.
    pub is_attack: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use ctc_zigbee::{Receiver, Transmitter};

    fn pair() -> (Vec<Complex>, Vec<Complex>) {
        let orig = Transmitter::new().transmit_payload(b"00000").unwrap();
        let emu = Emulator::new();
        let forged = emu.received_at_zigbee(&emu.emulate(&orig));
        (orig, forged)
    }

    #[test]
    fn separates_classes_in_static_channel() {
        let (orig, forged) = pair();
        let rx = Receiver::usrp();
        let det = EvmDetector::new();
        let vz = det.detect(&rx.receive(&orig)).unwrap();
        let ve = det.detect(&rx.receive(&forged)).unwrap();
        assert!(!vz.is_attack, "authentic EVM {}", vz.evm);
        assert!(ve.is_attack, "emulated EVM {}", ve.evm);
        assert!(ve.evm > 2.0 * vz.evm);
    }

    #[test]
    fn rotation_robust_via_kmeans() {
        let (orig, _) = pair();
        let rotated = ctc_channel::impairments::apply_phase(&orig, 0.7);
        let r = Receiver::usrp().receive(&rotated);
        let v = EvmDetector::new().detect(&r).unwrap();
        assert!(
            !v.is_attack,
            "static rotation should not fool EVM: {}",
            v.evm
        );
    }

    #[test]
    fn cfo_breaks_evm_but_not_cumulant_line() {
        use crate::defense::features_from_reception;
        let (orig, _) = pair();
        let spun = ctc_channel::impairments::apply_cfo(&orig, 400.0, 4.0e6, 0.1);
        let r = Receiver::usrp().receive(&spun);
        let evm = EvmDetector::new().detect(&r).unwrap();
        assert!(
            evm.is_attack,
            "CFO should smear the clusters and false-flag EVM: {}",
            evm.evm
        );
        let f = features_from_reception(&r).unwrap();
        assert!(
            f.de_squared_real() < 0.1,
            "the |C40| line estimator should survive: {}",
            f.de_squared_real()
        );
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(clustered_evm(&[Complex::ONE; 3]).is_none());
        assert!(clustered_evm(&[Complex::ZERO; 8]).is_none());
    }

    #[test]
    fn statistic_is_deterministic() {
        let (orig, _) = pair();
        let r = Receiver::usrp().receive(&orig);
        let pts = constellation_from_reception(&r);
        assert_eq!(clustered_evm(&pts), clustered_evm(&pts));
    }

    #[test]
    fn empty_constellation_is_none() {
        assert!(clustered_evm(&[]).is_none());
    }

    #[test]
    fn constant_constellation_pins_zero_evm() {
        // Identical nonzero points collapse onto one centroid: zero error,
        // unit radius. Pins that the degenerate clustering yields Some(0.0)
        // rather than NaN or None.
        assert_eq!(clustered_evm(&[Complex::ONE; 8]), Some(0.0));
    }

    #[test]
    fn detector_on_empty_burst_is_none() {
        // An empty capture decodes to no chip samples, so the detector
        // abstains instead of guessing.
        let r = Receiver::usrp().receive(&[]);
        assert!(EvmDetector::new().detect(&r).is_none());
    }

    #[test]
    fn detector_on_short_burst_is_none() {
        // A fragment far below one symbol yields fewer than 4 constellation
        // points — the k-means statistic has nothing to cluster.
        let (orig, _) = pair();
        let r = Receiver::usrp().receive(&orig[..8]);
        assert!(EvmDetector::new().detect(&r).is_none());
    }
}
