//! Frequency analysis of the observed ZigBee waveform and the two-step
//! subcarrier-selection algorithm (paper Sec. V-A2, Table I).
//!
//! The ZigBee receiver's 2 MHz front-end passes at most
//! `2 MHz / 0.3125 MHz ≈ 7` OFDM subcarriers, so the attacker must decide
//! *which* 7 of the 64 FFT bins to keep. Because the ZigBee centre frequency
//! and bandwidth are fixed, the bin energy distribution is stable across
//! waveforms; the attacker therefore selects indexes once, from a batch of
//! observed blocks: a *coarse estimation* highlights every component above a
//! magnitude threshold, then a *detailed estimation* keeps the bins that
//! were highlighted most often.

use ctc_dsp::{fft64, Complex};
use ctc_wifi::ofdm::{CP_LEN, SYMBOL_LEN};

/// Per-block FFT magnitudes of an observed waveform, one column of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpectrum {
    /// The 64 complex frequency components of the block body.
    pub components: Vec<Complex>,
}

impl BlockSpectrum {
    /// Magnitudes per bin.
    pub fn magnitudes(&self) -> Vec<f64> {
        self.components.iter().map(|c| c.norm()).collect()
    }
}

/// Splits a 20 MHz waveform into 80-sample blocks and FFTs the last 64
/// samples of each ("we put the last 64 points into FFT", Sec. V-B1).
/// A trailing partial block is discarded.
pub fn block_spectra(wave_20mhz: &[Complex]) -> Vec<BlockSpectrum> {
    wave_20mhz
        .chunks_exact(SYMBOL_LEN)
        .map(|block| BlockSpectrum {
            components: fft64(&block[CP_LEN..]),
        })
        .collect()
}

/// The attacker's two-step subcarrier selection.
///
/// - Coarse: in every block, mark bins whose magnitude exceeds `threshold`.
/// - Detailed: sum the marks per bin and keep the `count` most-marked bins
///   (magnitude sums break ties deterministically).
///
/// Returns bin indexes (`0..64`) sorted ascending.
///
/// # Panics
///
/// Panics if `spectra` is empty or `count` is 0 or exceeds 64.
///
/// # Examples
///
/// ```
/// use ctc_core::attack::spectrum::{block_spectra, select_subcarriers};
/// use ctc_dsp::Complex;
/// // A pure tone in bin 2 dominates every block.
/// let wave: Vec<Complex> = (0..800)
///     .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 2.0 * n as f64 / 64.0))
///     .collect();
/// let spectra = block_spectra(&wave);
/// let bins = select_subcarriers(&spectra, 3.0, 1);
/// assert_eq!(bins, vec![2]);
/// ```
pub fn select_subcarriers(spectra: &[BlockSpectrum], threshold: f64, count: usize) -> Vec<usize> {
    assert!(!spectra.is_empty(), "need at least one observed block");
    assert!(
        count > 0 && count <= 64,
        "subcarrier count must be in 1..=64, got {count}"
    );
    let mut votes = [0usize; 64];
    let mut magnitude_sum = [0f64; 64];
    for spec in spectra {
        for (bin, c) in spec.components.iter().enumerate() {
            let m = c.norm();
            magnitude_sum[bin] += m;
            if m > threshold {
                votes[bin] += 1;
            }
        }
    }
    let mut bins: Vec<usize> = (0..64).collect();
    bins.sort_by(|&a, &b| {
        votes[b]
            .cmp(&votes[a])
            .then(magnitude_sum[b].total_cmp(&magnitude_sum[a]))
            .then(a.cmp(&b))
    });
    let mut chosen: Vec<usize> = bins.into_iter().take(count).collect();
    chosen.sort_unstable();
    chosen
}

/// Renders Table I: rows are bin indexes (1-based, as printed in the paper),
/// columns are blocks. Only returns the magnitudes; formatting belongs to
/// the experiment harness.
pub fn frequency_table(spectra: &[BlockSpectrum]) -> Vec<Vec<f64>> {
    spectra.iter().map(|s| s.magnitudes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_dsp::resample::interpolate;
    use ctc_zigbee::Transmitter;

    fn observed_zigbee_20mhz(payload: &[u8]) -> Vec<Complex> {
        let wave = Transmitter::new().transmit_payload(payload).unwrap();
        interpolate(&wave, 5).unwrap()
    }

    #[test]
    fn block_count() {
        let wave = vec![Complex::ONE; 800];
        assert_eq!(block_spectra(&wave).len(), 10);
        let wave = vec![Complex::ONE; 799];
        assert_eq!(block_spectra(&wave).len(), 9);
    }

    #[test]
    fn zigbee_energy_concentrates_near_dc() {
        // Paper Table I: bins 1-4 and 62-64 (1-based) dominate, i.e. our
        // bins {0..3} and {61..63}.
        let wave = observed_zigbee_20mhz(b"00000");
        let spectra = block_spectra(&wave);
        let bins = select_subcarriers(&spectra, 3.0, 7);
        for &b in &bins {
            assert!(
                b <= 4 || b >= 60,
                "selected bin {b} far from the ZigBee band (bins {bins:?})"
            );
        }
        assert_eq!(bins.len(), 7);
    }

    #[test]
    fn selection_is_stable_across_payloads() {
        // "the distribution of X(k) is similar for each waveform": two very
        // different payloads must agree on most selected bins.
        let a = select_subcarriers(&block_spectra(&observed_zigbee_20mhz(b"00000")), 3.0, 7);
        let b = select_subcarriers(&block_spectra(&observed_zigbee_20mhz(b"zZ!?9")), 3.0, 7);
        let overlap = a.iter().filter(|x| b.contains(x)).count();
        assert!(overlap >= 5, "selections diverge: {a:?} vs {b:?}");
    }

    #[test]
    fn threshold_influences_votes_not_count() {
        let wave = observed_zigbee_20mhz(b"123");
        let spectra = block_spectra(&wave);
        let low = select_subcarriers(&spectra, 0.1, 7);
        let high = select_subcarriers(&spectra, 10.0, 7);
        assert_eq!(low.len(), 7);
        assert_eq!(high.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_spectra_panics() {
        let _ = select_subcarriers(&[], 3.0, 7);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_count_panics() {
        let wave = vec![Complex::ONE; 80];
        let _ = select_subcarriers(&block_spectra(&wave), 1.0, 0);
    }

    #[test]
    fn table_shape() {
        let wave = observed_zigbee_20mhz(b"42");
        let spectra = block_spectra(&wave);
        let table = frequency_table(&spectra);
        assert_eq!(table.len(), spectra.len());
        assert!(table.iter().all(|col| col.len() == 64));
    }
}
