//! The CTC waveform-emulation attack pipeline (paper Sec. V).
//!
//! ```text
//! observed ZigBee waveform (4 MHz)
//!   → ×5 interpolation (20 MHz)                      [Sec. V-B1]
//!   → per 80-sample block: drop first 16, 64-FFT     [cyclic prefixing + FFT]
//!   → keep the 7 strongest subcarriers               [two-step selection]
//!   → 64-QAM quantization with optimal alpha         [eq. (4)]
//!   → (optional) invert the WiFi bit chain           [Sec. V-A4 extension]
//!   → 64-IFFT + cyclic prefix per block
//!   = emulated ZigBee waveform (one WiFi symbol per quarter ZigBee symbol)
//! ```

use crate::attack::quantizer::{quantize_points, quantize_points_fixed, QuantizedPoints};
use crate::attack::spectrum::{block_spectra, select_subcarriers};
use ctc_dsp::resample::{interpolate, Decimator};
use ctc_dsp::{Complex, SampleBuf};
use ctc_wifi::ofdm::{
    bin_to_subcarrier, data_subcarrier_indices, synthesize_symbol_into, FFT_SIZE, SYMBOL_LEN,
};
use ctc_wifi::qam::NORM_64QAM;
use ctc_wifi::WifiTransmitter;
use ctc_zigbee::frontend::{capture_into, embed};

/// Where in the WiFi spectrum the ZigBee band is emulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectralMode {
    /// The paper's simulation setting: the ZigBee waveform stays at baseband
    /// (the RF front-ends handle centre frequencies), so the kept FFT bins
    /// straddle DC — bins 1–4 and 62–64 in the paper's 1-based Table I.
    BasebandAligned,
    /// The deployment setting of Sec. V-A4: the attacker transmits at
    /// 2440 MHz and the ZigBee channel 17 (2435 MHz) falls on data
    /// subcarriers `[-20, -8]`; pilots are inserted as in a real frame.
    CarrierAllocated,
}

/// How the emulated OFDM symbols are synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisMode {
    /// IFFT the quantized spectrum directly ("the preprocessing is ignored",
    /// Sec. V-B1).
    RawSpectrum,
    /// Run the attacker's full reverse chain (demap → deinterleave →
    /// closest codeword → descramble) and transmit the recovered bits
    /// through a stock 802.11g chain. Only meaningful with
    /// [`SpectralMode::CarrierAllocated`].
    BitChain,
}

/// Configured waveform-emulation attacker.
///
/// # Examples
///
/// ```
/// use ctc_core::attack::Emulator;
/// use ctc_zigbee::Transmitter;
///
/// let observed = Transmitter::new().transmit_payload(b"00000")?;
/// let emulation = Emulator::new().emulate(&observed);
/// // One WiFi symbol (80 samples at 20 MHz) per 16 observed samples (4 MHz).
/// assert_eq!(emulation.waveform_20mhz.len() % 80, 0);
/// # Ok::<(), ctc_zigbee::frame::FrameError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Emulator {
    spectral_mode: SpectralMode,
    synthesis_mode: SynthesisMode,
    coarse_threshold: f64,
    kept_subcarriers: usize,
    fixed_alpha: Option<f64>,
    zigbee_center_hz: f64,
    zigbee_rate_hz: f64,
    wifi: WifiTransmitter,
}

impl Default for Emulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Emulator {
    /// The paper's simulated attacker: baseband-aligned, raw-spectrum
    /// synthesis, threshold 3.0, 7 kept subcarriers, optimized alpha.
    pub fn new() -> Self {
        Emulator {
            spectral_mode: SpectralMode::BasebandAligned,
            synthesis_mode: SynthesisMode::RawSpectrum,
            coarse_threshold: 3.0,
            kept_subcarriers: 7,
            fixed_alpha: None,
            zigbee_center_hz: 2.435e9,
            zigbee_rate_hz: 4.0e6,
            wifi: WifiTransmitter::new(),
        }
    }

    /// Selects the spectral placement.
    pub fn with_spectral_mode(mut self, mode: SpectralMode) -> Self {
        self.spectral_mode = mode;
        self
    }

    /// Selects the synthesis path.
    pub fn with_synthesis_mode(mut self, mode: SynthesisMode) -> Self {
        self.synthesis_mode = mode;
        self
    }

    /// Overrides the coarse-estimation magnitude threshold (default 3.0,
    /// the value used in the paper's Table I walkthrough).
    pub fn with_coarse_threshold(mut self, threshold: f64) -> Self {
        self.coarse_threshold = threshold;
        self
    }

    /// Overrides the number of kept subcarriers (default 7 ≈ 2 MHz).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= count <= 64`.
    pub fn with_kept_subcarriers(mut self, count: usize) -> Self {
        assert!((1..=64).contains(&count), "kept subcarriers in 1..=64");
        self.kept_subcarriers = count;
        self
    }

    /// Uses a fixed QAM scaler instead of the global search (ablation).
    pub fn with_fixed_alpha(mut self, alpha: Option<f64>) -> Self {
        self.fixed_alpha = alpha;
        self
    }

    /// Retargets the victim's centre frequency (for channel-plan sweeps;
    /// the default is the paper's ZigBee channel 17 at 2435 MHz).
    ///
    /// # Panics
    ///
    /// Panics if `center_hz <= 0`.
    pub fn with_zigbee_center_hz(mut self, center_hz: f64) -> Self {
        assert!(center_hz > 0.0, "centre frequency must be positive");
        self.zigbee_center_hz = center_hz;
        self
    }

    /// The victim centre frequency this attacker assumes.
    pub fn zigbee_center_hz(&self) -> f64 {
        self.zigbee_center_hz
    }

    /// Runs the attack on an observed 4 MHz ZigBee waveform.
    ///
    /// The waveform is padded with zeros to a whole number of WiFi-symbol
    /// blocks (16 ZigBee-rate samples each).
    pub fn emulate(&self, observed_4mhz: &[Complex]) -> Emulation {
        let wide = match self.spectral_mode {
            SpectralMode::BasebandAligned => {
                interpolate(observed_4mhz, 5).expect("factor 5 is nonzero")
            }
            SpectralMode::CarrierAllocated => embed(
                observed_4mhz,
                self.zigbee_center_hz,
                self.zigbee_rate_hz,
                self.wifi.center_frequency_hz(),
                self.wifi.sample_rate_hz(),
            )
            .expect("factor 5 is nonzero"),
        };
        self.emulate_wideband(&wide)
    }

    /// Runs the attack on a waveform already expressed at the WiFi rate
    /// (20 MHz) with the ZigBee band at its configured spectral position.
    pub fn emulate_wideband(&self, observed_20mhz: &[Complex]) -> Emulation {
        // Pad to whole WiFi-symbol blocks; borrow directly when already
        // aligned instead of copying the full waveform.
        let padded;
        let wide: &[Complex] = if observed_20mhz.len().is_multiple_of(SYMBOL_LEN) {
            observed_20mhz
        } else {
            let target = (observed_20mhz.len() / SYMBOL_LEN + 1) * SYMBOL_LEN;
            let mut v = Vec::with_capacity(target);
            v.extend_from_slice(observed_20mhz);
            v.resize(target, Complex::ZERO);
            padded = v;
            &padded
        };
        let spectra = block_spectra(wide);
        let kept_bins = select_subcarriers(&spectra, self.coarse_threshold, self.kept_subcarriers);

        // Gather the chosen components of every block and quantize them with
        // one global scaler ("the attacker has to choose a scalar for QAM
        // constellation first").
        let mut chosen: Vec<Complex> = Vec::with_capacity(spectra.len() * kept_bins.len());
        for spec in &spectra {
            for &bin in &kept_bins {
                chosen.push(spec.components[bin]);
            }
        }
        let quantized = if chosen.iter().all(|c| c.norm() < 1e-12) {
            // Degenerate (e.g. all-zero input): nothing to emulate.
            QuantizedPoints {
                alpha: 1.0,
                points: vec![Complex::ZERO; chosen.len()],
                error: 0.0,
            }
        } else {
            match self.fixed_alpha {
                Some(a) => quantize_points_fixed(&chosen, a),
                None => quantize_points(&chosen, None),
            }
        };

        match self.synthesis_mode {
            SynthesisMode::RawSpectrum => self.synthesize_raw(&spectra, &kept_bins, &quantized),
            SynthesisMode::BitChain => self.synthesize_bitchain(&spectra, &kept_bins, &quantized),
        }
    }

    fn synthesize_raw(
        &self,
        spectra: &[crate::attack::spectrum::BlockSpectrum],
        kept_bins: &[usize],
        quantized: &QuantizedPoints,
    ) -> Emulation {
        let mut wave = SampleBuf::detached(spectra.len() * SYMBOL_LEN);
        let mut spectrum = [Complex::ZERO; FFT_SIZE];
        let mut scratch = SampleBuf::detached(FFT_SIZE);
        for (b, _) in spectra.iter().enumerate() {
            spectrum.fill(Complex::ZERO);
            for (j, &bin) in kept_bins.iter().enumerate() {
                spectrum[bin] = quantized.points[b * kept_bins.len() + j];
            }
            synthesize_symbol_into(&spectrum, &mut scratch, &mut wave);
        }
        Emulation {
            waveform_20mhz: wave.into_vec(),
            kept_bins: kept_bins.to_vec(),
            alpha: quantized.alpha,
            quantization_error: quantized.error,
            codeword_distance: None,
            wifi_data_bits: None,
            spectral_mode: self.spectral_mode,
        }
    }

    fn synthesize_bitchain(
        &self,
        spectra: &[crate::attack::spectrum::BlockSpectrum],
        kept_bins: &[usize],
        quantized: &QuantizedPoints,
    ) -> Emulation {
        // Express desired points on the normalized 64-QAM grid: the
        // quantized values are alpha * k, the mapper expects NORM_64QAM * k.
        let rescale = NORM_64QAM / quantized.alpha;
        let data_idx = data_subcarrier_indices();
        let mut desired = Vec::with_capacity(spectra.len() * data_idx.len());
        for b in 0..spectra.len() {
            let mut per_symbol = vec![Complex::ZERO; data_idx.len()];
            for (j, &bin) in kept_bins.iter().enumerate() {
                let sc = bin_to_subcarrier(bin);
                if let Some(pos) = data_idx.iter().position(|&k| k == sc) {
                    per_symbol[pos] = quantized.points[b * kept_bins.len() + j] * rescale;
                }
            }
            desired.extend(per_symbol);
        }
        let recovered = self.wifi.recover_bits_for_points(&desired);
        let wave = self.wifi.transmit_bits(&recovered.data_bits);
        Emulation {
            waveform_20mhz: wave,
            kept_bins: kept_bins.to_vec(),
            alpha: quantized.alpha,
            quantization_error: quantized.error,
            codeword_distance: Some(recovered.codeword_distance),
            wifi_data_bits: Some(recovered.data_bits),
            spectral_mode: self.spectral_mode,
        }
    }

    /// What the ZigBee receiver's 2 MHz front-end captures of the emulated
    /// transmission, back at 4 MHz.
    pub fn received_at_zigbee(&self, emulation: &Emulation) -> Vec<Complex> {
        let mut scratch = SampleBuf::detached(0);
        let mut out = SampleBuf::detached(emulation.waveform_20mhz.len() / 5 + 1);
        self.received_at_zigbee_into(emulation, &mut scratch, &mut out);
        out.into_vec()
    }

    /// [`Emulator::received_at_zigbee`] writing into a caller-supplied
    /// buffer (cleared first); `shift_scratch` is only touched in
    /// carrier-allocated mode, where the band must be moved to DC first.
    pub fn received_at_zigbee_into(
        &self,
        emulation: &Emulation,
        shift_scratch: &mut SampleBuf,
        out: &mut SampleBuf,
    ) {
        let (in_center, out_center) = match emulation.spectral_mode {
            SpectralMode::BasebandAligned => (self.zigbee_center_hz, self.zigbee_center_hz),
            SpectralMode::CarrierAllocated => {
                (self.wifi.center_frequency_hz(), self.zigbee_center_hz)
            }
        };
        let factor = (self.wifi.sample_rate_hz() / self.zigbee_rate_hz).round() as usize;
        let mut decimator = Decimator::new(factor).expect("factor 5 is nonzero");
        capture_into(
            &emulation.waveform_20mhz,
            in_center,
            self.wifi.sample_rate_hz(),
            out_center,
            &mut decimator,
            shift_scratch,
            out,
        );
    }
}

/// Output of one emulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Emulation {
    /// The emulated waveform at the WiFi sample rate (what the attacker's
    /// radio transmits).
    pub waveform_20mhz: Vec<Complex>,
    /// FFT bins the attack kept.
    pub kept_bins: Vec<usize>,
    /// Optimized (or fixed) QAM scaler.
    pub alpha: f64,
    /// Total frequency-domain quantization error (eq. (2) energy).
    pub quantization_error: f64,
    /// Hamming gap to the nearest codeword (bit-chain mode only).
    pub codeword_distance: Option<u32>,
    /// Recovered WiFi MAC bits (bit-chain mode only).
    pub wifi_data_bits: Option<Vec<u8>>,
    /// Spectral mode the emulation was produced under.
    pub spectral_mode: SpectralMode,
}

impl Emulation {
    /// Number of WiFi symbols in the emulated waveform.
    pub fn wifi_symbol_count(&self) -> usize {
        self.waveform_20mhz.len() / SYMBOL_LEN
    }
}

/// Convenience: which logical (signed) subcarrier indexes were kept.
pub fn kept_subcarrier_indices(emulation: &Emulation) -> Vec<i32> {
    emulation
        .kept_bins
        .iter()
        .map(|&b| bin_to_subcarrier(b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_dsp::metrics::{correlation, normalize_power};
    use ctc_zigbee::{Receiver, Transmitter};

    fn observed(payload: &[u8]) -> Vec<Complex> {
        Transmitter::new().transmit_payload(payload).unwrap()
    }

    #[test]
    fn emulation_produces_whole_wifi_symbols() {
        let em = Emulator::new().emulate(&observed(b"00000"));
        assert_eq!(em.waveform_20mhz.len() % SYMBOL_LEN, 0);
        assert!(em.wifi_symbol_count() > 0);
        assert_eq!(em.kept_bins.len(), 7);
    }

    #[test]
    fn every_emulated_block_has_cyclic_prefix() {
        let em = Emulator::new().emulate(&observed(b"77"));
        for sym in em.waveform_20mhz.chunks(SYMBOL_LEN) {
            for i in 0..16 {
                assert!((sym[i] - sym[64 + i]).norm() < 1e-9, "CP broken at {i}");
            }
        }
    }

    #[test]
    fn emulated_waveform_resembles_original() {
        // Fig. 5: the emulation is near-perfect except the first 0.8 µs of
        // every 4 µs block (the cyclic prefix). Check the body samples
        // (block positions >= 0.8 µs = 4 of 16 samples at 4 MHz) correlate
        // strongly, and that the CP region is the dominant error source.
        let orig = observed(b"00000");
        let emu = Emulator::new();
        let em = emu.emulate(&orig);
        let back = emu.received_at_zigbee(&em);
        let n = orig.len().min(back.len());
        let a = normalize_power(&orig[..n]);
        let b = normalize_power(&back[..n]);
        let body_idx: Vec<usize> = (64..n - 64).filter(|i| i % 16 >= 4).collect();
        let body_a: Vec<Complex> = body_idx.iter().map(|&i| a[i]).collect();
        let body_b: Vec<Complex> = body_idx.iter().map(|&i| b[i]).collect();
        let c_body = correlation(&body_a, &body_b);
        assert!(c_body > 0.9, "body correlation {c_body}");

        let mut cp_err = 0.0;
        let mut cp_n = 0usize;
        let mut body_err = 0.0;
        let mut body_n = 0usize;
        for i in 64..n - 64 {
            let e = (a[i] - b[i]).norm_sqr();
            if i % 16 < 4 {
                cp_err += e;
                cp_n += 1;
            } else {
                body_err += e;
                body_n += 1;
            }
        }
        let cp_rmse = (cp_err / cp_n as f64).sqrt();
        let body_rmse = (body_err / body_n as f64).sqrt();
        assert!(
            cp_rmse > 3.0 * body_rmse,
            "CP region should dominate the error: cp {cp_rmse} body {body_rmse}"
        );
    }

    #[test]
    fn emulated_waveform_decodes_at_zigbee_receiver() {
        // The headline claim: the emulated waveform passes ZigBee detection
        // and decoding (noiseless here; Table II adds AWGN).
        let emu = Emulator::new();
        let em = emu.emulate(&observed(b"00000"));
        let back = emu.received_at_zigbee(&em);
        let r = Receiver::usrp().receive(&back);
        assert_eq!(
            r.payload(),
            Some(&b"00000"[..]),
            "distances {:?}",
            r.hamming_distances
        );
    }

    #[test]
    fn chip_errors_stay_under_dsss_threshold() {
        // Fig. 7: emulated waveforms produce some chip errors per symbol but
        // all below the correlation threshold of 10.
        let emu = Emulator::new();
        let em = emu.emulate(&observed(b"00017"));
        let back = emu.received_at_zigbee(&em);
        let r = Receiver::usrp().receive(&back);
        let max_d = r.hamming_distances.iter().max().copied().unwrap_or(0);
        let nonzero = r.hamming_distances.iter().filter(|&&d| d > 0).count();
        assert!(max_d <= 10, "chip errors exceed threshold: {max_d}");
        assert!(nonzero > 0, "emulation should not be chip-perfect");
    }

    #[test]
    fn carrier_allocated_mode_also_decodes() {
        let emu = Emulator::new().with_spectral_mode(SpectralMode::CarrierAllocated);
        let em = emu.emulate(&observed(b"00000"));
        // Kept bins must sit in the data-subcarrier region around -16.
        for &b in &em.kept_bins {
            let sc = bin_to_subcarrier(b);
            assert!(
                (-22..=-10).contains(&sc),
                "bin {b} (subcarrier {sc}) off target"
            );
        }
        let back = emu.received_at_zigbee(&em);
        let r = Receiver::usrp().receive(&back);
        assert_eq!(r.payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn quantization_error_positive_and_alpha_found() {
        let em = Emulator::new().emulate(&observed(b"55555"));
        assert!(em.alpha > 0.0);
        assert!(em.quantization_error > 0.0);
        assert!(em.codeword_distance.is_none());
    }

    #[test]
    fn fixed_alpha_never_beats_optimal() {
        let orig = observed(b"123");
        let opt = Emulator::new().emulate(&orig);
        let fixed = Emulator::new()
            .with_fixed_alpha(Some(opt.alpha * 3.0))
            .emulate(&orig);
        assert!(opt.quantization_error <= fixed.quantization_error + 1e-9);
    }

    #[test]
    fn fewer_subcarriers_more_error() {
        let orig = observed(b"999");
        let seven = Emulator::new().emulate(&orig);
        let three = Emulator::new().with_kept_subcarriers(3).emulate(&orig);
        // Less spectrum kept -> worse time-domain fidelity at the receiver.
        let emu7 = Emulator::new();
        let emu3 = Emulator::new().with_kept_subcarriers(3);
        let b7 = emu7.received_at_zigbee(&seven);
        let b3 = emu3.received_at_zigbee(&three);
        let n = orig.len().min(b7.len()).min(b3.len());
        let a = normalize_power(&orig[..n]);
        let c7 = correlation(&a[64..n - 64], &normalize_power(&b7[..n])[64..n - 64]);
        let c3 = correlation(&a[64..n - 64], &normalize_power(&b3[..n])[64..n - 64]);
        assert!(c7 > c3, "7 bins ({c7}) should beat 3 bins ({c3})");
    }

    #[test]
    fn all_zero_input_produces_silence() {
        let em = Emulator::new().emulate(&vec![Complex::ZERO; 64]);
        assert!(em.waveform_20mhz.iter().all(|v| v.norm() < 1e-12));
    }
}
