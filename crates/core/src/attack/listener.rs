//! The attacker's channel-listening phase (paper Sec. IV).
//!
//! In time slot `t1` the WiFi attacker eavesdrops the ZigBee channel:
//! it must find where frames start and end inside a continuous sample
//! stream (the paper assumes "the WiFi attacker knows the beginning of the
//! received ZigBee time-domain waveform"; this module earns that assumption
//! with an energy detector). Before transmitting the emulation it performs
//! clear channel assessment per CSMA/CA — "if the WiFi attacker confirms
//! that ZigBee devices are not communicating, it emulates the received
//! ZigBee waveform".

use ctc_dsp::{simd, Complex};

/// One frame-shaped burst found in a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First sample index of the burst.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
}

impl Burst {
    /// Burst length in samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the burst is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Energy-based burst detector.
///
/// A sliding window of `window` samples is compared against
/// `threshold x noise_floor`; bursts shorter than `min_len` are discarded
/// and gaps shorter than `hang` samples do not terminate a burst (ZigBee's
/// O-QPSK envelope never actually drops mid-frame, but channel fades might).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDetector {
    /// Sliding-window length in samples.
    pub window: usize,
    /// Power ratio over the noise floor that declares activity.
    pub threshold: f64,
    /// Minimum burst length in samples.
    pub min_len: usize,
    /// Hang time: gap tolerated inside one burst.
    pub hang: usize,
}

impl Default for EnergyDetector {
    fn default() -> Self {
        EnergyDetector {
            window: 16,
            threshold: 4.0,
            min_len: 128,
            hang: 32,
        }
    }
}

impl EnergyDetector {
    /// Estimates the noise floor as the lower-quartile windowed power.
    fn noise_floor(&self, power: &[f64]) -> f64 {
        if power.is_empty() {
            return 0.0;
        }
        let mut sorted = power.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 4].max(1e-12)
    }

    /// Finds bursts in a recording.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn detect(&self, x: &[Complex]) -> Vec<Burst> {
        assert!(self.window > 0, "window must be positive");
        if x.len() < self.window {
            return Vec::new();
        }
        // Windowed power over a precomputed norm buffer.
        let mut norms = Vec::new();
        simd::norm_sqr_into(x, &mut norms);
        let mut power = Vec::with_capacity(x.len() - self.window + 1);
        let mut acc: f64 = norms[..self.window].iter().sum();
        power.push(acc / self.window as f64);
        for i in self.window..norms.len() {
            acc += norms[i] - norms[i - self.window];
            power.push(acc / self.window as f64);
        }
        let floor = self.noise_floor(&power);
        let gate = floor * self.threshold;

        let mut bursts = Vec::new();
        let mut start: Option<usize> = None;
        let mut last_active = 0usize;
        for (i, &p) in power.iter().enumerate() {
            if p > gate {
                if start.is_none() {
                    start = Some(i);
                }
                last_active = i;
            } else if let Some(s) = start {
                if i > last_active + self.hang {
                    let end = last_active + self.window;
                    if end - s >= self.min_len {
                        bursts.push(Burst { start: s, end });
                    }
                    start = None;
                }
            }
        }
        if let Some(s) = start {
            let end = (last_active + self.window).min(x.len());
            if end - s >= self.min_len {
                bursts.push(Burst { start: s, end });
            }
        }
        bursts
    }

    /// Starts a resumable streaming detection session with this
    /// configuration (see [`EnergyStream`]).
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn stream(&self) -> EnergyStream {
        EnergyStream::new(*self)
    }

    /// Extracts the first detected burst's samples — the attacker's recorded
    /// ZigBee waveform, ready for [`crate::attack::Emulator::emulate`] — with
    /// a guard margin of one detection window on each side so the frame's
    /// preamble edge is never clipped by detector latency.
    pub fn extract_first<'a>(&self, x: &'a [Complex]) -> Option<&'a [Complex]> {
        let b = *self.detect(x).first()?;
        let margin = 2 * self.window;
        let start = b.start.saturating_sub(margin);
        let end = (b.end + margin).min(x.len());
        Some(&x[start..end])
    }
}

/// Resumable, chunk-invariant burst detection over an unbounded stream.
///
/// [`EnergyDetector::detect`] gates against a noise floor taken from the
/// *whole* recording (a lower-quartile statistic) — fine for an attacker
/// replaying a capture, impossible for a gateway that must decide as
/// samples arrive. `EnergyStream` replaces that global statistic with a
/// causal one: an exponential moving average of the windowed power,
/// updated only while the channel is judged idle, so frames do not drag
/// the floor up. Every decision is a function of the sample prefix alone,
/// which makes the event sequence identical for **any** chunking of the
/// same stream — the property the streaming defense is tested against.
///
/// State is O(`window`): suitable for arbitrarily long streams.
///
/// # Examples
///
/// ```
/// use ctc_core::attack::EnergyDetector;
/// use ctc_dsp::Complex;
///
/// let mut stream = EnergyDetector::default().stream();
/// let quiet = vec![Complex::new(1e-3, 0.0); 400];
/// let loud = vec![Complex::ONE; 400];
/// assert!(stream.push(&quiet).is_empty());
/// let mut bursts = stream.push(&loud);
/// bursts.extend(stream.push(&quiet));
/// bursts.extend(stream.finish());
/// assert_eq!(bursts.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyStream {
    config: EnergyDetector,
    /// Bursts longer than this are force-closed (and flagged), bounding
    /// the memory of anything buffering the burst's samples downstream.
    max_burst: usize,
    /// Norms of the last `window` samples (ring buffer).
    ring: Vec<f64>,
    /// The floating-point scan state (ring cursor, running sum, EWMA noise
    /// floor, cached gate), advanced in bulk by [`simd::gated_power_scan`].
    scan: simd::GateScanState,
    /// Total samples consumed.
    total: usize,
    /// Scratch for per-sample activity flags from the scan kernel.
    active: Vec<u8>,
    /// True once the first windowed power has seeded the floor.
    floor_seeded: bool,
    /// Start (power index) of the currently open burst.
    start: Option<usize>,
    /// Most recent active power index.
    last_active: usize,
}

/// How a [`StreamedBurst`] was terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstEnd {
    /// The envelope dropped below the gate for longer than the hang time.
    Gap,
    /// The burst exceeded the stream's `max_burst` cap and was split.
    Overlong,
    /// [`EnergyStream::finish`] closed it at end of stream.
    EndOfStream,
}

/// A burst found by [`EnergyStream`], with how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedBurst {
    /// The burst, in absolute stream sample indices.
    pub burst: Burst,
    /// Why the burst closed.
    pub end_reason: BurstEnd,
}

impl StreamedBurst {
    /// True when the burst did not end cleanly on an idle gap — its tail
    /// (or the next burst's head) may be missing.
    pub fn truncated(&self) -> bool {
        self.end_reason != BurstEnd::Gap
    }
}

/// EWMA weight for the noise-floor tracker: long enough to ride out
/// fades, short enough to re-converge within a typical inter-frame gap.
const FLOOR_ALPHA: f64 = 1.0 / 64.0;

/// First index `>= pos` where `flags` stops equalling `cur` (or
/// `flags.len()`). The idle-channel hot loop spends its non-kernel time
/// here, and a naive `iter().position(..)` byte loop stays scalar (LLVM
/// does not vectorize early-exit searches against a runtime byte), so scan
/// a word at a time: any byte differing from the repeated-`cur` pattern
/// shows up in the XOR, and the first set bit names it.
#[inline]
fn run_end(flags: &[u8], pos: usize, cur: u8) -> usize {
    let rest = &flags[pos..];
    let pat = u64::from_ne_bytes([cur; 8]);
    let mut off = 0;
    for word in rest.chunks_exact(8) {
        let v = u64::from_ne_bytes(word.try_into().expect("chunks_exact yields 8 bytes"));
        if v != pat {
            let first = word
                .iter()
                .position(|&b| b != cur)
                .expect("some byte differs: v != pat");
            return pos + off + first;
        }
        off += 8;
    }
    match rest[off..].iter().position(|&b| b != cur) {
        Some(d) => pos + off + d,
        None => flags.len(),
    }
}

impl EnergyStream {
    /// Fresh session for the given detector configuration.
    ///
    /// # Panics
    ///
    /// Panics when `config.window == 0`.
    pub fn new(config: EnergyDetector) -> Self {
        assert!(config.window > 0, "window must be positive");
        EnergyStream {
            config,
            max_burst: usize::MAX,
            ring: Vec::with_capacity(config.window),
            scan: simd::GateScanState {
                slot: 0,
                acc: 0.0,
                floor: 0.0,
                gate: 0.0,
                threshold: config.threshold,
                alpha: FLOOR_ALPHA,
                floor_eps: 1e-12,
                inv_w: if config.window.is_power_of_two() {
                    1.0 / config.window as f64
                } else {
                    0.0
                },
            },
            total: 0,
            active: Vec::new(),
            floor_seeded: false,
            start: None,
            last_active: 0,
        }
    }

    /// Mean power of the current window; `acc / window`, via the exact
    /// reciprocal when the window is a power of two.
    #[inline]
    fn window_mean(&self) -> f64 {
        if self.scan.inv_w != 0.0 {
            self.scan.acc * self.scan.inv_w
        } else {
            self.scan.acc / self.config.window as f64
        }
    }

    /// Caps burst length; longer transmissions are split into consecutive
    /// bursts flagged [`BurstEnd::Overlong`].
    ///
    /// # Panics
    ///
    /// Panics when `max < config.min_len`.
    pub fn with_max_burst(mut self, max: usize) -> Self {
        assert!(
            max >= self.config.min_len,
            "max_burst must not be below min_len"
        );
        self.max_burst = max;
        self
    }

    /// The configuration this session was built from.
    pub fn config(&self) -> &EnergyDetector {
        &self.config
    }

    /// Total samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.total
    }

    /// Current noise-floor estimate (`None` before the first full window).
    pub fn noise_floor(&self) -> Option<f64> {
        self.floor_seeded.then_some(self.scan.floor)
    }

    /// Start index of the currently open (unfinished) burst, if any.
    pub fn open_burst_start(&self) -> Option<usize> {
        self.start
    }

    /// Consumes a batch of samples, handing each completed burst to `sink`.
    /// The single source of truth behind both the per-sample and chunk
    /// entry points, so every chunking of a stream takes the identical
    /// arithmetic path.
    ///
    /// Warm-path samples run through [`simd::gated_power_scan`] — the whole
    /// floating-point scan (`|x|²`, ring, window mean, gate compare, EWMA
    /// floor) in one kernel call — leaving only integer burst bookkeeping
    /// here, which `process_flags` does run-by-run rather than
    /// sample-by-sample.
    fn feed(&mut self, chunk: &[Complex], sink: &mut impl FnMut(StreamedBurst)) {
        let w = self.config.window;
        let mut idx = 0;
        // Cold path: fill the first window one sample at a time; the first
        // full window seeds the noise floor and is judged idle.
        while self.ring.len() < w && idx < chunk.len() {
            let n = chunk[idx].norm_sqr();
            self.ring.push(n);
            self.scan.acc += n;
            self.total += 1;
            idx += 1;
            if self.ring.len() == w {
                let p = self.window_mean();
                self.seed_floor(p.max(1e-12));
            }
        }
        let rest = &chunk[idx..];
        if rest.is_empty() {
            return;
        }
        let mut active = std::mem::take(&mut self.active);
        // Grow-only scratch: the kernel writes every flag it scans, so
        // stale bytes beyond previous chunks never get read.
        if active.len() < rest.len() {
            active.resize(rest.len(), 0);
        }
        simd::gated_power_scan(
            rest,
            &mut self.ring,
            &mut self.scan,
            &mut active[..rest.len()],
        );
        // Power index of the window completed by the first scanned sample.
        let base = self.total + 1 - w;
        self.total += rest.len();
        self.process_flags(&active[..rest.len()], base, sink);
        self.active = active;
    }

    /// Burst bookkeeping over a batch of activity flags, run-by-run: flag
    /// decisions only matter at run boundaries (a burst opens at the first
    /// active sample, hang expiry fires at one specific idle sample), so
    /// whole runs are skipped with a vectorizable byte scan instead of
    /// branching per sample. Decision-for-decision equivalent to feeding
    /// `on_decision` each flag in order (a property the tests pin down).
    fn process_flags(&mut self, flags: &[u8], base: usize, sink: &mut impl FnMut(StreamedBurst)) {
        let w = self.config.window;
        let mut pos = 0;
        while pos < flags.len() {
            let cur = flags[pos];
            let run_end = run_end(flags, pos, cur);
            if cur != 0 {
                // Active run [pos, run_end): opens a burst if none is open;
                // the cap may force-close (and immediately reopen) inside it.
                let mut s = *self.start.get_or_insert(base + pos);
                loop {
                    // First *active* index at which `i + w - s >= max_burst`
                    // (the cap threshold may have passed during a tolerated
                    // gap; then the first sample of this run closes).
                    let close = s
                        .saturating_add(self.max_burst.saturating_sub(w))
                        .saturating_sub(base)
                        .max(pos);
                    if close >= run_end {
                        break;
                    }
                    sink(StreamedBurst {
                        burst: Burst {
                            start: s,
                            end: base + close + w,
                        },
                        end_reason: BurstEnd::Overlong,
                    });
                    if close + 1 < run_end {
                        s = base + close + 1;
                        self.start = Some(s);
                    } else {
                        self.start = None;
                        break;
                    }
                }
                self.last_active = base + run_end - 1;
            } else if let Some(s) = self.start {
                // Idle run: hang expiry fires at the first idle index
                // beyond `last_active + hang` (which may be overdue if the
                // previous feed ended mid-gap).
                let expiry = (self.last_active + self.config.hang + 1)
                    .saturating_sub(base)
                    .max(pos);
                if expiry < run_end {
                    let end = self.last_active + w;
                    self.start = None;
                    if end - s >= self.config.min_len {
                        sink(StreamedBurst {
                            burst: Burst { start: s, end },
                            end_reason: BurstEnd::Gap,
                        });
                    }
                }
            }
            pos = run_end;
        }
    }

    /// Consumes one sample; returns a burst if this sample closed one.
    pub fn push_sample(&mut self, x: Complex) -> Option<StreamedBurst> {
        let mut out = None;
        self.feed(&[x], &mut |b| out = Some(b));
        out
    }

    /// Consumes a chunk, handing each completed burst to `sink` in order.
    ///
    /// This is the allocation-free bulk path the streaming gateway rides:
    /// one scan-kernel call, then run-length burst bookkeeping.
    pub fn push_each(&mut self, chunk: &[Complex], mut sink: impl FnMut(StreamedBurst)) {
        self.feed(chunk, &mut sink);
    }

    /// Consumes a chunk; returns the bursts completed inside it, in order.
    pub fn push(&mut self, chunk: &[Complex]) -> Vec<StreamedBurst> {
        let mut out = Vec::new();
        self.push_each(chunk, |b| out.push(b));
        out
    }

    /// Ends the stream: closes any open burst ([`BurstEnd::EndOfStream`])
    /// and resets the session for reuse.
    pub fn finish(&mut self) -> Option<StreamedBurst> {
        let out = self.start.take().and_then(|s| {
            let end = (self.last_active + self.config.window).min(self.total);
            (end - s >= self.config.min_len).then_some(StreamedBurst {
                burst: Burst { start: s, end },
                end_reason: BurstEnd::EndOfStream,
            })
        });
        // Keep the scratch allocation alive across sessions.
        let active = std::mem::take(&mut self.active);
        *self = EnergyStream::new(self.config).with_max_burst(self.max_burst);
        self.active = active;
        out
    }

    /// Burst bookkeeping on one active/idle decision, mirroring
    /// [`EnergyDetector::detect`]'s hang/min-len semantics. Integer-only:
    /// all floating point lives in the scan kernel, and nothing here feeds
    /// back into it (the floor never updates while active, and closing a
    /// burst touches no scan state). The production path is the run-length
    /// `process_flags`; this per-sample form is its test oracle.
    #[cfg(test)]
    fn on_decision(&mut self, i: usize, active: bool) -> Option<StreamedBurst> {
        if active {
            if self.start.is_none() {
                self.start = Some(i);
            }
            self.last_active = i;
            let s = self.start.expect("just set");
            if i + self.config.window - s >= self.max_burst {
                // Force-close: bound downstream buffering on continuous
                // transmissions. The follow-on burst opens immediately.
                let end = i + self.config.window;
                self.start = None;
                return Some(StreamedBurst {
                    burst: Burst { start: s, end },
                    end_reason: BurstEnd::Overlong,
                });
            }
        } else if let Some(s) = self.start {
            if i > self.last_active + self.config.hang {
                let end = self.last_active + self.config.window;
                self.start = None;
                if end - s >= self.config.min_len {
                    return Some(StreamedBurst {
                        burst: Burst { start: s, end },
                        end_reason: BurstEnd::Gap,
                    });
                }
            }
        }
        None
    }

    /// Seeds the floor and its cached gate from the first full window.
    fn seed_floor(&mut self, floor: f64) {
        self.scan.floor = floor;
        self.scan.gate = floor * self.config.threshold;
        self.floor_seeded = true;
    }
}

/// Clear channel assessment: energy detect over the most recent `window`
/// samples against an absolute power threshold (CSMA/CA mode 1).
///
/// Returns `true` when the channel is idle (safe to transmit the
/// emulation).
///
/// # Panics
///
/// Panics if `window == 0` or `x.len() < window`.
pub fn clear_channel_assessment(x: &[Complex], window: usize, threshold_power: f64) -> bool {
    assert!(window > 0, "window must be positive");
    assert!(x.len() >= window, "need at least one CCA window of samples");
    let p = simd::sum_norm_sqr(&x[x.len() - window..]) / window as f64;
    p < threshold_power
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_channel::noise::complex_gaussian;
    use ctc_zigbee::Transmitter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream_with_frame(gap: usize, snr_db: f64, seed: u64) -> (Vec<Complex>, usize, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = Transmitter::new().transmit_payload(b"00000").unwrap();
        let sigma2 = 10f64.powf(-snr_db / 10.0);
        let mut stream: Vec<Complex> = (0..gap)
            .map(|_| complex_gaussian(&mut rng, sigma2))
            .collect();
        let start = stream.len();
        stream.extend(
            frame
                .iter()
                .map(|&v| v + complex_gaussian(&mut rng, sigma2)),
        );
        let end = stream.len();
        stream.extend((0..gap).map(|_| complex_gaussian(&mut rng, sigma2)));
        (stream, start, end)
    }

    #[test]
    fn finds_single_frame() {
        let (stream, start, end) = stream_with_frame(500, 15.0, 1);
        let bursts = EnergyDetector::default().detect(&stream);
        assert_eq!(bursts.len(), 1, "bursts: {bursts:?}");
        let b = bursts[0];
        assert!(
            (b.start as i64 - start as i64).unsigned_abs() < 32,
            "start {b:?} vs {start}"
        );
        assert!(
            (b.end as i64 - end as i64).unsigned_abs() < 64,
            "end {b:?} vs {end}"
        );
    }

    #[test]
    fn extracted_burst_is_emulatable_and_decodable() {
        let (stream, _, _) = stream_with_frame(800, 20.0, 2);
        let det = EnergyDetector::default();
        let recorded = det.extract_first(&stream).expect("frame present");
        let emulator = crate::attack::Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(recorded));
        let r = ctc_zigbee::Receiver::usrp()
            .with_sync_search(96)
            .receive(&forged);
        assert_eq!(r.payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn finds_multiple_frames() {
        let (mut stream, _, _) = stream_with_frame(400, 15.0, 3);
        let (second, _, _) = stream_with_frame(400, 15.0, 4);
        stream.extend(second);
        let bursts = EnergyDetector::default().detect(&stream);
        assert_eq!(bursts.len(), 2, "bursts: {bursts:?}");
    }

    #[test]
    fn pure_noise_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise: Vec<Complex> = (0..4000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        assert!(EnergyDetector::default().detect(&noise).is_empty());
    }

    #[test]
    fn short_blips_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut stream: Vec<Complex> = (0..2000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        for sample in stream.iter_mut().take(940).skip(900) {
            *sample = Complex::ONE;
        }
        assert!(EnergyDetector::default().detect(&stream).is_empty());
    }

    #[test]
    fn cca_idle_on_noise_busy_on_frame() {
        let mut rng = StdRng::seed_from_u64(7);
        let noise: Vec<Complex> = (0..256).map(|_| complex_gaussian(&mut rng, 0.01)).collect();
        assert!(clear_channel_assessment(&noise, 128, 0.1));
        let frame = Transmitter::new().transmit_payload(b"busy").unwrap();
        assert!(!clear_channel_assessment(&frame, 128, 0.1));
    }

    #[test]
    fn burst_accessors() {
        let b = Burst { start: 10, end: 20 };
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }

    /// Streaming detection is invariant to how the stream is chunked.
    #[test]
    fn stream_chunking_invariance() {
        let (stream, _, _) = stream_with_frame(500, 15.0, 11);
        let det = EnergyDetector::default();
        let reference = {
            let mut s = det.stream();
            let mut bursts = s.push(&stream);
            bursts.extend(s.finish());
            bursts
        };
        assert_eq!(reference.len(), 1, "reference: {reference:?}");
        for chunk in [1usize, 7, 50, 333, 1024, stream.len()] {
            let mut s = det.stream();
            let mut bursts = Vec::new();
            for c in stream.chunks(chunk) {
                bursts.extend(s.push(c));
            }
            bursts.extend(s.finish());
            assert_eq!(bursts, reference, "chunk size {chunk}");
        }
    }

    /// The causal floor finds roughly the same burst as the batch
    /// (whole-recording quartile) detector on a well-margined recording.
    #[test]
    fn stream_agrees_with_batch_on_clean_recording() {
        let (stream, start, end) = stream_with_frame(600, 15.0, 12);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        let mut bursts = s.push(&stream);
        bursts.extend(s.finish());
        assert_eq!(bursts.len(), 1, "bursts: {bursts:?}");
        let b = bursts[0];
        assert_eq!(b.end_reason, BurstEnd::Gap);
        assert!(!b.truncated());
        assert!((b.burst.start as i64 - start as i64).unsigned_abs() < 32);
        assert!((b.burst.end as i64 - end as i64).unsigned_abs() < 64);
    }

    #[test]
    fn stream_noise_only_finds_nothing() {
        let mut rng = StdRng::seed_from_u64(13);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        for _ in 0..40 {
            let chunk: Vec<Complex> = (0..100).map(|_| complex_gaussian(&mut rng, 0.01)).collect();
            assert!(s.push(&chunk).is_empty());
        }
        assert!(s.finish().is_none());
        assert!(s.samples_seen() == 0, "finish resets the session");
    }

    #[test]
    fn stream_end_of_stream_truncates_open_burst() {
        let (stream, start, _) = stream_with_frame(500, 15.0, 14);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        // Cut the stream in the middle of the frame.
        let cut = start + 400;
        let mut bursts = s.push(&stream[..cut]);
        assert!(bursts.is_empty(), "burst still open at the cut");
        bursts.extend(s.finish());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].end_reason, BurstEnd::EndOfStream);
        assert!(bursts[0].truncated());
        assert!(bursts[0].burst.end <= cut);
    }

    #[test]
    fn overlong_burst_is_split_by_cap() {
        let det = EnergyDetector::default();
        let mut s = det.stream().with_max_burst(256);
        let quiet = vec![Complex::new(1e-3, 0.0); 300];
        let loud = vec![Complex::ONE; 1000];
        let mut bursts = s.push(&quiet);
        bursts.extend(s.push(&loud));
        bursts.extend(s.push(&quiet));
        bursts.extend(s.finish());
        assert!(bursts.len() >= 3, "split into >= 3 pieces: {bursts:?}");
        for b in &bursts[..bursts.len() - 1] {
            assert_eq!(b.end_reason, BurstEnd::Overlong);
            assert!(b.burst.len() <= 256);
        }
        // Pieces tile the transmission without gaps.
        for pair in bursts.windows(2) {
            assert!(pair[1].burst.start <= pair[0].burst.end);
        }
    }

    /// Run-length flag processing must make exactly the decisions the
    /// per-sample state machine makes, for any flag pattern, any chunk
    /// split, and any cap/hang/min-len configuration.
    #[test]
    fn process_flags_matches_per_sample_oracle() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(21);
        for case in 0..200 {
            let det = EnergyDetector {
                window: 16,
                threshold: 4.0,
                min_len: [1, 20, 128][case % 3],
                hang: [0, 3, 32][(case / 3) % 3],
            };
            let max_burst = [usize::MAX, 256, 140][(case / 9) % 3];
            // Bursty flag pattern: runs of correlated activity.
            let mut flags = Vec::with_capacity(500);
            let mut on = false;
            while flags.len() < 500 {
                let run = rng.gen_range(1usize..60);
                flags.extend(std::iter::repeat_n(u8::from(on), run));
                on = !on;
            }
            flags.truncate(500);

            let mut fast = det.stream().with_max_burst(max_burst);
            let mut slow = fast.clone();
            // Pretend both are warm at power index `base`.
            let base = 7usize;
            let mut got_fast = Vec::new();
            let mut done = 0;
            while done < flags.len() {
                let end = (done + rng.gen_range(1usize..97)).min(flags.len());
                fast.process_flags(&flags[done..end], base + done, &mut |b| got_fast.push(b));
                done = end;
            }
            let mut got_slow = Vec::new();
            for (k, &f) in flags.iter().enumerate() {
                if let Some(b) = slow.on_decision(base + k, f != 0) {
                    got_slow.push(b);
                }
            }
            assert_eq!(got_fast, got_slow, "case {case}");
            assert_eq!(fast.start, slow.start, "case {case}");
            assert_eq!(fast.last_active, slow.last_active, "case {case}");
        }
    }

    #[test]
    fn floor_tracks_noise_between_frames() {
        let (stream, _, _) = stream_with_frame(800, 20.0, 15);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        s.push(&stream);
        let floor = s.noise_floor().expect("floor estimated");
        let sigma2 = 10f64.powf(-20.0 / 10.0);
        assert!(
            floor > sigma2 / 4.0 && floor < sigma2 * 4.0,
            "floor {floor:.3e} vs noise {sigma2:.3e}"
        );
    }
}
