//! The attacker's channel-listening phase (paper Sec. IV).
//!
//! In time slot `t1` the WiFi attacker eavesdrops the ZigBee channel:
//! it must find where frames start and end inside a continuous sample
//! stream (the paper assumes "the WiFi attacker knows the beginning of the
//! received ZigBee time-domain waveform"; this module earns that assumption
//! with an energy detector). Before transmitting the emulation it performs
//! clear channel assessment per CSMA/CA — "if the WiFi attacker confirms
//! that ZigBee devices are not communicating, it emulates the received
//! ZigBee waveform".

use ctc_dsp::Complex;

/// One frame-shaped burst found in a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First sample index of the burst.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
}

impl Burst {
    /// Burst length in samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the burst is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Energy-based burst detector.
///
/// A sliding window of `window` samples is compared against
/// `threshold x noise_floor`; bursts shorter than `min_len` are discarded
/// and gaps shorter than `hang` samples do not terminate a burst (ZigBee's
/// O-QPSK envelope never actually drops mid-frame, but channel fades might).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDetector {
    /// Sliding-window length in samples.
    pub window: usize,
    /// Power ratio over the noise floor that declares activity.
    pub threshold: f64,
    /// Minimum burst length in samples.
    pub min_len: usize,
    /// Hang time: gap tolerated inside one burst.
    pub hang: usize,
}

impl Default for EnergyDetector {
    fn default() -> Self {
        EnergyDetector {
            window: 16,
            threshold: 4.0,
            min_len: 128,
            hang: 32,
        }
    }
}

impl EnergyDetector {
    /// Estimates the noise floor as the lower-quartile windowed power.
    fn noise_floor(&self, power: &[f64]) -> f64 {
        if power.is_empty() {
            return 0.0;
        }
        let mut sorted = power.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 4].max(1e-12)
    }

    /// Finds bursts in a recording.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn detect(&self, x: &[Complex]) -> Vec<Burst> {
        assert!(self.window > 0, "window must be positive");
        if x.len() < self.window {
            return Vec::new();
        }
        // Windowed power.
        let mut power = Vec::with_capacity(x.len() - self.window + 1);
        let mut acc: f64 = x[..self.window].iter().map(|v| v.norm_sqr()).sum();
        power.push(acc / self.window as f64);
        for i in self.window..x.len() {
            acc += x[i].norm_sqr() - x[i - self.window].norm_sqr();
            power.push(acc / self.window as f64);
        }
        let floor = self.noise_floor(&power);
        let gate = floor * self.threshold;

        let mut bursts = Vec::new();
        let mut start: Option<usize> = None;
        let mut last_active = 0usize;
        for (i, &p) in power.iter().enumerate() {
            if p > gate {
                if start.is_none() {
                    start = Some(i);
                }
                last_active = i;
            } else if let Some(s) = start {
                if i > last_active + self.hang {
                    let end = last_active + self.window;
                    if end - s >= self.min_len {
                        bursts.push(Burst { start: s, end });
                    }
                    start = None;
                }
            }
        }
        if let Some(s) = start {
            let end = (last_active + self.window).min(x.len());
            if end - s >= self.min_len {
                bursts.push(Burst { start: s, end });
            }
        }
        bursts
    }

    /// Starts a resumable streaming detection session with this
    /// configuration (see [`EnergyStream`]).
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn stream(&self) -> EnergyStream {
        EnergyStream::new(*self)
    }

    /// Extracts the first detected burst's samples — the attacker's recorded
    /// ZigBee waveform, ready for [`crate::attack::Emulator::emulate`] — with
    /// a guard margin of one detection window on each side so the frame's
    /// preamble edge is never clipped by detector latency.
    pub fn extract_first<'a>(&self, x: &'a [Complex]) -> Option<&'a [Complex]> {
        let b = *self.detect(x).first()?;
        let margin = 2 * self.window;
        let start = b.start.saturating_sub(margin);
        let end = (b.end + margin).min(x.len());
        Some(&x[start..end])
    }
}

/// Resumable, chunk-invariant burst detection over an unbounded stream.
///
/// [`EnergyDetector::detect`] gates against a noise floor taken from the
/// *whole* recording (a lower-quartile statistic) — fine for an attacker
/// replaying a capture, impossible for a gateway that must decide as
/// samples arrive. `EnergyStream` replaces that global statistic with a
/// causal one: an exponential moving average of the windowed power,
/// updated only while the channel is judged idle, so frames do not drag
/// the floor up. Every decision is a function of the sample prefix alone,
/// which makes the event sequence identical for **any** chunking of the
/// same stream — the property the streaming defense is tested against.
///
/// State is O(`window`): suitable for arbitrarily long streams.
///
/// # Examples
///
/// ```
/// use ctc_core::attack::EnergyDetector;
/// use ctc_dsp::Complex;
///
/// let mut stream = EnergyDetector::default().stream();
/// let quiet = vec![Complex::new(1e-3, 0.0); 400];
/// let loud = vec![Complex::ONE; 400];
/// assert!(stream.push(&quiet).is_empty());
/// let mut bursts = stream.push(&loud);
/// bursts.extend(stream.push(&quiet));
/// bursts.extend(stream.finish());
/// assert_eq!(bursts.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyStream {
    config: EnergyDetector,
    /// Bursts longer than this are force-closed (and flagged), bounding
    /// the memory of anything buffering the burst's samples downstream.
    max_burst: usize,
    /// Norms of the last `window` samples (ring buffer).
    ring: Vec<f64>,
    /// Running sum of the ring.
    acc: f64,
    /// Total samples consumed.
    total: usize,
    /// Causal noise-floor estimate; `None` until the first full window.
    floor: Option<f64>,
    /// Start (power index) of the currently open burst.
    start: Option<usize>,
    /// Most recent active power index.
    last_active: usize,
}

/// How a [`StreamedBurst`] was terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstEnd {
    /// The envelope dropped below the gate for longer than the hang time.
    Gap,
    /// The burst exceeded the stream's `max_burst` cap and was split.
    Overlong,
    /// [`EnergyStream::finish`] closed it at end of stream.
    EndOfStream,
}

/// A burst found by [`EnergyStream`], with how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedBurst {
    /// The burst, in absolute stream sample indices.
    pub burst: Burst,
    /// Why the burst closed.
    pub end_reason: BurstEnd,
}

impl StreamedBurst {
    /// True when the burst did not end cleanly on an idle gap — its tail
    /// (or the next burst's head) may be missing.
    pub fn truncated(&self) -> bool {
        self.end_reason != BurstEnd::Gap
    }
}

/// EWMA weight for the noise-floor tracker: long enough to ride out
/// fades, short enough to re-converge within a typical inter-frame gap.
const FLOOR_ALPHA: f64 = 1.0 / 64.0;

impl EnergyStream {
    /// Fresh session for the given detector configuration.
    ///
    /// # Panics
    ///
    /// Panics when `config.window == 0`.
    pub fn new(config: EnergyDetector) -> Self {
        assert!(config.window > 0, "window must be positive");
        EnergyStream {
            config,
            max_burst: usize::MAX,
            ring: Vec::with_capacity(config.window),
            acc: 0.0,
            total: 0,
            floor: None,
            start: None,
            last_active: 0,
        }
    }

    /// Caps burst length; longer transmissions are split into consecutive
    /// bursts flagged [`BurstEnd::Overlong`].
    ///
    /// # Panics
    ///
    /// Panics when `max < config.min_len`.
    pub fn with_max_burst(mut self, max: usize) -> Self {
        assert!(
            max >= self.config.min_len,
            "max_burst must not be below min_len"
        );
        self.max_burst = max;
        self
    }

    /// The configuration this session was built from.
    pub fn config(&self) -> &EnergyDetector {
        &self.config
    }

    /// Total samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.total
    }

    /// Current noise-floor estimate (`None` before the first full window).
    pub fn noise_floor(&self) -> Option<f64> {
        self.floor
    }

    /// Start index of the currently open (unfinished) burst, if any.
    pub fn open_burst_start(&self) -> Option<usize> {
        self.start
    }

    /// Consumes one sample; returns a burst if this sample closed one.
    pub fn push_sample(&mut self, x: Complex) -> Option<StreamedBurst> {
        let w = self.config.window;
        let norm = x.norm_sqr();
        if self.ring.len() < w {
            self.ring.push(norm);
            self.acc += norm;
            self.total += 1;
            if self.ring.len() < w {
                return None;
            }
            // First full window: power index 0.
            return self.on_power(0, self.acc / w as f64);
        }
        let slot = self.total % w;
        self.acc += norm - self.ring[slot];
        self.ring[slot] = norm;
        self.total += 1;
        let i = self.total - w; // power index of the window just completed
        self.on_power(i, self.acc / w as f64)
    }

    /// Consumes a chunk; returns the bursts completed inside it, in order.
    pub fn push(&mut self, chunk: &[Complex]) -> Vec<StreamedBurst> {
        chunk.iter().filter_map(|&x| self.push_sample(x)).collect()
    }

    /// Ends the stream: closes any open burst ([`BurstEnd::EndOfStream`])
    /// and resets the session for reuse.
    pub fn finish(&mut self) -> Option<StreamedBurst> {
        let out = self.start.take().and_then(|s| {
            let end = (self.last_active + self.config.window).min(self.total);
            (end - s >= self.config.min_len).then_some(StreamedBurst {
                burst: Burst { start: s, end },
                end_reason: BurstEnd::EndOfStream,
            })
        });
        *self = EnergyStream::new(self.config).with_max_burst(self.max_burst);
        out
    }

    /// The detection state machine, mirroring [`EnergyDetector::detect`]'s
    /// hang/min-len semantics on one windowed-power value.
    fn on_power(&mut self, i: usize, p: f64) -> Option<StreamedBurst> {
        let floor = match self.floor {
            None => {
                // First observation seeds the floor and is judged idle.
                self.floor = Some(p.max(1e-12));
                return None;
            }
            Some(f) => f,
        };
        let gate = floor * self.config.threshold;
        if p > gate {
            if self.start.is_none() {
                self.start = Some(i);
            }
            self.last_active = i;
            let s = self.start.expect("just set");
            if i + self.config.window - s >= self.max_burst {
                // Force-close: bound downstream buffering on continuous
                // transmissions. The follow-on burst opens immediately.
                let end = i + self.config.window;
                self.start = None;
                return Some(StreamedBurst {
                    burst: Burst { start: s, end },
                    end_reason: BurstEnd::Overlong,
                });
            }
        } else {
            // Idle: track the floor (frames never drag it up).
            self.floor = Some((floor + FLOOR_ALPHA * (p - floor)).max(1e-12));
            if let Some(s) = self.start {
                if i > self.last_active + self.config.hang {
                    let end = self.last_active + self.config.window;
                    self.start = None;
                    if end - s >= self.config.min_len {
                        return Some(StreamedBurst {
                            burst: Burst { start: s, end },
                            end_reason: BurstEnd::Gap,
                        });
                    }
                }
            }
        }
        None
    }
}

/// Clear channel assessment: energy detect over the most recent `window`
/// samples against an absolute power threshold (CSMA/CA mode 1).
///
/// Returns `true` when the channel is idle (safe to transmit the
/// emulation).
///
/// # Panics
///
/// Panics if `window == 0` or `x.len() < window`.
pub fn clear_channel_assessment(x: &[Complex], window: usize, threshold_power: f64) -> bool {
    assert!(window > 0, "window must be positive");
    assert!(x.len() >= window, "need at least one CCA window of samples");
    let p: f64 = x[x.len() - window..]
        .iter()
        .map(|v| v.norm_sqr())
        .sum::<f64>()
        / window as f64;
    p < threshold_power
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_channel::noise::complex_gaussian;
    use ctc_zigbee::Transmitter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream_with_frame(gap: usize, snr_db: f64, seed: u64) -> (Vec<Complex>, usize, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = Transmitter::new().transmit_payload(b"00000").unwrap();
        let sigma2 = 10f64.powf(-snr_db / 10.0);
        let mut stream: Vec<Complex> = (0..gap)
            .map(|_| complex_gaussian(&mut rng, sigma2))
            .collect();
        let start = stream.len();
        stream.extend(
            frame
                .iter()
                .map(|&v| v + complex_gaussian(&mut rng, sigma2)),
        );
        let end = stream.len();
        stream.extend((0..gap).map(|_| complex_gaussian(&mut rng, sigma2)));
        (stream, start, end)
    }

    #[test]
    fn finds_single_frame() {
        let (stream, start, end) = stream_with_frame(500, 15.0, 1);
        let bursts = EnergyDetector::default().detect(&stream);
        assert_eq!(bursts.len(), 1, "bursts: {bursts:?}");
        let b = bursts[0];
        assert!(
            (b.start as i64 - start as i64).unsigned_abs() < 32,
            "start {b:?} vs {start}"
        );
        assert!(
            (b.end as i64 - end as i64).unsigned_abs() < 64,
            "end {b:?} vs {end}"
        );
    }

    #[test]
    fn extracted_burst_is_emulatable_and_decodable() {
        let (stream, _, _) = stream_with_frame(800, 20.0, 2);
        let det = EnergyDetector::default();
        let recorded = det.extract_first(&stream).expect("frame present");
        let emulator = crate::attack::Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(recorded));
        let r = ctc_zigbee::Receiver::usrp()
            .with_sync_search(96)
            .receive(&forged);
        assert_eq!(r.payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn finds_multiple_frames() {
        let (mut stream, _, _) = stream_with_frame(400, 15.0, 3);
        let (second, _, _) = stream_with_frame(400, 15.0, 4);
        stream.extend(second);
        let bursts = EnergyDetector::default().detect(&stream);
        assert_eq!(bursts.len(), 2, "bursts: {bursts:?}");
    }

    #[test]
    fn pure_noise_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise: Vec<Complex> = (0..4000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        assert!(EnergyDetector::default().detect(&noise).is_empty());
    }

    #[test]
    fn short_blips_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut stream: Vec<Complex> = (0..2000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        for sample in stream.iter_mut().take(940).skip(900) {
            *sample = Complex::ONE;
        }
        assert!(EnergyDetector::default().detect(&stream).is_empty());
    }

    #[test]
    fn cca_idle_on_noise_busy_on_frame() {
        let mut rng = StdRng::seed_from_u64(7);
        let noise: Vec<Complex> = (0..256).map(|_| complex_gaussian(&mut rng, 0.01)).collect();
        assert!(clear_channel_assessment(&noise, 128, 0.1));
        let frame = Transmitter::new().transmit_payload(b"busy").unwrap();
        assert!(!clear_channel_assessment(&frame, 128, 0.1));
    }

    #[test]
    fn burst_accessors() {
        let b = Burst { start: 10, end: 20 };
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }

    /// Streaming detection is invariant to how the stream is chunked.
    #[test]
    fn stream_chunking_invariance() {
        let (stream, _, _) = stream_with_frame(500, 15.0, 11);
        let det = EnergyDetector::default();
        let reference = {
            let mut s = det.stream();
            let mut bursts = s.push(&stream);
            bursts.extend(s.finish());
            bursts
        };
        assert_eq!(reference.len(), 1, "reference: {reference:?}");
        for chunk in [1usize, 7, 50, 333, 1024, stream.len()] {
            let mut s = det.stream();
            let mut bursts = Vec::new();
            for c in stream.chunks(chunk) {
                bursts.extend(s.push(c));
            }
            bursts.extend(s.finish());
            assert_eq!(bursts, reference, "chunk size {chunk}");
        }
    }

    /// The causal floor finds roughly the same burst as the batch
    /// (whole-recording quartile) detector on a well-margined recording.
    #[test]
    fn stream_agrees_with_batch_on_clean_recording() {
        let (stream, start, end) = stream_with_frame(600, 15.0, 12);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        let mut bursts = s.push(&stream);
        bursts.extend(s.finish());
        assert_eq!(bursts.len(), 1, "bursts: {bursts:?}");
        let b = bursts[0];
        assert_eq!(b.end_reason, BurstEnd::Gap);
        assert!(!b.truncated());
        assert!((b.burst.start as i64 - start as i64).unsigned_abs() < 32);
        assert!((b.burst.end as i64 - end as i64).unsigned_abs() < 64);
    }

    #[test]
    fn stream_noise_only_finds_nothing() {
        let mut rng = StdRng::seed_from_u64(13);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        for _ in 0..40 {
            let chunk: Vec<Complex> = (0..100).map(|_| complex_gaussian(&mut rng, 0.01)).collect();
            assert!(s.push(&chunk).is_empty());
        }
        assert!(s.finish().is_none());
        assert!(s.samples_seen() == 0, "finish resets the session");
    }

    #[test]
    fn stream_end_of_stream_truncates_open_burst() {
        let (stream, start, _) = stream_with_frame(500, 15.0, 14);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        // Cut the stream in the middle of the frame.
        let cut = start + 400;
        let mut bursts = s.push(&stream[..cut]);
        assert!(bursts.is_empty(), "burst still open at the cut");
        bursts.extend(s.finish());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].end_reason, BurstEnd::EndOfStream);
        assert!(bursts[0].truncated());
        assert!(bursts[0].burst.end <= cut);
    }

    #[test]
    fn overlong_burst_is_split_by_cap() {
        let det = EnergyDetector::default();
        let mut s = det.stream().with_max_burst(256);
        let quiet = vec![Complex::new(1e-3, 0.0); 300];
        let loud = vec![Complex::ONE; 1000];
        let mut bursts = s.push(&quiet);
        bursts.extend(s.push(&loud));
        bursts.extend(s.push(&quiet));
        bursts.extend(s.finish());
        assert!(bursts.len() >= 3, "split into >= 3 pieces: {bursts:?}");
        for b in &bursts[..bursts.len() - 1] {
            assert_eq!(b.end_reason, BurstEnd::Overlong);
            assert!(b.burst.len() <= 256);
        }
        // Pieces tile the transmission without gaps.
        for pair in bursts.windows(2) {
            assert!(pair[1].burst.start <= pair[0].burst.end);
        }
    }

    #[test]
    fn floor_tracks_noise_between_frames() {
        let (stream, _, _) = stream_with_frame(800, 20.0, 15);
        let det = EnergyDetector::default();
        let mut s = det.stream();
        s.push(&stream);
        let floor = s.noise_floor().expect("floor estimated");
        let sigma2 = 10f64.powf(-20.0 / 10.0);
        assert!(
            floor > sigma2 / 4.0 && floor < sigma2 * 4.0,
            "floor {floor:.3e} vs noise {sigma2:.3e}"
        );
    }
}
