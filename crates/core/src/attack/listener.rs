//! The attacker's channel-listening phase (paper Sec. IV).
//!
//! In time slot `t1` the WiFi attacker eavesdrops the ZigBee channel:
//! it must find where frames start and end inside a continuous sample
//! stream (the paper assumes "the WiFi attacker knows the beginning of the
//! received ZigBee time-domain waveform"; this module earns that assumption
//! with an energy detector). Before transmitting the emulation it performs
//! clear channel assessment per CSMA/CA — "if the WiFi attacker confirms
//! that ZigBee devices are not communicating, it emulates the received
//! ZigBee waveform".

use ctc_dsp::Complex;

/// One frame-shaped burst found in a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First sample index of the burst.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
}

impl Burst {
    /// Burst length in samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the burst is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Energy-based burst detector.
///
/// A sliding window of `window` samples is compared against
/// `threshold x noise_floor`; bursts shorter than `min_len` are discarded
/// and gaps shorter than `hang` samples do not terminate a burst (ZigBee's
/// O-QPSK envelope never actually drops mid-frame, but channel fades might).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDetector {
    /// Sliding-window length in samples.
    pub window: usize,
    /// Power ratio over the noise floor that declares activity.
    pub threshold: f64,
    /// Minimum burst length in samples.
    pub min_len: usize,
    /// Hang time: gap tolerated inside one burst.
    pub hang: usize,
}

impl Default for EnergyDetector {
    fn default() -> Self {
        EnergyDetector {
            window: 16,
            threshold: 4.0,
            min_len: 128,
            hang: 32,
        }
    }
}

impl EnergyDetector {
    /// Estimates the noise floor as the lower-quartile windowed power.
    fn noise_floor(&self, power: &[f64]) -> f64 {
        if power.is_empty() {
            return 0.0;
        }
        let mut sorted = power.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 4].max(1e-12)
    }

    /// Finds bursts in a recording.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn detect(&self, x: &[Complex]) -> Vec<Burst> {
        assert!(self.window > 0, "window must be positive");
        if x.len() < self.window {
            return Vec::new();
        }
        // Windowed power.
        let mut power = Vec::with_capacity(x.len() - self.window + 1);
        let mut acc: f64 = x[..self.window].iter().map(|v| v.norm_sqr()).sum();
        power.push(acc / self.window as f64);
        for i in self.window..x.len() {
            acc += x[i].norm_sqr() - x[i - self.window].norm_sqr();
            power.push(acc / self.window as f64);
        }
        let floor = self.noise_floor(&power);
        let gate = floor * self.threshold;

        let mut bursts = Vec::new();
        let mut start: Option<usize> = None;
        let mut last_active = 0usize;
        for (i, &p) in power.iter().enumerate() {
            if p > gate {
                if start.is_none() {
                    start = Some(i);
                }
                last_active = i;
            } else if let Some(s) = start {
                if i > last_active + self.hang {
                    let end = last_active + self.window;
                    if end - s >= self.min_len {
                        bursts.push(Burst { start: s, end });
                    }
                    start = None;
                }
            }
        }
        if let Some(s) = start {
            let end = (last_active + self.window).min(x.len());
            if end - s >= self.min_len {
                bursts.push(Burst { start: s, end });
            }
        }
        bursts
    }

    /// Extracts the first detected burst's samples — the attacker's recorded
    /// ZigBee waveform, ready for [`crate::attack::Emulator::emulate`] — with
    /// a guard margin of one detection window on each side so the frame's
    /// preamble edge is never clipped by detector latency.
    pub fn extract_first<'a>(&self, x: &'a [Complex]) -> Option<&'a [Complex]> {
        let b = *self.detect(x).first()?;
        let margin = 2 * self.window;
        let start = b.start.saturating_sub(margin);
        let end = (b.end + margin).min(x.len());
        Some(&x[start..end])
    }
}

/// Clear channel assessment: energy detect over the most recent `window`
/// samples against an absolute power threshold (CSMA/CA mode 1).
///
/// Returns `true` when the channel is idle (safe to transmit the
/// emulation).
///
/// # Panics
///
/// Panics if `window == 0` or `x.len() < window`.
pub fn clear_channel_assessment(x: &[Complex], window: usize, threshold_power: f64) -> bool {
    assert!(window > 0, "window must be positive");
    assert!(x.len() >= window, "need at least one CCA window of samples");
    let p: f64 = x[x.len() - window..]
        .iter()
        .map(|v| v.norm_sqr())
        .sum::<f64>()
        / window as f64;
    p < threshold_power
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_channel::noise::complex_gaussian;
    use ctc_zigbee::Transmitter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream_with_frame(gap: usize, snr_db: f64, seed: u64) -> (Vec<Complex>, usize, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = Transmitter::new().transmit_payload(b"00000").unwrap();
        let sigma2 = 10f64.powf(-snr_db / 10.0);
        let mut stream: Vec<Complex> = (0..gap)
            .map(|_| complex_gaussian(&mut rng, sigma2))
            .collect();
        let start = stream.len();
        stream.extend(
            frame
                .iter()
                .map(|&v| v + complex_gaussian(&mut rng, sigma2)),
        );
        let end = stream.len();
        stream.extend((0..gap).map(|_| complex_gaussian(&mut rng, sigma2)));
        (stream, start, end)
    }

    #[test]
    fn finds_single_frame() {
        let (stream, start, end) = stream_with_frame(500, 15.0, 1);
        let bursts = EnergyDetector::default().detect(&stream);
        assert_eq!(bursts.len(), 1, "bursts: {bursts:?}");
        let b = bursts[0];
        assert!(
            (b.start as i64 - start as i64).unsigned_abs() < 32,
            "start {b:?} vs {start}"
        );
        assert!(
            (b.end as i64 - end as i64).unsigned_abs() < 64,
            "end {b:?} vs {end}"
        );
    }

    #[test]
    fn extracted_burst_is_emulatable_and_decodable() {
        let (stream, _, _) = stream_with_frame(800, 20.0, 2);
        let det = EnergyDetector::default();
        let recorded = det.extract_first(&stream).expect("frame present");
        let emulator = crate::attack::Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(recorded));
        let r = ctc_zigbee::Receiver::usrp()
            .with_sync_search(96)
            .receive(&forged);
        assert_eq!(r.payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn finds_multiple_frames() {
        let (mut stream, _, _) = stream_with_frame(400, 15.0, 3);
        let (second, _, _) = stream_with_frame(400, 15.0, 4);
        stream.extend(second);
        let bursts = EnergyDetector::default().detect(&stream);
        assert_eq!(bursts.len(), 2, "bursts: {bursts:?}");
    }

    #[test]
    fn pure_noise_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise: Vec<Complex> = (0..4000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        assert!(EnergyDetector::default().detect(&noise).is_empty());
    }

    #[test]
    fn short_blips_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut stream: Vec<Complex> = (0..2000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        for sample in stream.iter_mut().take(940).skip(900) {
            *sample = Complex::ONE;
        }
        assert!(EnergyDetector::default().detect(&stream).is_empty());
    }

    #[test]
    fn cca_idle_on_noise_busy_on_frame() {
        let mut rng = StdRng::seed_from_u64(7);
        let noise: Vec<Complex> = (0..256).map(|_| complex_gaussian(&mut rng, 0.01)).collect();
        assert!(clear_channel_assessment(&noise, 128, 0.1));
        let frame = Transmitter::new().transmit_payload(b"busy").unwrap();
        assert!(!clear_channel_assessment(&frame, 128, 0.1));
    }

    #[test]
    fn burst_accessors() {
        let b = Burst { start: 10, end: 20 };
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
    }
}
