//! A stealthier attacker: least-squares emulation over the *whole* WiFi
//! symbol, cyclic prefix included (extension beyond the paper).
//!
//! The paper's attacker FFTs the last 64 samples of each 80-sample block,
//! accepting that the transmitted cyclic prefix (a copy of the block tail)
//! replaces the first 0.8 µs of the real waveform — the largest distortion
//! the defense feeds on (Fig. 5, and the 4–8 chip errors of Fig. 7).
//!
//! But the CP constraint is *linear*: the transmitted block is
//! `s(n) = sum_k X_k φ_k(n)` where `φ_k` is the CP-extended IFFT basis of
//! subcarrier `k`. Choosing the kept coefficients to minimize
//! `sum_{n=0}^{79} |s(n) - z(n)|²` (all 80 samples, not just the body) is a
//! tiny complex least-squares problem per block. The arms-race experiment
//! measures how much of the defense's margin this recovers — and shows the
//! detector still wins, because the quantization error and the 7-subcarrier
//! truncation remain.

use crate::attack::quantizer::{quantize_points, quantize_points_fixed, QuantizedPoints};
use crate::attack::spectrum::{block_spectra, select_subcarriers};
use ctc_dsp::linalg::Matrix;
use ctc_dsp::Complex;
use ctc_wifi::ofdm::{synthesize_symbol, CP_LEN, FFT_SIZE, SYMBOL_LEN};

/// Builds the 80×K basis matrix mapping kept-subcarrier coefficients to the
/// CP-extended time-domain block.
fn cp_extended_basis(kept_bins: &[usize]) -> Matrix {
    Matrix::from_fn(SYMBOL_LEN, kept_bins.len(), |n, j| {
        let k = kept_bins[j] as f64;
        // Body sample index this output sample reproduces: CP copies the
        // last CP_LEN body samples.
        let body_n = if n < CP_LEN {
            (FFT_SIZE - CP_LEN + n) as f64
        } else {
            (n - CP_LEN) as f64
        };
        Complex::cis(2.0 * std::f64::consts::PI * k * body_n / FFT_SIZE as f64) / FFT_SIZE as f64
    })
}

/// Configuration of the least-squares attacker.
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquaresEmulator {
    coarse_threshold: f64,
    kept_subcarriers: usize,
    fixed_alpha: Option<f64>,
}

impl Default for LeastSquaresEmulator {
    fn default() -> Self {
        Self::new()
    }
}

impl LeastSquaresEmulator {
    /// Defaults matching [`crate::attack::Emulator::new`]: threshold 3.0,
    /// 7 kept subcarriers, optimized alpha.
    pub fn new() -> Self {
        LeastSquaresEmulator {
            coarse_threshold: 3.0,
            kept_subcarriers: 7,
            fixed_alpha: None,
        }
    }

    /// Overrides the number of kept subcarriers.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= count <= 64`.
    pub fn with_kept_subcarriers(mut self, count: usize) -> Self {
        assert!((1..=64).contains(&count), "kept subcarriers in 1..=64");
        self.kept_subcarriers = count;
        self
    }

    /// Uses a fixed QAM scaler instead of the global search.
    pub fn with_fixed_alpha(mut self, alpha: Option<f64>) -> Self {
        self.fixed_alpha = alpha;
        self
    }

    /// Runs the stealthier attack on a 20 MHz waveform (the ZigBee
    /// recording after ×5 interpolation, as produced inside
    /// [`crate::attack::Emulator::emulate`]).
    ///
    /// Returns the emulated 20 MHz waveform plus the quantizer diagnostics.
    pub fn emulate_wideband(&self, observed_20mhz: &[Complex]) -> LeastSquaresEmulation {
        let mut wide = observed_20mhz.to_vec();
        while !wide.len().is_multiple_of(SYMBOL_LEN) {
            wide.push(Complex::ZERO);
        }
        // Subcarrier selection identical to the baseline attack so the two
        // are comparable.
        let spectra = block_spectra(&wide);
        let kept_bins = select_subcarriers(&spectra, self.coarse_threshold, self.kept_subcarriers);
        let basis = cp_extended_basis(&kept_bins);

        // Per-block least-squares fit of the kept coefficients.
        let mut coefficients: Vec<Complex> =
            Vec::with_capacity(wide.len() / SYMBOL_LEN * kept_bins.len());
        for block in wide.chunks(SYMBOL_LEN) {
            let x = basis
                .least_squares(block)
                .expect("CP-extended Fourier columns are independent");
            coefficients.extend(x);
        }

        // Quantize all coefficients with one global scaler, like the
        // baseline.
        let quantized: QuantizedPoints = if coefficients.iter().all(|c| c.norm() < 1e-12) {
            QuantizedPoints {
                alpha: 1.0,
                points: vec![Complex::ZERO; coefficients.len()],
                error: 0.0,
            }
        } else {
            match self.fixed_alpha {
                Some(a) => quantize_points_fixed(&coefficients, a),
                None => quantize_points(&coefficients, None),
            }
        };

        // Synthesize.
        let blocks = wide.len() / SYMBOL_LEN;
        let mut wave = Vec::with_capacity(wide.len());
        for b in 0..blocks {
            let mut spectrum = vec![Complex::ZERO; FFT_SIZE];
            for (j, &bin) in kept_bins.iter().enumerate() {
                spectrum[bin] = quantized.points[b * kept_bins.len() + j];
            }
            wave.extend(synthesize_symbol(&spectrum));
        }
        LeastSquaresEmulation {
            waveform_20mhz: wave,
            kept_bins,
            alpha: quantized.alpha,
            quantization_error: quantized.error,
        }
    }

    /// Convenience: full pipeline from the 4 MHz recording, mirroring
    /// [`crate::attack::Emulator::emulate`] in baseband-aligned mode.
    pub fn emulate(&self, observed_4mhz: &[Complex]) -> LeastSquaresEmulation {
        let wide = ctc_dsp::resample::interpolate(observed_4mhz, 5).expect("factor 5");
        self.emulate_wideband(&wide)
    }

    /// The ZigBee front-end's view of the emulated waveform
    /// (baseband-aligned mode).
    pub fn received_at_zigbee(&self, emulation: &LeastSquaresEmulation) -> Vec<Complex> {
        ctc_dsp::resample::decimate(&emulation.waveform_20mhz, 5).expect("factor 5")
    }
}

/// Output of the least-squares attack.
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquaresEmulation {
    /// Emulated waveform at 20 MHz.
    pub waveform_20mhz: Vec<Complex>,
    /// Kept FFT bins.
    pub kept_bins: Vec<usize>,
    /// QAM scaler used.
    pub alpha: f64,
    /// Total quantization error.
    pub quantization_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Emulator;
    use crate::defense::features_from_reception;
    use ctc_dsp::metrics::{normalize_power, rms_error};
    use ctc_zigbee::{Receiver, Transmitter};

    fn observed() -> Vec<Complex> {
        Transmitter::new().transmit_payload(b"00000").unwrap()
    }

    #[test]
    fn basis_columns_respect_cp_structure() {
        let basis = cp_extended_basis(&[0, 1, 5, 63]);
        for j in 0..4 {
            for n in 0..CP_LEN {
                let cp = basis[(n, j)];
                let tail = basis[(FFT_SIZE - CP_LEN + n + CP_LEN, j)];
                assert!((cp - tail).norm() < 1e-12, "CP copy broken at ({n},{j})");
            }
        }
    }

    #[test]
    fn ls_attack_still_decodes() {
        let emu = LeastSquaresEmulator::new();
        let em = emu.emulate(&observed());
        let back = emu.received_at_zigbee(&em);
        let r = Receiver::usrp().receive(&back);
        assert_eq!(r.payload(), Some(&b"00000"[..]));
    }

    #[test]
    fn ls_attack_reduces_cp_region_error() {
        let orig = observed();
        let baseline = Emulator::new();
        let b_em = baseline.emulate(&orig);
        let b_back = baseline.received_at_zigbee(&b_em);

        let ls = LeastSquaresEmulator::new();
        let l_em = ls.emulate(&orig);
        let l_back = ls.received_at_zigbee(&l_em);

        let n = orig.len().min(b_back.len()).min(l_back.len());
        let a = normalize_power(&orig[..n]);
        let b = normalize_power(&b_back[..n]);
        let l = normalize_power(&l_back[..n]);
        // Compare CP-region samples only (block positions 0..4 of 16).
        let idx: Vec<usize> = (64..n - 64).filter(|i| i % 16 < 4).collect();
        let pick = |w: &[Complex]| idx.iter().map(|&i| w[i]).collect::<Vec<_>>();
        let base_err = rms_error(&pick(&a), &pick(&b));
        let ls_err = rms_error(&pick(&a), &pick(&l));
        assert!(
            ls_err < base_err * 0.8,
            "LS should cut CP-region error: baseline {base_err}, LS {ls_err}"
        );
    }

    #[test]
    fn ls_attack_lowers_detection_statistic_but_not_below_gap() {
        let orig = observed();
        let baseline = Emulator::new();
        let b_back = baseline.received_at_zigbee(&baseline.emulate(&orig));
        let ls = LeastSquaresEmulator::new();
        let l_back = ls.received_at_zigbee(&ls.emulate(&orig));

        let rx = Receiver::usrp();
        let base_de = features_from_reception(&rx.receive(&b_back))
            .unwrap()
            .de_squared_ideal();
        let ls_de = features_from_reception(&rx.receive(&l_back))
            .unwrap()
            .de_squared_ideal();
        let zig_de = features_from_reception(&rx.receive(&orig))
            .unwrap()
            .de_squared_ideal();
        assert!(
            ls_de < base_de,
            "LS attack should be stealthier: {ls_de} vs baseline {base_de}"
        );
        assert!(
            ls_de > zig_de * 5.0,
            "but still detectable: LS {ls_de} vs authentic {zig_de}"
        );
    }

    #[test]
    fn kept_bins_match_baseline_attack() {
        let orig = observed();
        let b = Emulator::new().emulate(&orig);
        let l = LeastSquaresEmulator::new().emulate(&orig);
        assert_eq!(b.kept_bins, l.kept_bins);
    }

    #[test]
    fn zero_input_is_silent() {
        let em = LeastSquaresEmulator::new().emulate(&vec![Complex::ZERO; 64]);
        assert!(em.waveform_20mhz.iter().all(|v| v.norm() < 1e-12));
    }
}
