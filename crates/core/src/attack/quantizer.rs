//! QAM quantization with an optimized constellation scaler (paper
//! Sec. V-A3, eq. (4)).
//!
//! By Parseval (eq. (2)) the time-domain emulation error equals the total
//! frequency-domain quantization deviation, so the attacker picks the scale
//! `alpha >= 0` that minimizes
//!
//! ```text
//! sum_k | X̂(k) - alpha * Q_alpha(X̂(k)) |^2
//! ```
//!
//! where `Q_alpha` snaps to the 64-QAM grid `{±1,±3,±5,±7}^2`. The grid is
//! discrete, so the objective is piecewise smooth in `alpha`; the paper uses
//! "a numerical global research method" — here a coarse grid sweep with
//! golden-section-style refinement around the best cell.

use ctc_dsp::Complex;
use ctc_wifi::qam::quantize_to_grid;

/// Result of the scaler optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPoints {
    /// The optimized scale factor.
    pub alpha: f64,
    /// Quantized points `alpha * Q(X̂/alpha)`, aligned with the input.
    pub points: Vec<Complex>,
    /// Total squared deviation at the optimum.
    pub error: f64,
}

fn total_error(points: &[Complex], alpha: f64) -> f64 {
    points
        .iter()
        .map(|&p| (p - quantize_to_grid(p, alpha)).norm_sqr())
        .sum()
}

/// Finds the optimal scaler over `(0, alpha_max]` and quantizes the points.
///
/// `alpha_max` defaults (when `None`) to the largest |component| of the
/// inputs — beyond that every point maps to an inner grid cell and the error
/// only grows.
///
/// # Panics
///
/// Panics if `points` is empty or all points are zero.
///
/// # Examples
///
/// ```
/// use ctc_core::attack::quantizer::quantize_points;
/// use ctc_dsp::Complex;
/// // Points already on a scaled grid quantize exactly.
/// let alpha = 1.7;
/// let pts: Vec<Complex> = [(1.0, 3.0), (-5.0, 7.0), (3.0, -1.0)]
///     .iter().map(|&(i, q)| Complex::new(i * alpha, q * alpha)).collect();
/// let q = quantize_points(&pts, None);
/// assert!(q.error < 1e-4);
/// assert!((q.alpha - alpha).abs() < 0.01);
/// ```
pub fn quantize_points(points: &[Complex], alpha_max: Option<f64>) -> QuantizedPoints {
    assert!(!points.is_empty(), "need at least one point to quantize");
    let biggest = points
        .iter()
        .map(|p| p.re.abs().max(p.im.abs()))
        .fold(0.0f64, f64::max);
    assert!(biggest > 0.0, "all points are zero; nothing to scale");
    let hi = alpha_max.unwrap_or(biggest).max(1e-9);
    let lo = hi / 2048.0;

    // Coarse sweep.
    const COARSE: usize = 512;
    let mut best_alpha = lo;
    let mut best_err = f64::INFINITY;
    for i in 0..=COARSE {
        let a = lo + (hi - lo) * i as f64 / COARSE as f64;
        let e = total_error(points, a);
        if e < best_err {
            best_err = e;
            best_alpha = a;
        }
    }
    // Refine around the best coarse cell.
    let step = (hi - lo) / COARSE as f64;
    let r_lo = (best_alpha - step).max(lo);
    let r_hi = best_alpha + step;
    const FINE: usize = 256;
    for i in 0..=FINE {
        let a = r_lo + (r_hi - r_lo) * i as f64 / FINE as f64;
        let e = total_error(points, a);
        if e < best_err {
            best_err = e;
            best_alpha = a;
        }
    }

    let quantized: Vec<Complex> = points
        .iter()
        .map(|&p| quantize_to_grid(p, best_alpha))
        .collect();
    QuantizedPoints {
        alpha: best_alpha,
        points: quantized,
        error: best_err,
    }
}

/// Quantizes with a fixed scaler (the ablation baseline: how much the
/// optimization of eq. (4) buys).
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn quantize_points_fixed(points: &[Complex], alpha: f64) -> QuantizedPoints {
    assert!(alpha > 0.0, "alpha must be positive");
    let quantized: Vec<Complex> = points.iter().map(|&p| quantize_to_grid(p, alpha)).collect();
    let error = total_error(points, alpha);
    QuantizedPoints {
        alpha,
        points: quantized,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_grid_recovers_alpha() {
        let alpha = 2.5;
        let pts: Vec<Complex> = [(1.0, -1.0), (7.0, 3.0), (-5.0, 5.0), (3.0, -7.0)]
            .iter()
            .map(|&(i, q)| Complex::new(i * alpha, q * alpha))
            .collect();
        let q = quantize_points(&pts, None);
        assert!(q.error < 1e-4, "error {}", q.error);
        assert!((q.alpha - alpha).abs() < 0.05, "alpha {}", q.alpha);
        for (got, want) in q.points.iter().zip(&pts) {
            assert!((*got - *want).norm() < 1e-2, "{got} vs {want}");
        }
    }

    #[test]
    fn optimal_beats_fixed() {
        let pts: Vec<Complex> = (0..16)
            .map(|i| {
                Complex::new(
                    (i as f64 * 1.37).sin() * 20.0,
                    (i as f64 * 0.73).cos() * 20.0,
                )
            })
            .collect();
        let opt = quantize_points(&pts, None);
        for fixed in [0.5, 1.0, 2.0, 5.0, 10.0] {
            let f = quantize_points_fixed(&pts, fixed);
            assert!(
                opt.error <= f.error + 1e-9,
                "fixed alpha {fixed} beat the optimizer: {} < {}",
                f.error,
                opt.error
            );
        }
    }

    #[test]
    fn single_point_is_hit_exactly() {
        // One point can always be approximated within a half grid cell; the
        // optimizer should do much better by scaling.
        let q = quantize_points(&[Complex::new(4.2, -1.3)], None);
        assert!(q.error < 0.05, "error {}", q.error);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_points_panics() {
        let _ = quantize_points(&[], None);
    }

    #[test]
    #[should_panic(expected = "all points are zero")]
    fn zero_points_panics() {
        let _ = quantize_points(&[Complex::ZERO; 3], None);
    }

    #[test]
    fn fixed_quantizer_error_is_sum_of_point_errors() {
        let pts = vec![Complex::new(1.4, 0.6), Complex::new(-2.0, 3.1)];
        let q = quantize_points_fixed(&pts, 1.0);
        let manual: f64 = pts
            .iter()
            .zip(&q.points)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        assert!((q.error - manual).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn quantized_points_live_on_the_grid(
            values in proptest::collection::vec(-30.0f64..30.0, 4..24),
        ) {
            let pts: Vec<Complex> = values.chunks(2)
                .filter(|c| c.len() == 2)
                .map(|c| Complex::new(c[0], c[1] + 0.1))
                .collect();
            prop_assume!(pts.iter().any(|p| p.norm() > 1e-6));
            let q = quantize_points(&pts, None);
            for p in &q.points {
                let i = p.re / q.alpha;
                let qv = p.im / q.alpha;
                // Each coordinate is an odd integer in [-7, 7].
                prop_assert!((i.rem_euclid(2.0) - 1.0).abs() < 1e-6);
                prop_assert!((qv.rem_euclid(2.0) - 1.0).abs() < 1e-6);
                prop_assert!(i.abs() <= 7.0 + 1e-6 && qv.abs() <= 7.0 + 1e-6);
            }
        }
    }
}
