//! The full-stack attack (extension beyond the paper): one RF transmission
//! that is simultaneously a **standards-complete 802.11g frame** — PLCP
//! preamble, SIGNAL field, SERVICE bits, tail bits, everything a stock WiFi
//! receiver expects — **and** a ZigBee controller.
//!
//! The paper's attacker (Sec. V) emits bare OFDM payload symbols; a WiFi
//! sniffer would see malformed transmissions, which is itself a detection
//! hint. This attacker instead *shapes a legal frame around the emulation*:
//!
//! 1. The ZigBee band covers only 7 of the 48 data subcarriers, so the
//!    coded-bit positions feeding the other 41 are don't-cares.
//! 2. The SERVICE and tail bits must descramble to zero — a per-step *input
//!    constraint* on the trellis.
//! 3. A constrained-Viterbi pass ([`ctc_wifi::convolutional::decode_with`])
//!    finds the PSDU whose stock transmission best realizes the desired
//!    in-band spectrum under both conditions.
//!
//! The result decodes in a standard [`ctc_wifi::WifiReceiver`] *and*
//! commands the ZigBee device.

use crate::attack::quantizer::quantize_points;
use crate::attack::spectrum::{block_spectra, select_subcarriers};
use ctc_dsp::Complex;
use ctc_wifi::convolutional::{decode_with, Rate};
use ctc_wifi::interleaver::{permutation, N_BPSC_64QAM, N_CBPS_64QAM};
use ctc_wifi::ofdm::{bin_to_subcarrier, data_subcarrier_indices, SYMBOL_LEN};
use ctc_wifi::qam::{demap_64qam, NORM_64QAM};
use ctc_wifi::scrambler::Scrambler;
use ctc_wifi::WifiTransmitter;
use ctc_zigbee::frontend::{capture, embed};

/// Data bits per OFDM symbol at 64-QAM rate 3/4.
const N_DBPS: usize = 216;

/// Output of the full-frame attack.
#[derive(Debug, Clone, PartialEq)]
pub struct FullFrameEmulation {
    /// The complete 20 MHz WiFi frame: PLCP + SIGNAL + data field.
    pub wifi_waveform: Vec<Complex>,
    /// The PSDU a standard WiFi receiver recovers from the frame.
    pub psdu: Vec<u8>,
    /// Hamming gap between the desired in-band coded bits and the nearest
    /// constrained codeword.
    pub codeword_distance: u32,
    /// Number of data-field OFDM symbols (first carries SERVICE, rest the
    /// emulation).
    pub data_symbols: usize,
    /// Sample offset (20 MHz) where the ZigBee emulation begins.
    pub zigbee_offset: usize,
}

/// The full-frame attacker. ZigBee channel 17 (2435 MHz) inside a 2440 MHz
/// 802.11g transmission, as in the paper's Sec. V-A4 deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct FullFrameAttack {
    coarse_threshold: f64,
    kept_subcarriers: usize,
    wifi: WifiTransmitter,
    zigbee_center_hz: f64,
    zigbee_rate_hz: f64,
}

impl Default for FullFrameAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl FullFrameAttack {
    /// Defaults matching [`crate::attack::Emulator`].
    pub fn new() -> Self {
        FullFrameAttack {
            coarse_threshold: 3.0,
            kept_subcarriers: 7,
            wifi: WifiTransmitter::new(),
            zigbee_center_hz: 2.435e9,
            zigbee_rate_hz: 4.0e6,
        }
    }

    /// Runs the attack on an observed 4 MHz ZigBee waveform.
    ///
    /// # Panics
    ///
    /// Panics if the emulation would exceed the 4095-byte PSDU limit
    /// (frames longer than ~75 ZigBee symbols; the paper's control frames
    /// are far shorter).
    pub fn emulate(&self, observed_4mhz: &[Complex]) -> FullFrameEmulation {
        let mut wide = embed(
            observed_4mhz,
            self.zigbee_center_hz,
            self.zigbee_rate_hz,
            self.wifi.center_frequency_hz(),
            self.wifi.sample_rate_hz(),
        )
        .expect("factor 5 is nonzero");
        while !wide.len().is_multiple_of(SYMBOL_LEN) {
            wide.push(Complex::ZERO);
        }
        // One extra block of margin: the receiver's sync lands a little
        // after the nominal PLCP offset (filter transients), and the final
        // ZigBee symbol must not fall off the end of the frame.
        wide.extend(std::iter::repeat_n(Complex::ZERO, SYMBOL_LEN));
        let spectra = block_spectra(&wide);
        let kept_bins = select_subcarriers(&spectra, self.coarse_threshold, self.kept_subcarriers);
        let mut chosen = Vec::with_capacity(spectra.len() * kept_bins.len());
        for spec in &spectra {
            for &bin in &kept_bins {
                chosen.push(spec.components[bin]);
            }
        }
        let quantized = quantize_points(&chosen, None);
        let rescale = NORM_64QAM / quantized.alpha;

        // Frame geometry: data symbol 0 carries SERVICE (+ leading PSDU
        // bits); symbols 1..=B carry the emulation.
        let blocks = spectra.len();
        let data_symbols = blocks + 1;
        let total_bits = data_symbols * N_DBPS;
        let psdu_len = (total_bits - 16 - 6) / 8;
        assert!(
            psdu_len <= 4095,
            "emulation too long for one 802.11 frame ({psdu_len}-byte PSDU)"
        );

        // Desired coded stream with don't-cares.
        let perm = permutation(N_CBPS_64QAM, N_BPSC_64QAM);
        let data_idx = data_subcarrier_indices();
        let mut coded: Vec<Option<u8>> = vec![None; data_symbols * N_CBPS_64QAM];
        let kept_positions: Vec<Option<usize>> = kept_bins
            .iter()
            .map(|&bin| {
                let sc = bin_to_subcarrier(bin);
                data_idx.iter().position(|&k| k == sc)
            })
            .collect();
        for (b, _) in spectra.iter().enumerate() {
            let sym = b + 1; // data symbol carrying this block
                             // Interleaved-bit view of this symbol. Out-of-band data
                             // subcarriers are pinned to minimum-amplitude QAM points
                             // (|level| = 1 on both axes, signs free): their energy sits just
                             // outside the ZigBee channel filter and would otherwise leak
                             // through the skirt as chip noise. In Gray coding |level| = 1 is
                             // `_10` per axis, so bits 1..3 and 4..6 are (1, 0) and the sign
                             // bits 0 and 3 stay don't-care.
            let mut inter: Vec<Option<u8>> = vec![None; N_CBPS_64QAM];
            for pos in 0..data_idx.len() {
                inter[pos * N_BPSC_64QAM + 1] = Some(1);
                inter[pos * N_BPSC_64QAM + 2] = Some(0);
                inter[pos * N_BPSC_64QAM + 4] = Some(1);
                inter[pos * N_BPSC_64QAM + 5] = Some(0);
            }
            // In-band subcarriers: the 6 bits of the demapped desired point.
            for (j, pos) in kept_positions.iter().enumerate() {
                if let Some(pos) = pos {
                    let desired = quantized.points[b * kept_bins.len() + j] * rescale;
                    let bits = demap_64qam(desired);
                    for (bit_i, &bit) in bits.iter().enumerate() {
                        inter[pos * N_BPSC_64QAM + bit_i] = Some(bit);
                    }
                }
            }
            // Deinterleave the don't-care mask: coded[k] = inter[perm[k]].
            for k in 0..N_CBPS_64QAM {
                coded[sym * N_CBPS_64QAM + k] = inter[perm[k]];
            }
        }

        // Input constraints: SERVICE (first 16) and tail (after the PSDU)
        // descramble to zero, i.e. the trellis input equals the keystream.
        let mut scrambler = Scrambler::new(0x7F);
        let keystream: Vec<u8> = (0..total_bits).map(|_| scrambler.next_bit()).collect();
        let mut constraints: Vec<Option<u8>> = vec![None; total_bits];
        for (i, c) in constraints.iter_mut().take(16).enumerate() {
            *c = Some(keystream[i]);
        }
        let tail_at = 16 + 8 * psdu_len;
        for i in tail_at..tail_at + 6 {
            constraints[i] = Some(keystream[i]);
        }

        let found = decode_with(&coded, Rate::ThreeQuarters, &constraints)
            .expect("whole symbols align with the puncturing period");
        let data_bits = Scrambler::new(0x7F).scramble(&found.data);
        debug_assert!(data_bits[..16].iter().all(|&b| b == 0), "SERVICE not zero");

        // PSDU bytes (LSB first), then the stock frame transmission.
        let mut psdu = Vec::with_capacity(psdu_len);
        for byte_i in 0..psdu_len {
            let base = 16 + byte_i * 8;
            let mut byte = 0u8;
            for bit in 0..8 {
                byte |= data_bits[base + bit] << bit;
            }
            psdu.push(byte);
        }
        let wifi_waveform = self
            .wifi
            .transmit_frame(&psdu)
            .expect("psdu_len validated above");

        FullFrameEmulation {
            wifi_waveform,
            psdu,
            codeword_distance: found.distance,
            data_symbols,
            zigbee_offset: ctc_wifi::plcp::PLCP_LEN + SYMBOL_LEN,
        }
    }

    /// The ZigBee front-end's 4 MHz view of the full frame (preamble and
    /// SERVICE symbol included — the receiver's own sync must find the
    /// emulated ZigBee preamble inside).
    pub fn received_at_zigbee(&self, emulation: &FullFrameEmulation) -> Vec<Complex> {
        capture(
            &emulation.wifi_waveform,
            self.wifi.center_frequency_hz(),
            self.wifi.sample_rate_hz(),
            self.zigbee_center_hz,
            self.zigbee_rate_hz,
        )
        .expect("factor 5 is nonzero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_wifi::WifiReceiver;
    use ctc_zigbee::{Receiver, Transmitter};

    fn observed() -> Vec<Complex> {
        Transmitter::new().transmit_payload(b"00000").unwrap()
    }

    #[test]
    fn frame_decodes_on_standard_wifi_receiver() {
        let attack = FullFrameAttack::new();
        let em = attack.emulate(&observed());
        let r = WifiReceiver::new().receive(&em.wifi_waveform).unwrap();
        assert_eq!(r.psdu_len, em.psdu.len());
        assert_eq!(r.psdu, em.psdu, "WiFi side must decode the exact PSDU");
        assert_eq!(r.viterbi_distance, 0);
    }

    #[test]
    fn same_frame_commands_the_zigbee_device() {
        let attack = FullFrameAttack::new();
        let em = attack.emulate(&observed());
        let at_zigbee = attack.received_at_zigbee(&em);
        // The emulation starts after PLCP + SERVICE symbol: 480 samples at
        // 20 MHz = 96 at 4 MHz; search a little past that.
        let r = Receiver::usrp().with_sync_search(160).receive(&at_zigbee);
        assert_eq!(
            r.payload(),
            Some(&b"00000"[..]),
            "distances: {:?}",
            r.hamming_distances
        );
    }

    #[test]
    fn service_and_tail_constraints_hold() {
        let attack = FullFrameAttack::new();
        let em = attack.emulate(&observed());
        // Reconstruct data bits from the PSDU and check framing invariants
        // indirectly: a stock WifiReceiver already validated SIGNAL parity
        // and length; here confirm geometry.
        assert_eq!(em.data_symbols, em.wifi_waveform.len() / 80 - 5);
        assert_eq!(em.zigbee_offset, 480);
    }

    #[test]
    fn constrained_distance_exceeds_unconstrained_bitchain() {
        // The frame structure costs fidelity relative to the unconstrained
        // bit-chain attack (which ignores SERVICE/tail and symbol framing).
        use crate::attack::{Emulator, SpectralMode, SynthesisMode};
        let obs = observed();
        let bitchain = Emulator::new()
            .with_spectral_mode(SpectralMode::CarrierAllocated)
            .with_synthesis_mode(SynthesisMode::BitChain)
            .emulate(&obs);
        let full = FullFrameAttack::new().emulate(&obs);
        // The unconstrained bit-chain attacker must match all 288 bits per
        // symbol and pays a large distance; the full-frame attacker's
        // don't-care mask (41 of 48 subcarriers sign-free) leaves enough
        // freedom that the in-band bits are typically matched exactly.
        assert!(bitchain.codeword_distance.unwrap() > 0);
        assert!(full.codeword_distance <= bitchain.codeword_distance.unwrap());
    }
}
