//! The CTC waveform-emulation attack (paper Sec. V).

pub mod emulator;
pub mod evasion;
pub mod fullframe;
pub mod listener;
pub mod quantizer;
pub mod spectrum;

pub use emulator::{kept_subcarrier_indices, Emulation, Emulator, SpectralMode, SynthesisMode};
pub use evasion::{LeastSquaresEmulation, LeastSquaresEmulator};
pub use fullframe::{FullFrameAttack, FullFrameEmulation};
pub use listener::{
    clear_channel_assessment, Burst, BurstEnd, EnergyDetector, EnergyStream, StreamedBurst,
};
pub use quantizer::{quantize_points, quantize_points_fixed, QuantizedPoints};
