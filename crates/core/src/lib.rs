//! # ctc-core
//!
//! The primary contribution of *Hide and Seek: Waveform Emulation Attack and
//! Defense in Cross-Technology Communication* (ICDCS 2019):
//!
//! - [`attack`] — a WiFi (802.11g) device records a ZigBee control frame and
//!   re-emits it as the payload of its own OFDM waveform, fooling the ZigBee
//!   receiver's detection, despreading and CRC (Sec. V).
//! - [`defense`] — the ZigBee receiver reconstructs a QPSK constellation
//!   from its chip-rate samples and runs fourth-order cumulant analysis; a
//!   distance threshold on `[Ĉ40, Ĉ42]` separates authentic waveforms from
//!   emulations (Sec. VI).
//!
//! ## End-to-end example
//!
//! ```
//! use ctc_core::attack::Emulator;
//! use ctc_core::defense::{ChannelAssumption, Detector};
//! use ctc_zigbee::{Receiver, Transmitter};
//!
//! // The victim link transmits a control frame; the attacker records it.
//! let observed = Transmitter::new().transmit_payload(b"00000")?;
//!
//! // The attacker emulates and "transmits"; the ZigBee front-end captures.
//! let emulator = Emulator::new();
//! let emulation = emulator.emulate(&observed);
//! let at_receiver = emulator.received_at_zigbee(&emulation);
//!
//! // The ZigBee receiver decodes the forged frame successfully...
//! let reception = Receiver::usrp().receive(&at_receiver);
//! assert_eq!(reception.payload(), Some(&b"00000"[..]));
//!
//! // ...but the cumulant detector flags it (threshold calibrated as in
//! // Sec. VII-B; 0.25 is this implementation's equivalent of the paper's
//! // Q = 0.5 — see EXPERIMENTS.md).
//! let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
//! let verdict = detector.detect(&reception).unwrap();
//! assert!(verdict.is_attack);
//! # Ok::<(), ctc_zigbee::frame::FrameError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attack;
pub mod defense;
pub mod error;
pub mod scenario;
pub mod waveform;

pub use attack::{Emulation, Emulator, SpectralMode, SynthesisMode};
pub use defense::{ChannelAssumption, Detector, Verdict};
pub use error::Error;
pub use waveform::WaveformPair;
