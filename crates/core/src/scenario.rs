//! A sample-accurate coexistence scenario: the paper's two-phase attack
//! timeline (Sec. IV) played out on one shared channel.
//!
//! A gateway transmits periodic control frames; the attacker eavesdrops,
//! extracts the first frame it hears, then strikes — deferring via
//! CSMA/CA-style clear channel assessment whenever the gateway is on the
//! air ("If the WiFi attacker confirms that ZigBee devices are not
//! communicating, it emulates the received ZigBee waveform"). The output is
//! the composite channel waveform plus ground truth, ready for the stream
//! monitor.

use crate::attack::listener::EnergyDetector;
use crate::attack::Emulator;
use ctc_channel::noise::complex_gaussian;
use ctc_dsp::metrics::normalize_power;
use ctc_dsp::Complex;
use ctc_zigbee::Transmitter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Who transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The legitimate gateway.
    Gateway,
    /// The WiFi attacker.
    Attacker,
}

/// One transmission on the ground-truth timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// First sample index on the shared channel.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Who transmitted.
    pub source: Source,
    /// Whether this transmission overlapped another one (collision).
    pub collided: bool,
}

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Total timeline length in samples (4 MHz).
    pub duration: usize,
    /// Mean gap between gateway frames, in samples.
    pub gateway_period: usize,
    /// Uniform jitter applied to each gateway gap (± this many samples).
    pub gateway_jitter: usize,
    /// How long after its recording the attacker first tries to strike.
    pub attacker_delay: usize,
    /// Gap between attacker strikes.
    pub attacker_period: usize,
    /// Number of strikes the attacker attempts.
    pub attacker_strikes: usize,
    /// Whether the attacker performs CCA and defers to ongoing traffic.
    pub attacker_polite: bool,
    /// Channel noise variance (complex total).
    pub noise_variance: f64,
    /// Gateway payload.
    pub payload: Vec<u8>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            duration: 60_000,
            gateway_period: 9_000,
            gateway_jitter: 1_500,
            attacker_delay: 4_000,
            attacker_period: 8_000,
            attacker_strikes: 3,
            attacker_polite: true,
            noise_variance: 1e-3,
            payload: b"00000".to_vec(),
        }
    }
}

/// Output of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The composite channel waveform (4 MHz).
    pub channel: Vec<Complex>,
    /// Ground-truth transmissions, in start order.
    pub transmissions: Vec<Transmission>,
    /// Number of strike attempts the attacker deferred due to CCA.
    pub cca_deferrals: usize,
    /// Whether the attacker managed to record a gateway frame at all.
    pub recording_captured: bool,
}

impl ScenarioResult {
    /// Ground truth for the transmission covering `sample`, if any.
    pub fn source_at(&self, sample: usize) -> Option<Source> {
        self.transmissions
            .iter()
            .find(|t| (t.start..t.end).contains(&sample))
            .map(|t| t.source)
    }
}

/// Runs the scenario.
///
/// # Panics
///
/// Panics if `duration == 0` or the payload is too long for one frame.
pub fn run(config: &ScenarioConfig, seed: u64) -> ScenarioResult {
    assert!(config.duration > 0, "duration must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let tx = Transmitter::new();
    let gateway_wave = tx
        .transmit_payload(&config.payload)
        .expect("scenario payloads are short");

    // --- Schedule gateway transmissions.
    let mut gateway_starts = Vec::new();
    let mut t = config.gateway_period / 2;
    while t + gateway_wave.len() < config.duration {
        gateway_starts.push(t);
        let jitter = if config.gateway_jitter > 0 {
            rng.gen_range(0..=2 * config.gateway_jitter) as i64 - config.gateway_jitter as i64
        } else {
            0
        };
        t = (t as i64 + config.gateway_period as i64 + jitter).max(t as i64 + 1) as usize;
    }

    // --- Compose the gateway-only channel (what the attacker eavesdrops).
    let mut channel: Vec<Complex> = (0..config.duration)
        .map(|_| complex_gaussian(&mut rng, config.noise_variance))
        .collect();
    let mut transmissions: Vec<Transmission> = Vec::new();
    for &s in &gateway_starts {
        for (i, &v) in gateway_wave.iter().enumerate() {
            channel[s + i] += v;
        }
        transmissions.push(Transmission {
            start: s,
            end: s + gateway_wave.len(),
            source: Source::Gateway,
            collided: false,
        });
    }

    // --- Phase 1: the attacker records the first frame it can find.
    let detector = EnergyDetector::default();
    let listen_until = gateway_starts
        .first()
        .map(|&s| (s + gateway_wave.len() + 512).min(config.duration))
        .unwrap_or(0);
    let recording = detector.extract_first(&channel[..listen_until]);
    let recording_captured = recording.is_some();
    let forged: Option<Vec<Complex>> = recording.map(|rec| {
        let emulator = Emulator::new();
        normalize_power(&emulator.received_at_zigbee(&emulator.emulate(rec)))
    });

    // --- Phase 2: strikes with (optional) CCA deferral.
    let mut cca_deferrals = 0usize;
    if let Some(forged) = forged {
        let busy = |at: usize, len: usize, txs: &[Transmission]| {
            txs.iter().any(|t| at < t.end && at + len > t.start)
        };
        let mut strike_at = listen_until + config.attacker_delay;
        for _ in 0..config.attacker_strikes {
            if strike_at + forged.len() >= config.duration {
                break;
            }
            let mut at = strike_at;
            if config.attacker_polite {
                // Defer in 256-sample backoff steps while the channel is busy.
                while busy(at, forged.len(), &transmissions) && at + forged.len() < config.duration
                {
                    cca_deferrals += 1;
                    at += 256 + rng.gen_range(0..128usize);
                }
            }
            if at + forged.len() >= config.duration {
                break;
            }
            let collided = busy(at, forged.len(), &transmissions);
            for (i, &v) in forged.iter().enumerate() {
                channel[at + i] += v;
            }
            // Mark the collision on both parties.
            if collided {
                for t in &mut transmissions {
                    if at < t.end && at + forged.len() > t.start {
                        t.collided = true;
                    }
                }
            }
            transmissions.push(Transmission {
                start: at,
                end: at + forged.len(),
                source: Source::Attacker,
                collided,
            });
            strike_at = at + forged.len() + config.attacker_period;
        }
    }
    transmissions.sort_by_key(|t| t.start);

    ScenarioResult {
        channel,
        transmissions,
        cca_deferrals,
        recording_captured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{ChannelAssumption, Detector, StreamMonitor};

    #[test]
    fn default_scenario_produces_both_sources() {
        let result = run(&ScenarioConfig::default(), 1);
        assert!(result.recording_captured);
        let gateways = result
            .transmissions
            .iter()
            .filter(|t| t.source == Source::Gateway)
            .count();
        let attacks = result
            .transmissions
            .iter()
            .filter(|t| t.source == Source::Attacker)
            .count();
        assert!(gateways >= 3, "{gateways} gateway frames");
        assert!(attacks >= 2, "{attacks} attacker frames");
    }

    #[test]
    fn polite_attacker_never_collides() {
        let config = ScenarioConfig {
            gateway_period: 4_000, // dense traffic
            ..ScenarioConfig::default()
        };
        let result = run(&config, 2);
        for t in &result.transmissions {
            if t.source == Source::Attacker {
                assert!(!t.collided, "polite attacker collided at {}", t.start);
            }
        }
    }

    #[test]
    fn impolite_attacker_collides_in_dense_traffic() {
        let config = ScenarioConfig {
            gateway_period: 2_500,
            gateway_jitter: 200,
            attacker_polite: false,
            attacker_strikes: 8,
            attacker_period: 500,
            ..ScenarioConfig::default()
        };
        let result = run(&config, 3);
        let collisions = result
            .transmissions
            .iter()
            .filter(|t| t.source == Source::Attacker && t.collided)
            .count();
        assert!(collisions > 0, "dense impolite traffic should collide");
        assert_eq!(result.cca_deferrals, 0);
    }

    #[test]
    fn dense_traffic_causes_deferrals() {
        let config = ScenarioConfig {
            gateway_period: 3_000,
            gateway_jitter: 100,
            attacker_strikes: 6,
            attacker_period: 600,
            ..ScenarioConfig::default()
        };
        let result = run(&config, 4);
        assert!(result.cca_deferrals > 0, "expected CCA deferrals");
    }

    #[test]
    fn monitor_classifies_scenario_traffic() {
        let result = run(&ScenarioConfig::default(), 5);
        // The attacker's 4 µs block grid sits at an arbitrary offset inside
        // the victim frame (its recording had noise margins), which
        // modulates how many chip midpoints fall in the corrupted CP
        // regions: emulated DE² varies roughly 0.1-0.4 across alignments
        // while authentic frames sit near 0.005 at this SNR. A threshold
        // calibrated per the paper's procedure lands in between; 0.06
        // reflects that here.
        let monitor = StreamMonitor::with_detector(
            Detector::new(ChannelAssumption::Ideal).with_threshold(0.06),
        );
        let events = monitor.scan(&result.channel);
        assert!(!events.is_empty());
        let mut checked = 0;
        for e in &events {
            let mid = (e.burst.start + e.burst.end) / 2;
            let Some(truth) = result.source_at(mid) else {
                continue;
            };
            let Some(v) = e.verdict else { continue };
            checked += 1;
            match truth {
                Source::Gateway => assert!(
                    !v.is_attack,
                    "gateway frame at {} flagged (DE² {})",
                    e.burst.start, v.de_squared
                ),
                Source::Attacker => assert!(
                    v.is_attack,
                    "attack at {} missed (DE² {})",
                    e.burst.start, v.de_squared
                ),
            }
        }
        assert!(
            checked >= 4,
            "only {checked} events matched to ground truth"
        );
    }

    #[test]
    fn source_at_lookup() {
        let result = run(&ScenarioConfig::default(), 6);
        let t = result.transmissions[0];
        assert_eq!(result.source_at(t.start), Some(t.source));
        assert_eq!(result.source_at(config_free_sample(&result)), None);
    }

    fn config_free_sample(result: &ScenarioResult) -> usize {
        // A sample before the first transmission.
        result.transmissions[0].start.saturating_sub(1)
    }
}
