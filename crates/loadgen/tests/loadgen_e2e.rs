//! End-to-end tests: the loadgen fleet against a real in-process
//! [`GatewayServer`] over TCP.
//!
//! The debug-friendly test drains a tiny fixed fleet and reconciles the
//! generator's ground truth against the server's own counters. The
//! release-only test is the acceptance scenario: 32 concurrent mixed
//! TCP streams soaked against a live server + metrics endpoint, with the
//! full SLO verdict asserted.

use ctc_core::defense::{ChannelAssumption, Detector};
use ctc_gateway::{GatewayConfig, GatewayServer, Input, Listener, ServerConfig};
use ctc_loadgen::{run_fleet, FleetSpec, Target};
use ctc_zigbee::Receiver;
use std::sync::Mutex;

/// Both tests drive a full gateway on the same machine; run them one at
/// a time so the line-rate fixed fleet can't starve the soak's workers
/// and spike its latency SLO.
static SERIAL: Mutex<()> = Mutex::new(());

/// The CLI's `ctc monitor --listen` configuration in miniature: timing
/// search on (burst captures start mid-noise), small chunks so events
/// complete while streams are still live.
fn server_config(workers: usize, queue: usize, max_streams: usize) -> ServerConfig {
    let gw = GatewayConfig::builder()
        .receiver(Receiver::usrp().with_sync_search(96))
        .detector(Detector::new(ChannelAssumption::Ideal).with_threshold(0.25))
        .workers(workers)
        .chunk_samples(4096)
        .queue_depth(queue)
        .stats_interval(None)
        .build()
        .unwrap();
    let mut config = ServerConfig::from(gw);
    config.max_streams = max_streams;
    config
}

fn bind_ephemeral() -> (Listener, Target) {
    let listener = Listener::bind(&Input::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let target = Target::parse(&listener.local_display()).unwrap();
    (listener, target)
}

/// A small fixed-count fleet drains through a live TCP server, and the
/// server's counters reconcile exactly with the generator's ground
/// truth: every burst ingested, every forgery flagged, nothing dropped.
#[test]
fn fixed_fleet_reconciles_with_server_counters() {
    let _serial = SERIAL.lock().unwrap();
    let (listener, target) = bind_ephemeral();
    let mut config = server_config(2, 64, 8);
    // The fleet hangs up after its events; the server drains the
    // sessions and returns on its own.
    config.stop_after = Some(2);
    let server = GatewayServer::new(config);
    let handle = std::thread::spawn(move || {
        server.serve(listener, &mut std::io::sink(), &mut std::io::sink())
    });

    let spec = FleetSpec {
        streams: 2,
        events_per_stream: 2,
        rate_msps: 0.0, // line rate: this test is about delivery, not pacing
        ..FleetSpec::default()
    };
    let fleet = run_fleet(&spec, &target, None).unwrap();
    let report = handle.join().unwrap().unwrap();

    assert_eq!(fleet.errors(), 0, "streams: {:?}", fleet.streams);
    let sent = fleet.sent();
    assert_eq!(sent.total(), 4);
    assert_eq!(report.server.sessions_opened, 2);
    assert_eq!(report.server.sessions_closed, 2);
    assert_eq!(report.server.sessions_errored, 0);
    assert_eq!(report.metrics.bursts, sent.total(), "every burst ingested");
    assert_eq!(
        report.metrics.frames_decoded,
        sent.authentic + sent.forged,
        "authentic and forged bursts decode; noise bursts do not"
    );
    assert_eq!(report.metrics.forgeries, sent.forged, "exact recall");
    assert_eq!(report.metrics.bursts_dropped, 0);
}

/// A soak whose SLOs cannot be met must write an incident snapshot and
/// embed its path in the JSON capacity report. Small and debug-friendly:
/// the breach comes from impossible bounds, not from load.
#[test]
fn slo_breach_writes_an_incident_snapshot_into_the_report() {
    use ctc_loadgen::{render_soak, run_soak, SoakConfig};
    use ctc_obs::Registry;
    use std::sync::Arc;
    use std::time::Duration;

    let _serial = SERIAL.lock().unwrap();
    let (listener, target) = bind_ephemeral();
    let registry = Arc::new(Registry::new());
    let http = ctc_obs::http::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();

    let server = GatewayServer::new(server_config(2, 64, 8)).with_registry(Arc::clone(&registry));
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || {
        server.serve(listener, &mut std::io::sink(), &mut std::io::sink())
    });

    let spec = FleetSpec {
        streams: 2,
        rate_msps: 0.0,
        ..FleetSpec::default()
    };
    let incident_path = std::env::temp_dir().join(format!(
        "ctc_loadgen_e2e_incident_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&incident_path);
    let mut config = SoakConfig::new(spec, http.addr().to_string(), Duration::from_secs(2));
    config.warmup = Duration::from_secs(1);
    // Bounds no run can meet: any processed burst breaches at least one.
    config.slo.p99_latency_us = Some(0.0001);
    config.slo.min_recall = Some(1.5);
    config.incident_out = Some(incident_path.clone());
    let outcome = run_soak(&config, &target).unwrap();

    shutdown.shutdown();
    handle.join().unwrap().unwrap();

    assert!(!outcome.pass, "impossible SLOs must breach");
    let path = outcome.incident.as_deref().expect("incident path recorded");
    assert_eq!(path, incident_path.display().to_string());

    // The capacity report embeds the path.
    let report_line = render_soak(&config, &target, &outcome);
    let report = ctc_gateway::json::parse(&report_line).unwrap();
    assert_eq!(report.get("incident").and_then(|v| v.as_str()), Some(path));

    // And the snapshot itself is a valid incident document with the SLO
    // verdict journaled.
    let text = std::fs::read_to_string(&incident_path).unwrap();
    std::fs::remove_file(&incident_path).unwrap();
    let doc = ctc_gateway::json::parse(&text).unwrap();
    assert_eq!(
        doc.get("trigger").and_then(|v| v.as_str()),
        Some("slo_breach")
    );
    let events = doc.get("events").and_then(|v| v.as_array()).unwrap();
    assert_eq!(events.len(), outcome.checks.len());
    let slo = doc.get("slo").and_then(|v| v.as_array()).unwrap();
    assert!(slo
        .iter()
        .any(|c| c.get("pass").and_then(|p| p.as_bool()) == Some(false)));
    assert!(doc.get("registry").and_then(|v| v.as_array()).is_some());
}

/// The acceptance scenario, release-only (debug DSP is far too slow for
/// a 32-stream fleet): 32 concurrent mixed TCP streams soaked against a
/// live server and metrics endpoint; the SLO verdict must pass on every
/// check — latency, drop budgets, recall against ground truth, zero
/// steady-state pool misses, bounded RSS growth.
#[cfg(not(debug_assertions))]
#[test]
fn soak_sustains_32_concurrent_tcp_streams() {
    use ctc_loadgen::{run_soak, SoakConfig};
    use ctc_obs::Registry;
    use std::sync::Arc;
    use std::time::Duration;

    let _serial = SERIAL.lock().unwrap();
    let (listener, target) = bind_ephemeral();
    let registry = Arc::new(Registry::new());
    ctc_obs::register_process_metrics(&registry);
    let http = ctc_obs::http::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();

    let server = GatewayServer::new(server_config(4, 256, 64)).with_registry(Arc::clone(&registry));
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || {
        server.serve(listener, &mut std::io::sink(), &mut std::io::sink())
    });

    // 32 streams at 0.05 Msps each: 1.6 Msamples/s aggregate, a point a
    // single CI core sustains with margin (the bench floor is 4 Msps on
    // one worker) while still exercising real concurrency.
    let spec = FleetSpec {
        streams: 32,
        rate_msps: 0.05,
        ..FleetSpec::default()
    };
    let mut config = SoakConfig::new(spec, http.addr().to_string(), Duration::from_secs(8));
    // Default bounds except where shared CI runners add scheduling noise
    // a production budget doesn't tolerate: the latency bound gets 3×
    // headroom, and the pool-miss budget allows one late first-peak per
    // stream (uneven scheduling can push the buffer pool's high-water
    // mark past the warmup scrape). The strict defaults — 50 ms, zero
    // misses — are asserted by scripts/loadgen_smoke.sh at 8 streams.
    // This test's acceptance is sustained 32-stream concurrency.
    config.warmup = Duration::from_secs(4);
    config.slo.p99_latency_us = Some(150_000.0);
    config.slo.max_steady_pool_misses = Some(config.fleet.streams as f64);
    let outcome = run_soak(&config, &target).unwrap();

    shutdown.shutdown();
    let report = handle.join().unwrap().unwrap();

    let verdicts: Vec<String> = outcome
        .checks
        .iter()
        .map(|c| {
            format!(
                "{} {:?} {} {} (pass={} skipped={})",
                c.name, c.value, c.op, c.bound, c.pass, c.skipped
            )
        })
        .collect();
    assert!(outcome.pass, "SLO breach:\n{}", verdicts.join("\n"));
    for check in &outcome.checks {
        assert!(!check.skipped, "check {} was skipped", check.name);
    }
    assert_eq!(report.server.sessions_opened, 32);
    assert_eq!(report.server.sessions_errored, 0);
    assert_eq!(outcome.observed.dropped, 0.0, "no drops at this rate");
    assert!(
        outcome.observed.frames_attack >= 1.0,
        "the mix must have exercised forgeries"
    );
}
