//! Waveform synthesis for the generator: three template bursts rendered
//! once, then replayed byte-for-byte by every stream.
//!
//! Rendering a ZigBee frame (or its WiFi emulation) costs orders of
//! magnitude more than writing it to a socket, so the generator does all
//! synthesis up front: [`TrafficModel::build`] renders one authentic
//! burst, one forged burst (the paper's waveform-emulation attack applied
//! to the authentic frame, as seen by a ZigBee front end), one loud noise
//! burst, and one quiet inter-burst gap — each as ready-to-send cf32
//! bytes. Steady-state streaming is then just slice writes: no
//! allocation, no DSP, which is what lets one process drive 32+ streams
//! at line rate.
//!
//! Schedules are seeded per stream, so the generator knows its own ground
//! truth: exactly how many forgeries each stream carried, against which
//! detection recall is measured.

use crate::spec::FleetSpec;
use ctc_channel::noise::complex_gaussian;
use ctc_core::attack::Emulator;
use ctc_dsp::io::write_cf32;
use ctc_dsp::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Payload carried by every generated frame (authentic and forged alike),
/// mirroring the 5-byte payloads the e2e corpus uses.
pub const PAYLOAD: &[u8; 5] = b"fleet";

/// Background (inter-burst) noise variance: far below the energy
/// detector's gate, so gaps terminate bursts.
const GAP_VARIANCE: f64 = 1e-3;

/// Noise-burst variance: frame-like power, so the burst is energy
/// detected — but white, so decode fails and the frame counts as
/// `undecoded`, exercising the gateway's third verdict path.
const NOISE_BURST_VARIANCE: f64 = 1.0;

/// One kind of generated event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A genuine ZigBee frame (should classify `authentic`).
    Authentic,
    /// A WiFi-emulated forgery of that frame (should classify `attack`).
    Forged,
    /// A loud white-noise burst (should decode-fail: `undecoded`).
    Noise,
}

/// Pre-rendered waveforms for one fleet, shared read-only by all streams.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    authentic: Vec<u8>,
    forged: Vec<u8>,
    noise: Vec<u8>,
    gap: Vec<u8>,
}

impl TrafficModel {
    /// Renders the four templates for `spec`. Deterministic in
    /// `spec.seed` and `spec.gap_samples`.
    pub fn build(spec: &FleetSpec) -> TrafficModel {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let authentic = ctc_zigbee::Transmitter::new()
            .transmit_payload(PAYLOAD)
            .expect("constant 5-byte payload is frameable");
        let emulator = Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
        let noise: Vec<Complex> = (0..authentic.len())
            .map(|_| complex_gaussian(&mut rng, NOISE_BURST_VARIANCE))
            .collect();
        let gap: Vec<Complex> = (0..spec.gap_samples)
            .map(|_| complex_gaussian(&mut rng, GAP_VARIANCE))
            .collect();
        let render = |samples: &[Complex]| {
            let mut bytes = Vec::with_capacity(samples.len() * 8);
            write_cf32(&mut bytes, samples).expect("Vec write is infallible");
            bytes
        };
        TrafficModel {
            authentic: render(&authentic),
            forged: render(&forged),
            noise: render(&noise),
            gap: render(&gap),
        }
    }

    /// The rendered burst for one event kind, as cf32 bytes.
    pub fn burst_bytes(&self, kind: EventKind) -> &[u8] {
        match kind {
            EventKind::Authentic => &self.authentic,
            EventKind::Forged => &self.forged,
            EventKind::Noise => &self.noise,
        }
    }

    /// The rendered inter-burst gap, as cf32 bytes.
    pub fn gap_bytes(&self) -> &[u8] {
        &self.gap
    }

    /// Samples one event (gap + burst) contributes to the stream, for the
    /// given kind.
    pub fn event_samples(&self, kind: EventKind) -> usize {
        (self.gap.len() + self.burst_bytes(kind).len()) / 8
    }

    /// Upper bound on samples per event across kinds (rate planning).
    pub fn max_event_samples(&self) -> usize {
        [EventKind::Authentic, EventKind::Forged, EventKind::Noise]
            .into_iter()
            .map(|k| self.event_samples(k))
            .max()
            .expect("three kinds")
    }

    /// The seeded event schedule for stream `index`: `events_per_stream`
    /// kinds drawn from the spec's mix weights. Streams get distinct but
    /// reproducible schedules; soak mode cycles this schedule.
    pub fn schedule(&self, spec: &FleetSpec, index: usize) -> Vec<EventKind> {
        // Distinct per-stream seed; the odd multiplier decorrelates
        // adjacent stream indices.
        let mut rng = StdRng::seed_from_u64(
            spec.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(index as u64 + 1),
        );
        let total = spec.mix.total();
        (0..spec.events_per_stream)
            .map(|_| {
                let roll = rng.gen_range(0..total);
                if roll < spec.mix.authentic {
                    EventKind::Authentic
                } else if roll < spec.mix.authentic + spec.mix.forged {
                    EventKind::Forged
                } else {
                    EventKind::Noise
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mix;
    use ctc_core::defense::{ChannelAssumption, Detector};

    fn read_cf32(bytes: &[u8]) -> Vec<Complex> {
        bytes
            .chunks_exact(8)
            .map(|c| {
                let re = f32::from_le_bytes(c[0..4].try_into().unwrap());
                let im = f32::from_le_bytes(c[4..8].try_into().unwrap());
                Complex::new(re as f64, im as f64)
            })
            .collect()
    }

    #[test]
    fn templates_are_deterministic_in_the_seed() {
        let spec = FleetSpec::default();
        let a = TrafficModel::build(&spec);
        let b = TrafficModel::build(&spec);
        assert_eq!(
            a.burst_bytes(EventKind::Forged),
            b.burst_bytes(EventKind::Forged)
        );
        assert_eq!(a.gap_bytes(), b.gap_bytes());
        let other = TrafficModel::build(&FleetSpec { seed: 99, ..spec });
        assert_ne!(a.gap_bytes(), other.gap_bytes());
    }

    #[test]
    fn schedules_are_seeded_distinct_and_mix_faithful() {
        let spec = FleetSpec {
            events_per_stream: 400,
            ..FleetSpec::default()
        };
        let model = TrafficModel::build(&spec);
        let s0 = model.schedule(&spec, 0);
        assert_eq!(s0, model.schedule(&spec, 0), "reproducible");
        assert_ne!(s0, model.schedule(&spec, 1), "distinct per stream");
        // 6:2:2 over 400 draws: forged lands near 20%.
        let forged = s0.iter().filter(|k| **k == EventKind::Forged).count();
        assert!((40..=120).contains(&forged), "forged {forged}/400");
    }

    #[test]
    fn degenerate_mix_schedules_one_kind() {
        let spec = FleetSpec {
            mix: Mix {
                authentic: 0,
                forged: 1,
                noise: 0,
            },
            ..FleetSpec::default()
        };
        let model = TrafficModel::build(&spec);
        assert!(model
            .schedule(&spec, 3)
            .iter()
            .all(|k| *k == EventKind::Forged));
    }

    /// The three templates do what their names claim against the actual
    /// detection pipeline: authentic decodes clean, forged decodes as
    /// attack, noise is energy-detected but undecodable.
    #[test]
    fn templates_produce_their_advertised_verdicts() {
        let spec = FleetSpec::default();
        let model = TrafficModel::build(&spec);
        let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
        let receiver = ctc_zigbee::Receiver::usrp().with_sync_search(96);

        for (kind, expect_decode, expect_attack) in [
            (EventKind::Authentic, true, false),
            (EventKind::Forged, true, true),
            (EventKind::Noise, false, false),
        ] {
            let samples = read_cf32(model.burst_bytes(kind));
            let rx = receiver.receive(&samples);
            assert_eq!(
                rx.payload().is_some(),
                expect_decode,
                "{kind:?} decode expectation"
            );
            if expect_decode {
                assert_eq!(rx.payload(), Some(&PAYLOAD[..]), "{kind:?}");
                let verdict = detector.detect(&rx).unwrap();
                assert_eq!(verdict.is_attack, expect_attack, "{kind:?}: {verdict:?}");
            }
        }
    }

    /// The gap must sit below the energy gate and the bursts above it, or
    /// the generator's ground truth would not match burst counts.
    #[test]
    fn gap_is_quiet_and_bursts_are_loud() {
        let spec = FleetSpec::default();
        let model = TrafficModel::build(&spec);
        let mean_power = |bytes: &[u8]| {
            let s = read_cf32(bytes);
            s.iter().map(|v| v.norm_sqr()).sum::<f64>() / s.len() as f64
        };
        let gap = mean_power(model.gap_bytes());
        for kind in [EventKind::Authentic, EventKind::Forged, EventKind::Noise] {
            let burst = mean_power(model.burst_bytes(kind));
            assert!(
                burst > 50.0 * gap,
                "{kind:?} burst {burst:.3e} vs gap {gap:.3e}"
            );
        }
        assert_eq!(model.gap_bytes().len(), spec.gap_samples * 8);
        assert!(model.max_event_samples() >= spec.gap_samples);
    }
}
