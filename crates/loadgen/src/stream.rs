//! Per-stream driving: paced writes of pre-rendered events into one
//! gateway connection.
//!
//! The writer owns no waveform data — it cycles a borrowed schedule over
//! the shared [`TrafficModel`] templates and
//! writes byte slices, so steady-state operation allocates nothing. Rate
//! control is absolute, not per-write: the pacer compares total samples
//! sent against wall clock, so a slow stretch (socket backpressure, a
//! scheduler hiccup) is caught up afterwards and the long-run average
//! hits the configured rate exactly.

use crate::synth::{EventKind, TrafficModel};
use std::io::Write;
use std::time::{Duration, Instant};

/// Write granularity in samples: small enough that pacing stays smooth,
/// large enough that syscall overhead stays negligible.
const SUB_CHUNK_SAMPLES: usize = 4096;

/// Per-kind event counts — the generator-side ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Authentic bursts sent.
    pub authentic: u64,
    /// Forged bursts sent.
    pub forged: u64,
    /// Noise bursts sent.
    pub noise: u64,
}

impl EventCounts {
    /// Total bursts sent.
    pub fn total(&self) -> u64 {
        self.authentic + self.forged + self.noise
    }

    fn bump(&mut self, kind: EventKind) {
        match kind {
            EventKind::Authentic => self.authentic += 1,
            EventKind::Forged => self.forged += 1,
            EventKind::Noise => self.noise += 1,
        }
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &EventCounts) {
        self.authentic += other.authentic;
        self.forged += other.forged;
        self.noise += other.noise;
    }
}

/// Outcome of driving one stream.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Zero-based stream index within the fleet.
    pub index: usize,
    /// Events actually sent (whole events only; a deadline stops the
    /// stream at an event boundary).
    pub sent: EventCounts,
    /// Samples written.
    pub samples: u64,
    /// Wall-clock time this stream spent writing.
    pub elapsed: Duration,
    /// The connect or write error that ended the stream early, if any.
    pub error: Option<String>,
}

impl StreamStats {
    /// Achieved rate in Msamples/s.
    pub fn msps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.samples as f64 / secs / 1e6
    }
}

/// Absolute-rate pacer: sleeps so cumulative samples never run ahead of
/// `rate_sps * elapsed`.
#[derive(Debug)]
pub struct Pacer {
    rate_sps: Option<f64>,
    started: Instant,
    sent: u64,
}

impl Pacer {
    /// A pacer starting now; `None` rate means line rate (never sleeps).
    pub fn new(rate_sps: Option<f64>) -> Pacer {
        Pacer {
            rate_sps,
            started: Instant::now(),
            sent: 0,
        }
    }

    /// Records `samples` as sent and sleeps off any schedule surplus.
    pub fn on_sent(&mut self, samples: u64) {
        self.sent += samples;
        let Some(rate) = self.rate_sps else { return };
        let due = Duration::from_secs_f64(self.sent as f64 / rate);
        let elapsed = self.started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }

    /// Samples recorded so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

/// Drives one connection: cycles `schedule` over the model's templates,
/// writing gap-then-burst per event, paced to `rate_sps`.
///
/// In fixed mode (`deadline: None`) exactly one pass over the schedule is
/// written; with a deadline the schedule repeats until the deadline
/// passes, checked at event boundaries so ground-truth counts stay whole.
/// A trailing gap is written after the last event so the gateway's energy
/// detector closes the final burst on a quiet gap rather than at EOF.
///
/// # Errors
///
/// The first write error (e.g. the gateway refused or dropped the
/// connection), with the partial counts preserved by the caller.
pub fn drive<W: Write>(
    writer: &mut W,
    model: &TrafficModel,
    schedule: &[EventKind],
    rate_sps: Option<f64>,
    deadline: Option<Instant>,
) -> std::io::Result<(EventCounts, u64)> {
    let mut pacer = Pacer::new(rate_sps);
    let mut counts = EventCounts::default();
    'outer: loop {
        for &kind in schedule {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break 'outer;
                }
            }
            write_paced(writer, model.gap_bytes(), &mut pacer)?;
            write_paced(writer, model.burst_bytes(kind), &mut pacer)?;
            counts.bump(kind);
        }
        if deadline.is_none() {
            break;
        }
    }
    write_paced(writer, model.gap_bytes(), &mut pacer)?;
    writer.flush()?;
    Ok((counts, pacer.sent()))
}

/// Writes `bytes` in sub-chunks, pacing after each.
fn write_paced<W: Write>(writer: &mut W, bytes: &[u8], pacer: &mut Pacer) -> std::io::Result<()> {
    for chunk in bytes.chunks(SUB_CHUNK_SAMPLES * 8) {
        writer.write_all(chunk)?;
        pacer.on_sent((chunk.len() / 8) as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;

    #[test]
    fn fixed_mode_sends_exactly_the_schedule() {
        let spec = FleetSpec {
            events_per_stream: 5,
            ..FleetSpec::default()
        };
        let model = TrafficModel::build(&spec);
        let schedule = model.schedule(&spec, 0);
        let mut sink = Vec::new();
        let (counts, samples) = drive(&mut sink, &model, &schedule, None, None).unwrap();
        assert_eq!(counts.total(), 5);
        assert_eq!(samples as usize * 8, sink.len());
        // Per-event bytes: gap + burst, plus one trailing gap.
        let expected: usize = schedule
            .iter()
            .map(|&k| model.gap_bytes().len() + model.burst_bytes(k).len())
            .sum::<usize>()
            + model.gap_bytes().len();
        assert_eq!(sink.len(), expected);
    }

    #[test]
    fn identical_schedules_produce_identical_bytes() {
        let spec = FleetSpec {
            events_per_stream: 3,
            ..FleetSpec::default()
        };
        let model = TrafficModel::build(&spec);
        let schedule = model.schedule(&spec, 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        drive(&mut a, &model, &schedule, None, None).unwrap();
        drive(&mut b, &model, &schedule, None, None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deadline_mode_cycles_and_stops_on_whole_events() {
        let spec = FleetSpec {
            events_per_stream: 2,
            ..FleetSpec::default()
        };
        let model = TrafficModel::build(&spec);
        let schedule = model.schedule(&spec, 0);
        let mut sink = Vec::new();
        // Line rate with a short-but-real deadline: several cycles land.
        let deadline = Instant::now() + Duration::from_millis(30);
        let (counts, samples) = drive(&mut sink, &model, &schedule, None, Some(deadline)).unwrap();
        assert!(counts.total() >= 2, "at least one full cycle: {counts:?}");
        // Whole events only: the byte count decomposes into N events plus
        // the trailing gap.
        let gap = model.gap_bytes().len();
        let mut expected = gap;
        for i in 0..counts.total() as usize {
            expected += gap + model.burst_bytes(schedule[i % schedule.len()]).len();
        }
        assert_eq!(sink.len(), expected);
        assert_eq!(samples as usize * 8, sink.len());
    }

    #[test]
    fn pacer_holds_the_configured_rate() {
        // 2 Msps for ~40 ms of samples: elapsed must be >= the schedule.
        let mut pacer = Pacer::new(Some(2.0e6));
        let start = Instant::now();
        for _ in 0..20 {
            pacer.on_sent(4096);
        }
        let due = Duration::from_secs_f64(20.0 * 4096.0 / 2.0e6);
        assert!(start.elapsed() >= due, "{:?} < {due:?}", start.elapsed());
        assert_eq!(pacer.sent(), 20 * 4096);
    }

    #[test]
    fn line_rate_pacer_never_sleeps() {
        let mut pacer = Pacer::new(None);
        let start = Instant::now();
        for _ in 0..1000 {
            pacer.on_sent(1 << 20);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn write_errors_surface() {
        struct Full;
        impl Write for Full {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("gateway refused"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let spec = FleetSpec::default();
        let model = TrafficModel::build(&spec);
        let schedule = model.schedule(&spec, 0);
        assert!(drive(&mut Full, &model, &schedule, None, None).is_err());
    }
}
