//! Soak mode: sustained load with SLOs asserted from scraped telemetry.
//!
//! The fleet streams for a fixed duration while this module scrapes the
//! gateway's `/metrics` endpoint at intervals. Everything is evaluated as
//! *deltas* against a baseline scrape taken before the first connect, so
//! a soak run isolates its own traffic even against a long-running
//! monitor that has served other clients. A second basis is captured once
//! the warmup window passes: steady-state checks (pool misses, resident
//! memory) measure from there, because cold-start allocation is expected
//! and only *ongoing* growth is a leak.
//!
//! The verdict is machine-checkable: a list of [`SloCheck`]s, each with
//! the measured value, the bound, and pass/fail — `pass` on the
//! [`SoakOutcome`] is the AND over non-skipped checks, which is what the
//! CI smoke job and the `ctc loadgen` exit code key off.

use crate::error::LoadgenError;
use crate::fleet::{run_fleet, FleetReport, Target};
use crate::spec::FleetSpec;
use ctc_obs::flight::{EventKind, FlightEvent, FlightRecorder};
use ctc_obs::{Scrape, ScrapedHistogram, SnapshotBuilder};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// SLO bounds; `None` disables that check.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// p99 end-to-end detection latency bound, microseconds.
    pub p99_latency_us: Option<f64>,
    /// Aggregate and per-session drop budget: dropped bursts over
    /// ingested bursts.
    pub max_drop_rate: Option<f64>,
    /// Forgery detection recall floor: frames classified `attack` over
    /// forgeries the generator actually sent.
    pub min_recall: Option<f64>,
    /// Pool misses tolerated after warmup (steady state should be
    /// allocation-free: zero).
    pub max_steady_pool_misses: Option<f64>,
    /// Resident-memory growth factor tolerated after warmup.
    pub max_rss_growth: Option<f64>,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            p99_latency_us: Some(50_000.0),
            max_drop_rate: Some(0.01),
            min_recall: Some(0.99),
            max_steady_pool_misses: Some(0.0),
            max_rss_growth: Some(1.25),
        }
    }
}

/// A soak run: fleet spec plus scrape/assert configuration.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The fleet to sustain.
    pub fleet: FleetSpec,
    /// How long the fleet streams.
    pub duration: Duration,
    /// Cold-start window excluded from steady-state checks.
    pub warmup: Duration,
    /// Scrape cadence during the run.
    pub interval: Duration,
    /// The gateway's metrics endpoint (`host:port`).
    pub metrics_addr: String,
    /// The bounds to assert.
    pub slo: SloSpec,
    /// Where to write an incident snapshot when an SLO breaches
    /// (`None`: no snapshot). The snapshot embeds every SLO check as a
    /// journal event plus the baseline/final registry delta, in the same
    /// format the gateway's flight recorder dumps, so `ctc obs report`
    /// reads both.
    pub incident_out: Option<PathBuf>,
}

impl SoakConfig {
    /// A soak with default warmup (a fifth of the duration, clamped to
    /// [1 s, 10 s]), 2 s scrape interval, and default SLOs.
    pub fn new(fleet: FleetSpec, metrics_addr: impl Into<String>, duration: Duration) -> Self {
        let warmup = (duration / 5).clamp(Duration::from_secs(1), Duration::from_secs(10));
        SoakConfig {
            fleet,
            duration,
            warmup,
            interval: Duration::from_secs(2),
            metrics_addr: metrics_addr.into(),
            slo: SloSpec::default(),
            incident_out: None,
        }
    }
}

/// One asserted bound with its measured value.
#[derive(Debug, Clone)]
pub struct SloCheck {
    /// Stable machine-readable name (e.g. `p99_latency_us`).
    pub name: &'static str,
    /// The measured value; `None` when unmeasurable.
    pub value: Option<f64>,
    /// The bound asserted against.
    pub bound: f64,
    /// `"<="` or `">="`.
    pub op: &'static str,
    /// Whether the check passed (always true when skipped).
    pub pass: bool,
    /// True when the check could not be evaluated (missing metric, no
    /// steady-state scrape) — skipped checks don't fail the run but are
    /// reported so silence is visible.
    pub skipped: bool,
}

impl SloCheck {
    fn le(name: &'static str, value: Option<f64>, bound: f64) -> SloCheck {
        Self::build(name, value, bound, "<=")
    }

    fn ge(name: &'static str, value: Option<f64>, bound: f64) -> SloCheck {
        Self::build(name, value, bound, ">=")
    }

    fn build(name: &'static str, value: Option<f64>, bound: f64, op: &'static str) -> SloCheck {
        let (pass, skipped) = match value {
            None => (true, true),
            Some(v) => (if op == "<=" { v <= bound } else { v >= bound }, false),
        };
        SloCheck {
            name,
            value,
            bound,
            op,
            pass,
            skipped,
        }
    }
}

/// What the scrapes observed over the run (deltas from baseline unless
/// noted).
#[derive(Debug, Clone, Default)]
pub struct Observed {
    /// Bursts the gateway ingested.
    pub bursts: f64,
    /// Frames classified authentic.
    pub frames_authentic: f64,
    /// Frames classified attack.
    pub frames_attack: f64,
    /// Bursts that failed to decode.
    pub frames_undecoded: f64,
    /// Bursts shed by the shard queues.
    pub dropped: f64,
    /// p99 of the end-to-end latency histogram over the run.
    pub p99_latency_us: Option<f64>,
    /// Pool misses after warmup (steady state).
    pub steady_pool_misses: Option<f64>,
    /// Resident memory at steady-state basis, bytes (absolute).
    pub rss_steady_bytes: Option<f64>,
    /// Resident memory at the end, bytes (absolute).
    pub rss_final_bytes: Option<f64>,
    /// Sessions the gateway closed during the run.
    pub sessions_closed: f64,
    /// Scrapes taken during the run.
    pub scrapes: usize,
}

/// Outcome of a soak run: the fleet's ground truth, the observed deltas,
/// and the SLO verdict.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// The fleet run underneath.
    pub fleet: FleetReport,
    /// Scraped observations.
    pub observed: Observed,
    /// Every asserted bound.
    pub checks: Vec<SloCheck>,
    /// AND over non-skipped checks.
    pub pass: bool,
    /// Path of the incident snapshot written on breach (`None` when the
    /// run passed, no `incident_out` was configured, or the write
    /// failed).
    pub incident: Option<String>,
}

/// Counter/gauge delta between two scrapes (absent samples read as 0).
fn delta(base: &Scrape, end: &Scrape, name: &str, labels: &[(&str, &str)]) -> f64 {
    end.value(name, labels).unwrap_or(0.0) - base.value(name, labels).unwrap_or(0.0)
}

/// Fetches one scrape, keeping the raw exposition text alongside the
/// parse — the incident snapshot embeds the text verbatim so its
/// registry/delta sections use the same serializer as the gateway's.
fn fetch_raw(addr: &str) -> Result<(String, Scrape), LoadgenError> {
    let text = ctc_obs::http::fetch_text(addr).map_err(|source| LoadgenError::Scrape {
        addr: addr.to_string(),
        source,
    })?;
    let scrape = Scrape::parse(&text).map_err(|e| LoadgenError::Scrape {
        addr: addr.to_string(),
        source: std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
    })?;
    Ok((text, scrape))
}

/// Runs the fleet for `config.duration` against `target`, scraping
/// `config.metrics_addr` throughout, and asserts the SLOs.
///
/// # Errors
///
/// [`LoadgenError::Spec`] for an invalid fleet spec and
/// [`LoadgenError::Scrape`] when the baseline or final scrape fails;
/// transient scrape failures *during* the run are tolerated (that
/// interval's sample is simply missing).
pub fn run_soak(config: &SoakConfig, target: &Target) -> Result<SoakOutcome, LoadgenError> {
    config.fleet.validate().map_err(LoadgenError::Spec)?;
    let addr = config.metrics_addr.as_str();
    let (baseline_text, baseline) = fetch_raw(addr)?;

    let started = Instant::now();
    let fleet_spec = config.fleet.clone();
    let fleet_target = target.clone();
    let duration = config.duration;
    let fleet_thread =
        std::thread::spawn(move || run_fleet(&fleet_spec, &fleet_target, Some(duration)));

    // Scrape at the configured cadence while the fleet streams; the first
    // scrape past the warmup boundary becomes the steady-state basis.
    let mut steady: Option<Scrape> = None;
    let mut scrapes = 0usize;
    let mut next_scrape = started + config.interval.min(config.warmup);
    while !fleet_thread.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
        if Instant::now() < next_scrape {
            continue;
        }
        next_scrape += config.interval;
        if let Ok(scrape) = Scrape::fetch(addr) {
            scrapes += 1;
            if steady.is_none() && started.elapsed() >= config.warmup {
                steady = Some(scrape);
            }
        }
    }
    let fleet = fleet_thread.join().expect("fleet thread panicked")?;

    // Drain: the gateway keeps classifying after the last writer hangs
    // up. Wait until every session that connected has closed (or
    // errored), so the final scrape sees settled counters.
    let connected = fleet
        .streams
        .iter()
        .filter(|s| !matches!(&s.error, Some(e) if e.starts_with("connect:")))
        .count() as f64;
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let finished = |s: &Scrape| {
        delta(&baseline, s, "ctc_sessions_closed_total", &[])
            + delta(&baseline, s, "ctc_sessions_errored_total", &[])
            >= connected
    };
    let (mut final_text, mut final_scrape) = fetch_raw(addr)?;
    while !finished(&final_scrape) && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(200));
        (final_text, final_scrape) = fetch_raw(addr)?;
    }

    let mut outcome = evaluate(
        config,
        fleet,
        &baseline,
        steady.as_ref(),
        &final_scrape,
        scrapes,
    );
    if !outcome.pass {
        if let Some(path) = &config.incident_out {
            match write_incident(path, &outcome, &baseline_text, &final_text) {
                Ok(()) => outcome.incident = Some(path.display().to_string()),
                Err(e) => eprintln!("loadgen: writing incident snapshot {}: {e}", path.display()),
            }
        }
    }
    Ok(outcome)
}

/// Writes the SLO-breach incident snapshot: one `slo_check` journal
/// event per asserted bound, the baseline→final registry delta, and the
/// full check list — the same self-contained format the gateway's
/// flight recorder dumps, so `ctc obs report` reads both.
pub(crate) fn write_incident(
    path: &std::path::Path,
    outcome: &SoakOutcome,
    baseline_text: &str,
    final_text: &str,
) -> std::io::Result<()> {
    let recorder = FlightRecorder::with_capacity(outcome.checks.len().max(1));
    for (index, check) in outcome.checks.iter().enumerate() {
        recorder.record(
            FlightEvent::new(EventKind::SloCheck, 0, index as u64, recorder.now_us())
                .with_args(check.pass as u64, check.value.unwrap_or(f64::NAN).to_bits()),
        );
    }
    let snapshot = SnapshotBuilder::new(&recorder, "slo_breach")
        .exposition(final_text)
        .baseline(baseline_text)
        .section("slo", &crate::report::checks_json(&outcome.checks))
        .render();
    std::fs::write(path, snapshot + "\n")
}

/// Pure SLO evaluation over the scrapes — separated from the run loop so
/// tests can exercise the arithmetic without sockets or sleeps.
pub(crate) fn evaluate(
    config: &SoakConfig,
    fleet: FleetReport,
    baseline: &Scrape,
    steady: Option<&Scrape>,
    fin: &Scrape,
    scrapes: usize,
) -> SoakOutcome {
    let frames = |verdict: &str| {
        delta(
            baseline,
            fin,
            "ctc_gateway_frames_total",
            &[("verdict", verdict)],
        )
    };
    let bursts = delta(baseline, fin, "ctc_gateway_bursts_total", &[]);
    let dropped = delta(baseline, fin, "ctc_queue_dropped_total", &[]);
    let p99 = latency_delta(baseline, fin).and_then(|h| h.quantile(0.99));
    let steady_misses = steady.map(|s| delta(s, fin, "ctc_pool_misses_total", &[]));
    let rss = |s: &Scrape| s.value(ctc_obs::process::RSS_GAUGE, &[]);
    let rss_steady = steady.and_then(rss);
    let rss_final = rss(fin);

    let observed = Observed {
        bursts,
        frames_authentic: frames("authentic"),
        frames_attack: frames("attack"),
        frames_undecoded: frames("undecoded"),
        dropped,
        p99_latency_us: p99,
        steady_pool_misses: steady_misses,
        rss_steady_bytes: rss_steady,
        rss_final_bytes: rss_final,
        sessions_closed: delta(baseline, fin, "ctc_sessions_closed_total", &[]),
        scrapes,
    };

    let slo = &config.slo;
    let mut checks = vec![SloCheck::le(
        "stream_errors",
        Some(fleet.errors() as f64),
        0.0,
    )];
    if let Some(bound) = slo.p99_latency_us {
        checks.push(SloCheck::le("p99_latency_us", p99, bound));
    }
    if let Some(bound) = slo.max_drop_rate {
        let aggregate = (bursts > 0.0).then(|| dropped / bursts);
        checks.push(SloCheck::le("drop_rate", aggregate, bound));
        checks.push(SloCheck::le(
            "worst_session_drop_rate",
            worst_session_drop_rate(baseline, fin),
            bound,
        ));
    }
    if let Some(bound) = slo.min_recall {
        let forged_sent = fleet.sent().forged as f64;
        let recall = (forged_sent > 0.0).then(|| observed.frames_attack / forged_sent);
        checks.push(SloCheck::ge("recall", recall, bound));
    }
    if let Some(bound) = slo.max_steady_pool_misses {
        checks.push(SloCheck::le("steady_pool_misses", steady_misses, bound));
    }
    if let Some(bound) = slo.max_rss_growth {
        let growth = match (rss_steady, rss_final) {
            (Some(s), Some(f)) if s > 0.0 => Some(f / s),
            _ => None,
        };
        checks.push(SloCheck::le("rss_growth", growth, bound));
    }
    let pass = checks.iter().all(|c| c.pass);
    SoakOutcome {
        fleet,
        observed,
        checks,
        pass,
        incident: None,
    }
}

/// The run's latency distribution: final histogram minus baseline.
fn latency_delta(baseline: &Scrape, fin: &Scrape) -> Option<ScrapedHistogram> {
    let end = fin.histogram("ctc_gateway_latency_us", &[])?;
    match baseline.histogram("ctc_gateway_latency_us", &[]) {
        Some(base) => end.delta_from(&base),
        None => Some(end),
    }
}

/// The worst per-session drop rate over sessions that ingested bursts
/// during the run. `None` when no labelled session data exists.
fn worst_session_drop_rate(baseline: &Scrape, fin: &Scrape) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for label in fin.label_values("ctc_gateway_bursts_total", "stream") {
        let labels = [("stream", label.as_str())];
        let bursts = delta(baseline, fin, "ctc_gateway_bursts_total", &labels);
        if bursts <= 0.0 {
            continue;
        }
        let dropped = delta(baseline, fin, "ctc_queue_dropped_total", &labels);
        let rate = dropped / bursts;
        worst = Some(worst.map_or(rate, |w: f64| w.max(rate)));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{EventCounts, StreamStats};

    fn fleet(streams: usize, forged_each: u64) -> FleetReport {
        FleetReport {
            streams: (0..streams)
                .map(|index| StreamStats {
                    index,
                    sent: EventCounts {
                        authentic: 3,
                        forged: forged_each,
                        noise: 1,
                    },
                    samples: 100_000,
                    elapsed: Duration::from_secs(1),
                    error: None,
                })
                .collect(),
            elapsed: Duration::from_secs(1),
        }
    }

    fn scrape(text: &str) -> Scrape {
        Scrape::parse(text).unwrap()
    }

    fn config() -> SoakConfig {
        SoakConfig::new(FleetSpec::default(), "127.0.0.1:1", Duration::from_secs(10))
    }

    const BASELINE: &str = "\
ctc_gateway_bursts_total 10
ctc_gateway_frames_total{verdict=\"attack\"} 2
ctc_queue_dropped_total 1
ctc_pool_misses_total 5
ctc_sessions_closed_total 1
";

    #[test]
    fn healthy_run_passes_every_check() {
        // 4 streams x 4 forged = 16 forgeries, all detected; no new drops
        // or misses after steady state; flat RSS.
        let fin = scrape(
            "\
ctc_gateway_bursts_total 170
ctc_gateway_frames_total{verdict=\"attack\"} 18
ctc_gateway_frames_total{verdict=\"authentic\"} 12
ctc_queue_dropped_total 1
ctc_gateway_bursts_total{stream=\"s2\"} 40
ctc_queue_dropped_total{stream=\"s2\"} 0
ctc_pool_misses_total 9
ctc_sessions_closed_total 5
ctc_gateway_latency_us_bucket{le=\"1024\"} 100
ctc_gateway_latency_us_bucket{le=\"+Inf\"} 100
ctc_gateway_latency_us_sum 50000
ctc_gateway_latency_us_count 100
process_resident_memory_bytes 1000000
",
        );
        let steady = scrape("ctc_pool_misses_total 9\nprocess_resident_memory_bytes 990000\n");
        let outcome = evaluate(
            &config(),
            fleet(4, 4),
            &scrape(BASELINE),
            Some(&steady),
            &fin,
            3,
        );
        assert!(outcome.pass, "{:#?}", outcome.checks);
        assert!(
            outcome.checks.iter().all(|c| !c.skipped),
            "{:#?}",
            outcome.checks
        );
        assert_eq!(outcome.observed.frames_attack, 16.0);
        assert_eq!(outcome.observed.bursts, 160.0);
        assert_eq!(outcome.observed.scrapes, 3);
        let p99 = outcome.observed.p99_latency_us.unwrap();
        assert!(p99 <= 1024.0, "{p99}");
    }

    #[test]
    fn missed_forgeries_fail_recall() {
        // 16 forged sent, only 10 new attack verdicts.
        let fin = scrape(
            "\
ctc_gateway_bursts_total 170
ctc_gateway_frames_total{verdict=\"attack\"} 12
ctc_queue_dropped_total 1
ctc_sessions_closed_total 5
",
        );
        let outcome = evaluate(&config(), fleet(4, 4), &scrape(BASELINE), None, &fin, 1);
        let recall = outcome.checks.iter().find(|c| c.name == "recall").unwrap();
        assert!(!recall.pass);
        assert_eq!(recall.value, Some(10.0 / 16.0));
        assert!(!outcome.pass);
    }

    #[test]
    fn drop_budget_is_per_session_too() {
        // Aggregate rate fine (2/200), but one session shed half its
        // bursts.
        let fin = scrape(
            "\
ctc_gateway_bursts_total 210
ctc_queue_dropped_total 3
ctc_gateway_bursts_total{stream=\"s1\"} 100
ctc_queue_dropped_total{stream=\"s1\"} 0
ctc_gateway_bursts_total{stream=\"s2\"} 4
ctc_queue_dropped_total{stream=\"s2\"} 2
ctc_sessions_closed_total 5
",
        );
        let outcome = evaluate(&config(), fleet(4, 0), &scrape(BASELINE), None, &fin, 1);
        let worst = outcome
            .checks
            .iter()
            .find(|c| c.name == "worst_session_drop_rate")
            .unwrap();
        assert_eq!(worst.value, Some(0.5));
        assert!(!worst.pass);
        let aggregate = outcome
            .checks
            .iter()
            .find(|c| c.name == "drop_rate")
            .unwrap();
        assert!(aggregate.pass, "{aggregate:?}");
    }

    #[test]
    fn steady_state_pool_misses_fail_the_allocation_slo() {
        let fin = scrape("ctc_pool_misses_total 12\nctc_sessions_closed_total 5\n");
        let steady = scrape("ctc_pool_misses_total 9\n");
        let outcome = evaluate(
            &config(),
            fleet(1, 0),
            &scrape(BASELINE),
            Some(&steady),
            &fin,
            2,
        );
        let misses = outcome
            .checks
            .iter()
            .find(|c| c.name == "steady_pool_misses")
            .unwrap();
        assert_eq!(misses.value, Some(3.0));
        assert!(!misses.pass);
    }

    #[test]
    fn rss_growth_past_budget_fails() {
        let fin = scrape("process_resident_memory_bytes 2000000\nctc_sessions_closed_total 5\n");
        let steady = scrape("process_resident_memory_bytes 1000000\n");
        let outcome = evaluate(
            &config(),
            fleet(1, 0),
            &scrape(BASELINE),
            Some(&steady),
            &fin,
            2,
        );
        let rss = outcome
            .checks
            .iter()
            .find(|c| c.name == "rss_growth")
            .unwrap();
        assert_eq!(rss.value, Some(2.0));
        assert!(!rss.pass);
    }

    #[test]
    fn unmeasurable_checks_skip_but_are_reported() {
        // No steady scrape, no RSS gauge, no latency histogram, no forged
        // traffic: those checks skip; the run still passes on what is
        // measurable.
        let fin = scrape("ctc_gateway_bursts_total 20\nctc_sessions_closed_total 2\n");
        let outcome = evaluate(&config(), fleet(1, 0), &scrape(BASELINE), None, &fin, 0);
        for name in [
            "p99_latency_us",
            "recall",
            "steady_pool_misses",
            "rss_growth",
        ] {
            let c = outcome.checks.iter().find(|c| c.name == name).unwrap();
            assert!(c.skipped && c.pass, "{name}: {c:?}");
        }
        assert!(outcome.pass);
    }

    #[test]
    fn stream_errors_always_fail_the_run() {
        let mut f = fleet(2, 0);
        f.streams[1].error = Some("connect: refused".to_string());
        let fin = scrape("ctc_sessions_closed_total 2\n");
        let outcome = evaluate(&config(), f, &scrape(BASELINE), None, &fin, 0);
        let errs = outcome
            .checks
            .iter()
            .find(|c| c.name == "stream_errors")
            .unwrap();
        assert_eq!(errs.value, Some(1.0));
        assert!(!errs.pass);
        assert!(!outcome.pass);
    }

    #[test]
    fn breach_incident_snapshot_is_self_contained_and_parseable() {
        // A failing recall run (10 detected of 16 sent).
        let fin = scrape(
            "\
ctc_gateway_bursts_total 170
ctc_gateway_frames_total{verdict=\"attack\"} 12
ctc_queue_dropped_total 1
ctc_sessions_closed_total 5
",
        );
        let outcome = evaluate(&config(), fleet(4, 4), &scrape(BASELINE), None, &fin, 1);
        assert!(!outcome.pass);

        let path =
            std::env::temp_dir().join(format!("ctc_loadgen_incident_{}.json", std::process::id()));
        write_incident(
            &path,
            &outcome,
            BASELINE,
            "ctc_gateway_bursts_total 170\nctc_gateway_frames_total{verdict=\"attack\"} 12\n",
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let doc = ctc_gateway::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("type").and_then(|v| v.as_str()),
            Some("ctc_incident")
        );
        assert_eq!(
            doc.get("trigger").and_then(|v| v.as_str()),
            Some("slo_breach")
        );
        // One slo_check journal event per asserted bound.
        let events = doc.get("events").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), outcome.checks.len());
        assert!(events
            .iter()
            .all(|e| e.get("kind").and_then(|k| k.as_str()) == Some("slo_check")));
        // The failing check is visible in both the journal and the slo
        // section.
        let slo = doc.get("slo").and_then(|v| v.as_array()).unwrap();
        let recall = slo
            .iter()
            .find(|c| c.get("name").and_then(|n| n.as_str()) == Some("recall"))
            .unwrap();
        assert_eq!(recall.get("pass").and_then(|p| p.as_bool()), Some(false));
        // Registry delta from the embedded baseline/final expositions.
        let delta = doc.get("delta").and_then(|v| v.as_array()).unwrap();
        assert!(delta.iter().any(|d| {
            d.get("name").and_then(|n| n.as_str()) == Some("ctc_gateway_bursts_total")
                && d.get("delta").and_then(|x| x.as_f64()) == Some(160.0)
        }));
    }

    #[test]
    fn disabled_slos_produce_no_checks() {
        let mut cfg = config();
        cfg.slo = SloSpec {
            p99_latency_us: None,
            max_drop_rate: None,
            min_recall: None,
            max_steady_pool_misses: None,
            max_rss_growth: None,
        };
        let fin = scrape("ctc_sessions_closed_total 2\n");
        let outcome = evaluate(&cfg, fleet(1, 0), &scrape(BASELINE), None, &fin, 0);
        assert_eq!(outcome.checks.len(), 1, "{:#?}", outcome.checks);
        assert_eq!(outcome.checks[0].name, "stream_errors");
    }
}
