//! Fleet configuration: how many streams, what traffic mix, how fast.
//!
//! A [`FleetSpec`] fully determines the generated traffic — the same spec
//! (same seed) always produces the same per-stream event schedules and
//! the same waveform bytes, so a soak run is reproducible and its
//! ground-truth forgery schedule is known without parsing gateway output.

use std::fmt;
use std::time::Duration;

/// Relative weights of the three traffic kinds in a stream's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of authentic ZigBee bursts.
    pub authentic: u32,
    /// Weight of WiFi-emulated forgeries.
    pub forged: u32,
    /// Weight of loud undecodable noise bursts.
    pub noise: u32,
}

impl Default for Mix {
    fn default() -> Self {
        // Mostly legitimate traffic with forgeries hidden inside it — the
        // operating point the paper's defense is meant for.
        Mix {
            authentic: 6,
            forged: 2,
            noise: 2,
        }
    }
}

impl Mix {
    /// Sum of the weights.
    pub fn total(&self) -> u32 {
        self.authentic + self.forged + self.noise
    }

    /// Parses `"A:F:N"` (e.g. `6:2:2`).
    ///
    /// # Errors
    ///
    /// [`SpecError::Mix`] for anything that is not three `:`-separated
    /// non-negative integers.
    pub fn parse(s: &str) -> Result<Mix, SpecError> {
        let bad = || SpecError::Mix(s.to_string());
        let mut parts = s.split(':');
        let mut next = || -> Result<u32, SpecError> {
            parts
                .next()
                .ok_or_else(bad)?
                .trim()
                .parse()
                .map_err(|_| bad())
        };
        let mix = Mix {
            authentic: next()?,
            forged: next()?,
            noise: next()?,
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(mix)
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.authentic, self.forged, self.noise)
    }
}

/// Full description of a generated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Concurrent streams to open against the gateway.
    pub streams: usize,
    /// Events (bursts) per stream in fixed-count mode; soak mode loops
    /// the schedule until its deadline instead.
    pub events_per_stream: usize,
    /// Traffic mix weights.
    pub mix: Mix,
    /// Quiet-gap length between bursts, in samples. Must exceed the
    /// energy detector's hang time or consecutive bursts merge.
    pub gap_samples: usize,
    /// Per-stream sample rate in Msamples/s; `0.0` means line rate
    /// (write as fast as the socket accepts).
    pub rate_msps: f64,
    /// Seed for template synthesis and per-stream schedules.
    pub seed: u64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            streams: 8,
            events_per_stream: 16,
            mix: Mix::default(),
            gap_samples: 4096,
            // Comfortably under the single-core pipeline rate even when
            // multiplied across the default fleet.
            rate_msps: 0.25,
            seed: 7,
        }
    }
}

impl FleetSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the first degenerate field: zero streams or
    /// events, an all-zero mix, a gap too short to separate bursts, or a
    /// negative/non-finite rate.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.streams == 0 {
            return Err(SpecError::Streams);
        }
        if self.events_per_stream == 0 {
            return Err(SpecError::Events);
        }
        if self.mix.total() == 0 {
            return Err(SpecError::Mix(self.mix.to_string()));
        }
        // Below a few hundred samples the detector's hang window bridges
        // the gap and adjacent bursts merge into one.
        if self.gap_samples < 256 {
            return Err(SpecError::Gap(self.gap_samples));
        }
        if !self.rate_msps.is_finite() || self.rate_msps < 0.0 {
            return Err(SpecError::Rate(self.rate_msps));
        }
        Ok(())
    }

    /// Per-stream rate in samples per second; `None` at line rate.
    pub fn rate_sps(&self) -> Option<f64> {
        (self.rate_msps > 0.0).then_some(self.rate_msps * 1e6)
    }

    /// A rough floor on how long the fixed-count run takes at the
    /// configured rate (line rate: zero).
    pub fn min_duration(&self, samples_per_event: usize) -> Duration {
        match self.rate_sps() {
            Some(sps) => {
                Duration::from_secs_f64((self.events_per_stream * samples_per_event) as f64 / sps)
            }
            None => Duration::ZERO,
        }
    }
}

/// A rejected [`FleetSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// `streams == 0`.
    Streams,
    /// `events_per_stream == 0`.
    Events,
    /// Unparseable or all-zero mix.
    Mix(String),
    /// Gap too short to separate bursts.
    Gap(usize),
    /// Negative or non-finite rate.
    Rate(f64),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Streams => write!(f, "streams must be > 0"),
            SpecError::Events => write!(f, "events per stream must be > 0"),
            SpecError::Mix(s) => write!(
                f,
                "mix must be three ':'-separated weights with a nonzero sum, got {s:?}"
            ),
            SpecError::Gap(n) => write!(
                f,
                "gap of {n} samples is too short to separate bursts (min 256)"
            ),
            SpecError::Rate(r) => {
                write!(f, "rate must be a finite non-negative Msamples/s, got {r}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        FleetSpec::default().validate().unwrap();
    }

    #[test]
    fn mix_parses_and_round_trips() {
        let mix = Mix::parse("6:2:2").unwrap();
        assert_eq!(mix, Mix::default());
        assert_eq!(Mix::parse(&mix.to_string()).unwrap(), mix);
        assert_eq!(Mix::parse("1:0:0").unwrap().total(), 1);
        for bad in ["", "1:2", "1:2:3:4", "a:b:c", "1:-2:3"] {
            assert!(Mix::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let base = FleetSpec::default();
        assert!(FleetSpec {
            streams: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(FleetSpec {
            events_per_stream: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        let zero_mix = Mix {
            authentic: 0,
            forged: 0,
            noise: 0,
        };
        assert!(FleetSpec {
            mix: zero_mix,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(FleetSpec {
            gap_samples: 100,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(FleetSpec {
            rate_msps: -1.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(FleetSpec {
            rate_msps: f64::NAN,
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn line_rate_has_no_pacing() {
        let spec = FleetSpec {
            rate_msps: 0.0,
            ..FleetSpec::default()
        };
        assert_eq!(spec.rate_sps(), None);
        assert_eq!(spec.min_duration(10_000), Duration::ZERO);
        let paced = FleetSpec {
            rate_msps: 1.0,
            events_per_stream: 10,
            ..FleetSpec::default()
        };
        assert_eq!(paced.min_duration(100_000), Duration::from_secs(1));
    }
}
