//! Loadgen error type.

use crate::spec::SpecError;
use std::fmt;

/// Anything that stops a load-generation run before it produces a
/// report. Per-stream connect/write failures are *not* errors — they are
/// recorded in-band in the fleet report, because a partially degraded
/// gateway is exactly what a capacity probe wants to observe.
#[derive(Debug)]
pub enum LoadgenError {
    /// The fleet spec failed validation.
    Spec(SpecError),
    /// The target string was not `tcp://` or `unix://`.
    Target {
        /// The offending target string.
        target: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A required metrics scrape (baseline or final) failed.
    Scrape {
        /// The metrics endpoint address.
        addr: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadgenError::Spec(e) => write!(f, "invalid fleet spec: {e}"),
            LoadgenError::Target { target, reason } => {
                write!(f, "bad target {target:?}: {reason}")
            }
            LoadgenError::Scrape { addr, source } => {
                write!(f, "metrics scrape from {addr} failed: {source}")
            }
        }
    }
}

impl std::error::Error for LoadgenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadgenError::Spec(e) => Some(e),
            LoadgenError::Scrape { source, .. } => Some(source),
            LoadgenError::Target { .. } => None,
        }
    }
}

impl From<SpecError> for LoadgenError {
    fn from(e: SpecError) -> Self {
        LoadgenError::Spec(e)
    }
}
