//! The JSON capacity report: what was generated, what the gateway
//! observed, and the SLO verdict — one machine-readable object that CI
//! archives as an artifact and scripts assert on.

use crate::fleet::{FleetReport, Target};
use crate::soak::{SloCheck, SoakConfig, SoakOutcome};
use crate::spec::FleetSpec;
use ctc_gateway::json::JsonObject;

/// The spec echoed into the report, so a stored artifact is
/// self-describing.
fn spec_json(spec: &FleetSpec) -> String {
    JsonObject::new()
        .uint("streams", spec.streams as u64)
        .uint("events_per_stream", spec.events_per_stream as u64)
        .string("mix", &spec.mix.to_string())
        .uint("gap_samples", spec.gap_samples as u64)
        .float("rate_msps", spec.rate_msps)
        .uint("seed", spec.seed)
        .finish()
}

fn sent_json(report: &FleetReport) -> String {
    let sent = report.sent();
    JsonObject::new()
        .uint("authentic", sent.authentic)
        .uint("forged", sent.forged)
        .uint("noise", sent.noise)
        .uint("bursts", sent.total())
        .uint("samples", report.samples())
        .float("aggregate_msps", report.msps())
        .float("elapsed_s", report.elapsed.as_secs_f64())
        .uint("stream_errors", report.errors() as u64)
        .finish()
}

/// Renders the fixed-count (non-soak) run report.
pub fn render_fleet(spec: &FleetSpec, target: &Target, report: &FleetReport) -> String {
    JsonObject::new()
        .string("mode", "fixed")
        .string("target", &target.to_string())
        .raw("loadgen", &spec_json(spec))
        .raw("sent", &sent_json(report))
        .bool("pass", report.errors() == 0)
        .finish()
}

/// The SLO check list as a JSON array — shared between the capacity
/// report's `slo` field and the breach incident snapshot's `slo`
/// section, so both render identically.
pub(crate) fn checks_json(checks: &[SloCheck]) -> String {
    let rendered: Vec<String> = checks
        .iter()
        .map(|c| {
            JsonObject::new()
                .string("name", c.name)
                .opt("value", c.value, JsonObject::float)
                .string("op", c.op)
                .float("bound", c.bound)
                .bool("pass", c.pass)
                .bool("skipped", c.skipped)
                .finish()
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

/// Renders the soak run's capacity report: config echo, ground-truth
/// send totals, scraped observations, per-SLO checks, and the capacity
/// point this run certifies (or refutes).
pub fn render_soak(config: &SoakConfig, target: &Target, outcome: &SoakOutcome) -> String {
    let obs = &outcome.observed;
    let observed = JsonObject::new()
        .float("bursts", obs.bursts)
        .float("frames_authentic", obs.frames_authentic)
        .float("frames_attack", obs.frames_attack)
        .float("frames_undecoded", obs.frames_undecoded)
        .float("dropped", obs.dropped)
        .opt("p99_latency_us", obs.p99_latency_us, JsonObject::float)
        .opt(
            "steady_pool_misses",
            obs.steady_pool_misses,
            JsonObject::float,
        )
        .opt("rss_steady_bytes", obs.rss_steady_bytes, JsonObject::float)
        .opt("rss_final_bytes", obs.rss_final_bytes, JsonObject::float)
        .float("sessions_closed", obs.sessions_closed)
        .uint("scrapes", obs.scrapes as u64)
        .finish();
    // The capacity point this run certifies: N streams at the achieved
    // aggregate rate, sustained iff every SLO held.
    let capacity = JsonObject::new()
        .uint("streams", config.fleet.streams as u64)
        .float("per_stream_msps", config.fleet.rate_msps)
        .float("aggregate_msps", outcome.fleet.msps())
        .bool("sustained", outcome.pass)
        .finish();
    JsonObject::new()
        .string("mode", "soak")
        .string("target", &target.to_string())
        .float("duration_s", config.duration.as_secs_f64())
        .float("warmup_s", config.warmup.as_secs_f64())
        .string("metrics_addr", &config.metrics_addr)
        .raw("loadgen", &spec_json(&config.fleet))
        .raw("sent", &sent_json(&outcome.fleet))
        .raw("observed", &observed)
        .raw("slo", &checks_json(&outcome.checks))
        .raw("capacity", &capacity)
        .string_if("incident", outcome.incident.as_deref())
        .bool("pass", outcome.pass)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{EventCounts, StreamStats};
    use ctc_gateway::json;
    use std::time::Duration;

    fn report() -> FleetReport {
        FleetReport {
            streams: vec![StreamStats {
                index: 0,
                sent: EventCounts {
                    authentic: 5,
                    forged: 2,
                    noise: 1,
                },
                samples: 80_000,
                elapsed: Duration::from_secs(2),
                error: None,
            }],
            elapsed: Duration::from_secs(2),
        }
    }

    #[test]
    fn fleet_report_parses_and_carries_ground_truth() {
        let spec = FleetSpec::default();
        let target = Target::Tcp("127.0.0.1:9000".to_string());
        let line = render_fleet(&spec, &target, &report());
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("mode").unwrap().as_str(), Some("fixed"));
        assert_eq!(
            v.get("target").unwrap().as_str(),
            Some("tcp://127.0.0.1:9000")
        );
        let sent = v.get("sent").unwrap();
        assert_eq!(sent.get("forged").unwrap().as_f64(), Some(2.0));
        assert_eq!(sent.get("bursts").unwrap().as_f64(), Some(8.0));
        assert_eq!(v.get("pass").unwrap().as_bool(), Some(true));
        let echo = v.get("loadgen").unwrap();
        assert_eq!(echo.get("mix").unwrap().as_str(), Some("6:2:2"));
    }

    #[test]
    fn soak_report_renders_checks_and_capacity() {
        use crate::soak::{evaluate, SoakConfig};
        use ctc_obs::Scrape;
        let config = SoakConfig::new(
            FleetSpec::default(),
            "127.0.0.1:9100",
            Duration::from_secs(60),
        );
        let baseline = Scrape::parse("").unwrap();
        let fin = Scrape::parse(
            "ctc_gateway_bursts_total 8\nctc_gateway_frames_total{verdict=\"attack\"} 2\nctc_sessions_closed_total 1\n",
        )
        .unwrap();
        let outcome = evaluate(&config, report(), &baseline, None, &fin, 4);
        let target = Target::Tcp("127.0.0.1:9000".to_string());
        let line = render_soak(&config, &target, &outcome);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("mode").unwrap().as_str(), Some("soak"));
        assert_eq!(v.get("duration_s").unwrap().as_f64(), Some(60.0));
        let slo = v.get("slo").unwrap().as_array().unwrap();
        assert!(!slo.is_empty());
        let recall = slo
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("recall"))
            .unwrap();
        assert_eq!(recall.get("value").unwrap().as_f64(), Some(1.0));
        assert_eq!(recall.get("pass").unwrap().as_bool(), Some(true));
        let capacity = v.get("capacity").unwrap();
        assert_eq!(capacity.get("streams").unwrap().as_f64(), Some(8.0));
        assert_eq!(
            capacity.get("sustained").unwrap().as_bool(),
            v.get("pass").unwrap().as_bool()
        );
        // Skipped checks render as null values, still parseable.
        let rss = slo
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("rss_growth"))
            .unwrap();
        assert_eq!(rss.get("skipped").unwrap().as_bool(), Some(true));
        assert!(rss.get("value").unwrap().as_f64().is_none());
        // No breach, no incident field.
        assert!(v.get("incident").is_none());
    }

    #[test]
    fn soak_report_embeds_the_incident_path_on_breach() {
        use crate::soak::{evaluate, SoakConfig};
        use ctc_obs::Scrape;
        let config = SoakConfig::new(
            FleetSpec::default(),
            "127.0.0.1:9100",
            Duration::from_secs(60),
        );
        // No attack verdicts at all: recall 0 < 0.99 breaches.
        let fin =
            Scrape::parse("ctc_gateway_bursts_total 8\nctc_sessions_closed_total 1\n").unwrap();
        let mut outcome = evaluate(
            &config,
            report(),
            &Scrape::parse("").unwrap(),
            None,
            &fin,
            4,
        );
        assert!(!outcome.pass);
        outcome.incident = Some("/tmp/incident.json".to_string());
        let target = Target::Tcp("127.0.0.1:9000".to_string());
        let v = json::parse(&render_soak(&config, &target, &outcome)).unwrap();
        assert_eq!(v.get("pass").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("incident").unwrap().as_str(),
            Some("/tmp/incident.json")
        );
    }
}
