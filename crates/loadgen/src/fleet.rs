//! Fleet orchestration: N concurrent connections, one writer thread
//! each, aggregated into a [`FleetReport`] with generator-side ground
//! truth.

use crate::error::LoadgenError;
use crate::spec::FleetSpec;
use crate::stream::{drive, EventCounts, StreamStats};
use crate::synth::TrafficModel;
use std::io::Write;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where the generated traffic goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// `tcp://host:port`.
    Tcp(String),
    /// `unix://path`.
    Unix(PathBuf),
}

impl Target {
    /// Parses `tcp://host:port` or `unix://path`.
    ///
    /// # Errors
    ///
    /// [`LoadgenError::Target`] for any other shape — the generator only
    /// ever *connects*, so file/stdin inputs are meaningless here.
    pub fn parse(s: &str) -> Result<Target, LoadgenError> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            if addr.is_empty() {
                return Err(LoadgenError::Target {
                    target: s.to_string(),
                    reason: "empty tcp address".to_string(),
                });
            }
            return Ok(Target::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("unix://") {
            if path.is_empty() {
                return Err(LoadgenError::Target {
                    target: s.to_string(),
                    reason: "empty unix socket path".to_string(),
                });
            }
            return Ok(Target::Unix(PathBuf::from(path)));
        }
        Err(LoadgenError::Target {
            target: s.to_string(),
            reason: "expected tcp://host:port or unix://path".to_string(),
        })
    }

    /// Opens one connection.
    fn connect(&self) -> std::io::Result<Box<dyn Write + Send>> {
        match self {
            Target::Tcp(addr) => Ok(Box::new(TcpStream::connect(addr)?)),
            Target::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Tcp(addr) => write!(f, "tcp://{addr}"),
            Target::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Aggregated outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-stream outcomes, in stream-index order.
    pub streams: Vec<StreamStats>,
    /// Wall-clock duration from first connect to last stream done.
    pub elapsed: Duration,
}

impl FleetReport {
    /// Ground-truth totals over all streams.
    pub fn sent(&self) -> EventCounts {
        let mut total = EventCounts::default();
        for s in &self.streams {
            total.add(&s.sent);
        }
        total
    }

    /// Total samples written across the fleet.
    pub fn samples(&self) -> u64 {
        self.streams.iter().map(|s| s.samples).sum()
    }

    /// Aggregate achieved rate in Msamples/s.
    pub fn msps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.samples() as f64 / secs / 1e6
    }

    /// Streams that ended on a connect/write error.
    pub fn errors(&self) -> usize {
        self.streams.iter().filter(|s| s.error.is_some()).count()
    }
}

/// Runs `spec.streams` concurrent writers against `target`.
///
/// Each stream connects, drives its seeded schedule (cycling until
/// `duration` elapses when given, else one fixed pass), and hangs up.
/// Connect/write failures don't abort the fleet — they are recorded in
/// that stream's [`StreamStats::error`] so a partial outage shows up as
/// data, not a crash.
///
/// # Errors
///
/// [`LoadgenError::Spec`] when the spec fails validation; individual
/// stream errors are reported in-band.
pub fn run_fleet(
    spec: &FleetSpec,
    target: &Target,
    duration: Option<Duration>,
) -> Result<FleetReport, LoadgenError> {
    spec.validate().map_err(LoadgenError::Spec)?;
    let model = TrafficModel::build(spec);
    let rate = spec.rate_sps();
    let started = Instant::now();
    let deadline = duration.map(|d| started + d);
    let streams = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.streams)
            .map(|index| {
                let model = &model;
                let schedule = model.schedule(spec, index);
                scope.spawn(move || {
                    let stream_start = Instant::now();
                    let mut stats = StreamStats {
                        index,
                        sent: EventCounts::default(),
                        samples: 0,
                        elapsed: Duration::ZERO,
                        error: None,
                    };
                    match target.connect() {
                        Ok(mut conn) => match drive(&mut conn, model, &schedule, rate, deadline) {
                            Ok((sent, samples)) => {
                                stats.sent = sent;
                                stats.samples = samples;
                            }
                            Err(e) => stats.error = Some(format!("write: {e}")),
                        },
                        Err(e) => stats.error = Some(format!("connect: {e}")),
                    }
                    stats.elapsed = stream_start.elapsed();
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream writer panicked"))
            .collect::<Vec<_>>()
    });
    Ok(FleetReport {
        streams,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parses_both_schemes() {
        assert_eq!(
            Target::parse("tcp://127.0.0.1:9000").unwrap(),
            Target::Tcp("127.0.0.1:9000".to_string())
        );
        assert_eq!(
            Target::parse("unix:///tmp/gw.sock").unwrap(),
            Target::Unix(PathBuf::from("/tmp/gw.sock"))
        );
        assert_eq!(Target::parse("tcp://h:1").unwrap().to_string(), "tcp://h:1");
        for bad in [
            "",
            "tcp://",
            "unix://",
            "file:x.cf32",
            "127.0.0.1:9000",
            "-",
        ] {
            assert!(Target::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn connect_failures_are_in_band_not_fatal() {
        // A port nothing listens on: every stream records a connect error.
        let spec = FleetSpec {
            streams: 3,
            events_per_stream: 1,
            ..FleetSpec::default()
        };
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let target = Target::Tcp(addr.to_string());
        let report = run_fleet(&spec, &target, None).unwrap();
        assert_eq!(report.streams.len(), 3);
        assert_eq!(report.errors(), 3);
        assert_eq!(report.sent().total(), 0);
    }

    #[test]
    fn invalid_spec_is_refused_before_connecting() {
        let spec = FleetSpec {
            streams: 0,
            ..FleetSpec::default()
        };
        let target = Target::Tcp("127.0.0.1:1".to_string());
        assert!(matches!(
            run_fleet(&spec, &target, None),
            Err(LoadgenError::Spec(_))
        ));
    }

    /// End-to-end against a real socket: a sink server reads everything;
    /// the fleet's byte totals and ground truth line up.
    #[test]
    fn fleet_drives_concurrent_tcp_connections() {
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = std::thread::spawn(move || {
            let mut totals = Vec::new();
            for _ in 0..4 {
                let (mut conn, _) = listener.accept().unwrap();
                let mut buf = Vec::new();
                conn.read_to_end(&mut buf).unwrap();
                totals.push(buf.len());
            }
            totals
        });
        let spec = FleetSpec {
            streams: 4,
            events_per_stream: 2,
            rate_msps: 0.0,
            ..FleetSpec::default()
        };
        let target = Target::Tcp(addr.to_string());
        let report = run_fleet(&spec, &target, None).unwrap();
        let received: usize = acceptor.join().unwrap().iter().sum();
        assert_eq!(report.errors(), 0);
        assert_eq!(report.sent().total(), 8);
        assert_eq!(report.samples() as usize * 8, received);
        assert!(report.msps() > 0.0);
    }
}
