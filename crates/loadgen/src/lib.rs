//! # ctc-loadgen
//!
//! Fleet-scale traffic generation and soak testing for the streaming
//! detection gateway — the load half of the *Hide and Seek* (ICDCS 2019)
//! reproduction's capacity story. The defense only matters at scale if
//! the gateway holds its latency and drop budgets under realistic fleets
//! of mixed traffic; this crate generates exactly that traffic and
//! asserts exactly those budgets:
//!
//! - [`spec`] — [`FleetSpec`]: N streams, an authentic/forged/noise mix,
//!   a per-stream sample rate (up to line rate), one seed. Everything
//!   downstream is deterministic in the spec.
//! - [`synth`] — [`TrafficModel`]: the authentic ZigBee burst, its
//!   WiFi-emulated forgery (the paper's attack), a loud undecodable noise
//!   burst, and the quiet gap — each rendered *once* to cf32 bytes, so
//!   steady-state streaming is allocation-free slice writes.
//! - [`stream`] / [`fleet`] — paced per-connection writers and the
//!   scoped-thread fleet around them, reporting generator-side ground
//!   truth (exact forgeries sent per stream).
//! - [`soak`] — sustained load with SLOs asserted from scraped
//!   [`ctc_obs`] telemetry: p99 detection latency, aggregate and
//!   per-session drop budgets, forgery recall against ground truth, zero
//!   steady-state pool misses, bounded resident-memory growth.
//! - [`report`] — the JSON capacity report (config echo, send totals,
//!   observed deltas, per-SLO pass/fail, the certified capacity point)
//!   that `ctc loadgen` prints and CI archives.
//!
//! ```no_run
//! use ctc_loadgen::{run_soak, FleetSpec, SoakConfig, Target};
//! use std::time::Duration;
//!
//! let spec = FleetSpec { streams: 32, ..FleetSpec::default() };
//! let config = SoakConfig::new(spec, "127.0.0.1:9100", Duration::from_secs(60));
//! let target = Target::parse("tcp://127.0.0.1:9000")?;
//! let outcome = run_soak(&config, &target)?;
//! std::process::exit(if outcome.pass { 0 } else { 12 });
//! # Ok::<(), ctc_loadgen::LoadgenError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fleet;
pub mod report;
pub mod soak;
pub mod spec;
pub mod stream;
pub mod synth;

pub use error::LoadgenError;
pub use fleet::{run_fleet, FleetReport, Target};
pub use report::{render_fleet, render_soak};
pub use soak::{run_soak, SloCheck, SloSpec, SoakConfig, SoakOutcome};
pub use spec::{FleetSpec, Mix, SpecError};
pub use stream::{EventCounts, Pacer, StreamStats};
pub use synth::{EventKind, TrafficModel};
