//! Tolerance-aware comparison of golden vectors against live replays,
//! reporting the *first divergence* precisely: which stage, which sample
//! (or line/field), how far off — so a failing CI run points at the
//! offending pipeline layer instead of a wall of diff.

use crate::format::{Payload, Tolerance, Vector};
use ctc_dsp::metrics::ulp_distance;
use ctc_gateway::json::{parse, JsonValue};

/// Where and how a replay departed from its golden vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Stage (vector) name.
    pub stage: String,
    /// Element index: sample / scalar / byte index, or line number (0-based)
    /// for text vectors.
    pub index: usize,
    /// Human-readable location detail (`sample 1234`, `line 2 field "de2"`).
    pub location: String,
    /// The golden value at that location.
    pub expected: String,
    /// The live value at that location.
    pub got: String,
    /// Absolute difference (`f64::INFINITY` for structural mismatches).
    pub magnitude: f64,
    /// The tolerance the comparison ran under.
    pub tolerance: Tolerance,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at stage {:?}, {}: expected {}, got {} (|Δ| = {:.3e}, tolerance {})",
            self.stage,
            self.location,
            self.expected,
            self.got,
            self.magnitude,
            self.tolerance.describe()
        )
    }
}

/// One stage's comparison summary when it stayed within tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage (vector) name.
    pub stage: String,
    /// Elements compared.
    pub elements: usize,
    /// Largest absolute per-component deviation observed.
    pub max_abs: f64,
    /// Largest per-component ULP distance observed (0 for bit-identical).
    pub max_ulps: u64,
    /// Index of the worst element (0 when everything matched exactly).
    pub worst_index: usize,
    /// The tolerance the stage is held to.
    pub tolerance: Tolerance,
}

impl std::fmt::Display for StageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} {:>8} elements  max |Δ| {:.3e} ({} ulps) at {}  [{}]",
            self.stage,
            self.elements,
            self.max_abs,
            self.max_ulps,
            self.worst_index,
            self.tolerance.describe()
        )
    }
}

/// Running deviation tracker shared by all payload walks.
struct Tracker {
    max_abs: f64,
    max_ulps: u64,
    worst_index: usize,
}

impl Tracker {
    fn new() -> Self {
        Tracker {
            max_abs: 0.0,
            max_ulps: 0,
            worst_index: 0,
        }
    }

    fn observe(&mut self, index: usize, expected: f64, got: f64) {
        let abs = (expected - got).abs();
        let ulps = ulp_distance(expected, got);
        if abs > self.max_abs || ulps > self.max_ulps {
            self.worst_index = index;
        }
        self.max_abs = self.max_abs.max(abs);
        self.max_ulps = self.max_ulps.max(ulps);
    }
}

fn within(tolerance: Tolerance, expected: f64, got: f64) -> bool {
    match tolerance {
        Tolerance::Exact => expected.to_bits() == got.to_bits(),
        Tolerance::Absolute(eps) => (expected - got).abs() <= eps,
        Tolerance::Ulps(max) => ulp_distance(expected, got) <= max,
    }
}

/// Compares a live replay against its golden vector.
///
/// # Errors
///
/// Returns the first [`Divergence`] outside the golden vector's tolerance;
/// structural mismatches (name, kind, element count) diverge immediately.
pub fn compare(expected: &Vector, actual: &Vector) -> Result<StageReport, Box<Divergence>> {
    let diverge = |index: usize, location: String, exp: String, got: String, magnitude: f64| {
        Box::new(Divergence {
            stage: expected.name.clone(),
            index,
            location,
            expected: exp,
            got,
            magnitude,
            tolerance: expected.tolerance,
        })
    };

    if expected.name != actual.name {
        return Err(diverge(
            0,
            "header (stage name)".into(),
            format!("{:?}", expected.name),
            format!("{:?}", actual.name),
            f64::INFINITY,
        ));
    }
    if expected.payload.kind() != actual.payload.kind() {
        return Err(diverge(
            0,
            "header (payload kind)".into(),
            expected.payload.kind().name().into(),
            actual.payload.kind().name().into(),
            f64::INFINITY,
        ));
    }

    let tol = expected.tolerance;
    let mut tracker = Tracker::new();
    match (&expected.payload, &actual.payload) {
        (Payload::Samples(exp), Payload::Samples(got)) => {
            check_len(expected, exp.len(), got.len(), "samples")?;
            for (i, (e, g)) in exp.iter().zip(got).enumerate() {
                tracker.observe(i, e.re, g.re);
                tracker.observe(i, e.im, g.im);
                if !within(tol, e.re, g.re) || !within(tol, e.im, g.im) {
                    let mag = (e.re - g.re).abs().max((e.im - g.im).abs());
                    return Err(diverge(
                        i,
                        format!("sample {i}"),
                        format!("{e:?}"),
                        format!("{g:?}"),
                        mag,
                    ));
                }
            }
        }
        (Payload::Scalars(exp), Payload::Scalars(got)) => {
            check_len(expected, exp.len(), got.len(), "scalars")?;
            for (i, (&e, &g)) in exp.iter().zip(got).enumerate() {
                tracker.observe(i, e, g);
                if !within(tol, e, g) {
                    return Err(diverge(
                        i,
                        format!("scalar {i}"),
                        format!("{e}"),
                        format!("{g}"),
                        (e - g).abs(),
                    ));
                }
            }
        }
        (Payload::Bytes(exp), Payload::Bytes(got)) => {
            // Digital data never gets a float band: bytes are bit-exact by
            // construction, whatever the declared tolerance says.
            check_len(expected, exp.len(), got.len(), "bytes")?;
            for (i, (&e, &g)) in exp.iter().zip(got).enumerate() {
                if e != g {
                    return Err(diverge(
                        i,
                        format!("byte {i}"),
                        format!("0x{e:02x}"),
                        format!("0x{g:02x}"),
                        f64::from(e.abs_diff(g)),
                    ));
                }
            }
        }
        (Payload::Text(exp), Payload::Text(got)) => {
            compare_text(expected, exp, got, &mut tracker)?;
        }
        _ => unreachable!("kind equality checked above"),
    }

    Ok(StageReport {
        stage: expected.name.clone(),
        elements: expected.payload.len(),
        max_abs: tracker.max_abs,
        max_ulps: tracker.max_ulps,
        worst_index: tracker.worst_index,
        tolerance: tol,
    })
}

/// Full-scan variant of [`compare`] for the `diff` report: deviation
/// statistics over *every* element, not just up to the first divergence.
#[derive(Debug, Clone)]
pub struct Deviation {
    /// Deviation summary; `None` when shapes disagree (name, kind, length)
    /// so no element-wise statistics exist.
    pub report: Option<StageReport>,
    /// The first out-of-tolerance location, if any.
    pub first_divergence: Option<Box<Divergence>>,
}

/// A stage that failed its tolerance check: the first out-of-tolerance
/// location plus (when shapes agree) whole-stage deviation statistics, so
/// a failing CI log answers "how far off is the worst element" without a
/// second `diff` run.
#[derive(Debug, Clone)]
pub struct StageFailure {
    /// The first out-of-tolerance location.
    pub divergence: Divergence,
    /// Whole-stage deviation statistics; `None` when shapes disagree or
    /// the payload kind has no element-wise walk past the first mismatch.
    pub stats: Option<StageReport>,
}

impl std::fmt::Display for StageFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.divergence.fmt(f)?;
        if let Some(s) = &self.stats {
            write!(
                f,
                "; whole stage: max |Δ| {:.3e} ({} ulps) at element {} of {}",
                s.max_abs, s.max_ulps, s.worst_index, s.elements
            )?;
        }
        Ok(())
    }
}

/// Scans the whole stage and reports deviation statistics alongside the
/// first divergence (if any) — `compare` for humans reviewing a legitimate
/// regeneration, where "how close is everything else" matters as much as
/// "what failed first".
pub fn deviation(expected: &Vector, actual: &Vector) -> Deviation {
    match compare(expected, actual) {
        // compare's tracker visited every element (including the JSON
        // number fields of text payloads), so its in-tolerance report
        // already carries the full-scan statistics.
        Ok(report) => Deviation {
            report: Some(report),
            first_divergence: None,
        },
        Err(first_divergence) => Deviation {
            report: full_scan_report(expected, actual),
            first_divergence: Some(first_divergence),
        },
    }
}

/// Whole-stage deviation statistics ignoring the tolerance, for stages that
/// already failed [`compare`]. `None` when shapes disagree or the payload
/// kind (bytes, text) has no element-wise walk past the first mismatch.
pub(crate) fn full_scan_report(expected: &Vector, actual: &Vector) -> Option<StageReport> {
    let tracker = match (&expected.payload, &actual.payload) {
        (Payload::Samples(exp), Payload::Samples(got)) if exp.len() == got.len() => {
            let mut tracker = Tracker::new();
            for (i, (e, g)) in exp.iter().zip(got).enumerate() {
                tracker.observe(i, e.re, g.re);
                tracker.observe(i, e.im, g.im);
            }
            tracker
        }
        (Payload::Scalars(exp), Payload::Scalars(got)) if exp.len() == got.len() => {
            let mut tracker = Tracker::new();
            for (i, (&e, &g)) in exp.iter().zip(got).enumerate() {
                tracker.observe(i, e, g);
            }
            tracker
        }
        _ => return None,
    };
    Some(StageReport {
        stage: expected.name.clone(),
        elements: expected.payload.len(),
        max_abs: tracker.max_abs,
        max_ulps: tracker.max_ulps,
        worst_index: tracker.worst_index,
        tolerance: expected.tolerance,
    })
}

fn check_len(expected: &Vector, exp: usize, got: usize, unit: &str) -> Result<(), Box<Divergence>> {
    if exp == got {
        return Ok(());
    }
    Err(Box::new(Divergence {
        stage: expected.name.clone(),
        index: exp.min(got),
        location: format!("element count ({unit})"),
        expected: exp.to_string(),
        got: got.to_string(),
        magnitude: f64::INFINITY,
        tolerance: expected.tolerance,
    }))
}

/// Line-by-line comparison. Lines that parse as JSON on both sides are
/// compared field-wise (numbers under the vector's tolerance, everything
/// else exact, field order significant); other lines must match verbatim.
fn compare_text(
    vector: &Vector,
    exp: &str,
    got: &str,
    tracker: &mut Tracker,
) -> Result<(), Box<Divergence>> {
    let exp_lines: Vec<&str> = exp.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    if exp_lines.len() != got_lines.len() {
        return Err(Box::new(Divergence {
            stage: vector.name.clone(),
            index: exp_lines.len().min(got_lines.len()),
            location: "line count".into(),
            expected: exp_lines.len().to_string(),
            got: got_lines.len().to_string(),
            magnitude: f64::INFINITY,
            tolerance: vector.tolerance,
        }));
    }
    for (i, (e, g)) in exp_lines.iter().zip(&got_lines).enumerate() {
        match (parse(e), parse(g)) {
            (Ok(ev), Ok(gv)) => {
                if let Some((path, exp_repr, got_repr, mag)) =
                    json_divergence(&ev, &gv, vector.tolerance, tracker, i, String::new())
                {
                    return Err(Box::new(Divergence {
                        stage: vector.name.clone(),
                        index: i,
                        location: format!("line {i}{path}"),
                        expected: exp_repr,
                        got: got_repr,
                        magnitude: mag,
                        tolerance: vector.tolerance,
                    }));
                }
            }
            _ => {
                if e != g {
                    return Err(Box::new(Divergence {
                        stage: vector.name.clone(),
                        index: i,
                        location: format!("line {i} (verbatim)"),
                        expected: format!("{e:?}"),
                        got: format!("{g:?}"),
                        magnitude: f64::INFINITY,
                        tolerance: vector.tolerance,
                    }));
                }
            }
        }
    }
    Ok(())
}

/// Walks two JSON trees; `Some((path, expected, got, magnitude))` at the
/// first mismatch, recording numeric deviations into `tracker` on the way.
fn json_divergence(
    expected: &JsonValue,
    got: &JsonValue,
    tolerance: Tolerance,
    tracker: &mut Tracker,
    line: usize,
    path: String,
) -> Option<(String, String, String, f64)> {
    match (expected, got) {
        (JsonValue::Number(e), JsonValue::Number(g)) => {
            tracker.observe(line, *e, *g);
            // Numeric text fields use Absolute/Ulps as given; Exact means
            // the parsed values must be identical.
            let ok = match tolerance {
                Tolerance::Exact => e.to_bits() == g.to_bits(),
                other => within(other, *e, *g),
            };
            if ok {
                None
            } else {
                Some((path, e.to_string(), g.to_string(), (e - g).abs()))
            }
        }
        (JsonValue::Object(ef), JsonValue::Object(gf)) => {
            if ef.len() != gf.len() || ef.iter().zip(gf).any(|((ek, _), (gk, _))| ek != gk) {
                let keys = |f: &[(String, JsonValue)]| {
                    f.iter()
                        .map(|(k, _)| k.clone())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                return Some((
                    format!("{path} (object keys)"),
                    keys(ef),
                    keys(gf),
                    f64::INFINITY,
                ));
            }
            for ((key, ev), (_, gv)) in ef.iter().zip(gf) {
                let sub = format!("{path} field {key:?}");
                if let Some(d) = json_divergence(ev, gv, tolerance, tracker, line, sub) {
                    return Some(d);
                }
            }
            None
        }
        (JsonValue::Array(ea), JsonValue::Array(ga)) => {
            if ea.len() != ga.len() {
                return Some((
                    format!("{path} (array length)"),
                    ea.len().to_string(),
                    ga.len().to_string(),
                    f64::INFINITY,
                ));
            }
            for (i, (ev, gv)) in ea.iter().zip(ga).enumerate() {
                let sub = format!("{path}[{i}]");
                if let Some(d) = json_divergence(ev, gv, tolerance, tracker, line, sub) {
                    return Some(d);
                }
            }
            None
        }
        (e, g) if e == g => None,
        (e, g) => Some((path, format!("{e:?}"), format!("{g:?}"), f64::INFINITY)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_dsp::Complex;

    fn samples_vector(tol: Tolerance, data: Vec<Complex>) -> Vector {
        Vector {
            name: "stage_a".into(),
            tolerance: tol,
            payload: Payload::Samples(data),
        }
    }

    #[test]
    fn identical_vectors_report_zero_deviation() {
        let v = samples_vector(
            Tolerance::Exact,
            vec![Complex::new(1.0, -2.0), Complex::new(0.5, 0.25)],
        );
        let r = compare(&v, &v.clone()).unwrap();
        assert_eq!(r.max_abs, 0.0);
        assert_eq!(r.max_ulps, 0);
        assert_eq!(r.elements, 2);
    }

    #[test]
    fn absolute_band_allows_small_drift_and_flags_large() {
        let base = samples_vector(Tolerance::Absolute(1e-9), vec![Complex::new(1.0, 1.0); 10]);
        let mut near = base.clone();
        if let Payload::Samples(s) = &mut near.payload {
            s[3].re += 5e-10;
        }
        let r = compare(&base, &near).unwrap();
        assert!(r.max_abs > 0.0 && r.max_abs <= 1e-9);
        assert_eq!(r.worst_index, 3);

        let mut far = base.clone();
        if let Payload::Samples(s) = &mut far.payload {
            s[7].im -= 1e-3;
        }
        let d = compare(&base, &far).unwrap_err();
        assert_eq!(d.stage, "stage_a");
        assert_eq!(d.index, 7);
        assert!(d.location.contains("sample 7"));
        assert!((d.magnitude - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn ulp_band_is_scale_free() {
        let tiny = 1e-12;
        let base = samples_vector(Tolerance::Ulps(4), vec![Complex::new(tiny, 1e9)]);
        let mut nudged = base.clone();
        if let Payload::Samples(s) = &mut nudged.payload {
            s[0].re = f64::from_bits(s[0].re.to_bits() + 3);
            s[0].im = f64::from_bits(s[0].im.to_bits() - 2);
        }
        let r = compare(&base, &nudged).unwrap();
        assert_eq!(r.max_ulps, 3);

        if let Payload::Samples(s) = &mut nudged.payload {
            s[0].im = f64::from_bits(s[0].im.to_bits() + 50);
        }
        assert!(compare(&base, &nudged).is_err());
    }

    #[test]
    fn byte_flip_is_always_a_divergence() {
        let base = Vector {
            name: "chips".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Bytes(vec![0, 1, 1, 0, 1]),
        };
        let mut flipped = base.clone();
        if let Payload::Bytes(b) = &mut flipped.payload {
            b[2] ^= 1;
        }
        let d = compare(&base, &flipped).unwrap_err();
        assert_eq!(d.index, 2);
        assert!(d.location.contains("byte 2"));
    }

    #[test]
    fn length_mismatch_diverges_at_shorter_length() {
        let a = samples_vector(Tolerance::Exact, vec![Complex::ONE; 5]);
        let b = samples_vector(Tolerance::Exact, vec![Complex::ONE; 3]);
        let d = compare(&a, &b).unwrap_err();
        assert_eq!(d.index, 3);
        assert!(d.location.contains("element count"));
    }

    #[test]
    fn kind_and_name_mismatches_diverge() {
        let a = samples_vector(Tolerance::Exact, vec![]);
        let mut b = a.clone();
        b.name = "other".into();
        assert!(compare(&a, &b).unwrap_err().location.contains("name"));
        let c = Vector {
            name: "stage_a".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Bytes(vec![]),
        };
        assert!(compare(&a, &c).unwrap_err().location.contains("kind"));
    }

    #[test]
    fn jsonl_numeric_fields_use_tolerance_and_name_the_field() {
        let text = |de2: f64| {
            format!("{{\"type\":\"frame\",\"seq\":0,\"de2\":{de2},\"verdict\":\"authentic\"}}\n")
        };
        let base = Vector {
            name: "gateway_events".into(),
            tolerance: Tolerance::Absolute(1e-6),
            payload: Payload::Text(text(0.123456)),
        };
        let near = Vector {
            payload: Payload::Text(text(0.12345649)),
            ..base.clone()
        };
        assert!(compare(&base, &near).is_ok());
        let far = Vector {
            payload: Payload::Text(text(0.2)),
            ..base.clone()
        };
        let d = compare(&base, &far).unwrap_err();
        assert_eq!(d.index, 0);
        assert!(d.location.contains("de2"), "{}", d.location);
        assert!((d.magnitude - 0.076543444).abs() < 1e-6);
    }

    #[test]
    fn jsonl_string_fields_are_exact() {
        let line = |verdict: &str| format!("{{\"seq\":1,\"verdict\":{verdict:?}}}\n");
        let base = Vector {
            name: "gateway_events".into(),
            tolerance: Tolerance::Absolute(1e-6),
            payload: Payload::Text(line("authentic")),
        };
        let other = Vector {
            payload: Payload::Text(line("attack")),
            ..base.clone()
        };
        let d = compare(&base, &other).unwrap_err();
        assert!(d.location.contains("verdict"));
        assert!(d.magnitude.is_infinite());
    }

    #[test]
    fn jsonl_line_count_mismatch() {
        let base = Vector {
            name: "events".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Text("{\"a\":1}\n{\"a\":2}\n".into()),
        };
        let short = Vector {
            payload: Payload::Text("{\"a\":1}\n".into()),
            ..base.clone()
        };
        let d = compare(&base, &short).unwrap_err();
        assert!(d.location.contains("line count"));
        assert_eq!(d.index, 1);
    }

    #[test]
    fn non_json_text_compares_verbatim() {
        let base = Vector {
            name: "notes".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Text("plain line\n".into()),
        };
        assert!(compare(&base, &base.clone()).is_ok());
        let other = Vector {
            payload: Payload::Text("plain lime\n".into()),
            ..base.clone()
        };
        let d = compare(&base, &other).unwrap_err();
        assert!(d.location.contains("verbatim"));
    }

    #[test]
    fn deviation_scans_past_the_first_divergence() {
        let base = samples_vector(Tolerance::Absolute(1e-9), vec![Complex::new(1.0, 1.0); 8]);
        let mut off = base.clone();
        if let Payload::Samples(s) = &mut off.payload {
            s[1].re += 1e-3; // first divergence
            s[6].im += 5e-2; // the actual worst element
        }
        let d = deviation(&base, &off);
        let first = d.first_divergence.expect("out of tolerance");
        assert_eq!(first.index, 1);
        let report = d.report.expect("same shape");
        assert_eq!(report.worst_index, 6);
        assert!((report.max_abs - 5e-2).abs() < 1e-12);

        // Shape mismatch: divergence but no statistics.
        let short = samples_vector(Tolerance::Absolute(1e-9), vec![Complex::ONE; 3]);
        let d = deviation(&base, &short);
        assert!(d.report.is_none());
        assert!(d.first_divergence.is_some());
    }

    #[test]
    fn divergence_display_names_everything() {
        let base = samples_vector(Tolerance::Absolute(1e-9), vec![Complex::ONE]);
        let mut off = base.clone();
        if let Payload::Samples(s) = &mut off.payload {
            s[0].re = 2.0;
        }
        let d = compare(&base, &off).unwrap_err();
        let text = d.to_string();
        assert!(text.contains("stage_a"), "{text}");
        assert!(text.contains("sample 0"), "{text}");
        assert!(text.contains("tolerance"), "{text}");
    }
}
