//! The `.ctcv` golden-vector container: one canonical artifact per file,
//! self-describing (kind + tolerance travel with the data) and integrity-
//! checked (FNV-1a 64 checksum over the payload), so a corpus directory
//! can be read back years later without out-of-band schema knowledge.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "CTCV"                      4 bytes
//! version u16                         2
//! kind    u8   (samples/bytes/scalars/text)
//! tol     u8   (exact/absolute/ulps) + f64 tolerance value
//! name    u32 length + UTF-8 bytes
//! payload u64 element count + elements
//!           samples: 2 × f64 (re, im) per element
//!           scalars: 1 × f64 per element
//!           bytes / text: 1 byte per element
//! check   u64 FNV-1a of the payload bytes
//! ```

use ctc_dsp::Complex;
use std::io::{self, Read, Write};

/// File magic.
pub const MAGIC: [u8; 4] = *b"CTCV";
/// Container format version.
pub const FORMAT_VERSION: u16 = 1;

/// What one vector's elements are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Complex baseband samples (f64 I/Q pairs).
    Samples,
    /// Raw bytes (chip sequences, payloads) — always compared bit-exact.
    Bytes,
    /// A flat series of f64 scalars (feature triples, metadata).
    Scalars,
    /// UTF-8 text, compared line-by-line as JSON when lines parse
    /// (numeric fields get the vector's tolerance).
    Text,
}

impl Kind {
    fn code(self) -> u8 {
        match self {
            Kind::Samples => 0,
            Kind::Bytes => 1,
            Kind::Scalars => 2,
            Kind::Text => 3,
        }
    }

    fn from_code(code: u8) -> Option<Kind> {
        match code {
            0 => Some(Kind::Samples),
            1 => Some(Kind::Bytes),
            2 => Some(Kind::Scalars),
            3 => Some(Kind::Text),
            _ => None,
        }
    }

    /// Stable lowercase name (used in the manifest).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Samples => "samples",
            Kind::Bytes => "bytes",
            Kind::Scalars => "scalars",
            Kind::Text => "text",
        }
    }
}

/// How closely a replayed stage must match its golden vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bit-for-bit: digital stages (chips, bytes) and normalized text.
    Exact,
    /// `|expected − got| ≤ ε` per component: float DSP stages whose
    /// absolute scale is known (unit-power waveforms, feature values).
    Absolute(f64),
    /// At most this many representable doubles apart per component
    /// (see [`ctc_dsp::metrics::ulp_distance`]): scale-free bands for
    /// stages mixing large and small magnitudes.
    Ulps(u64),
}

impl Tolerance {
    fn code(self) -> (u8, f64) {
        match self {
            Tolerance::Exact => (0, 0.0),
            Tolerance::Absolute(e) => (1, e),
            Tolerance::Ulps(u) => (2, u as f64),
        }
    }

    fn from_code(code: u8, value: f64) -> Option<Tolerance> {
        match code {
            0 => Some(Tolerance::Exact),
            1 => Some(Tolerance::Absolute(value)),
            2 => Some(Tolerance::Ulps(value as u64)),
            _ => None,
        }
    }

    /// Stable rendering (used in the manifest and reports): `exact`,
    /// `abs=1e-9`, `ulps=16`.
    pub fn describe(self) -> String {
        match self {
            Tolerance::Exact => "exact".to_string(),
            Tolerance::Absolute(e) => format!("abs={e}"),
            Tolerance::Ulps(u) => format!("ulps={u}"),
        }
    }
}

/// A vector's elements.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Complex samples.
    Samples(Vec<Complex>),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// f64 series.
    Scalars(Vec<f64>),
    /// UTF-8 text.
    Text(String),
}

impl Payload {
    /// The matching [`Kind`] tag.
    pub fn kind(&self) -> Kind {
        match self {
            Payload::Samples(_) => Kind::Samples,
            Payload::Bytes(_) => Kind::Bytes,
            Payload::Scalars(_) => Kind::Scalars,
            Payload::Text(_) => Kind::Text,
        }
    }

    /// Element count (samples, scalars, or bytes).
    pub fn len(&self) -> usize {
        match self {
            Payload::Samples(v) => v.len(),
            Payload::Bytes(v) => v.len(),
            Payload::Scalars(v) => v.len(),
            Payload::Text(s) => s.len(),
        }
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self {
            Payload::Samples(v) => {
                let mut out = Vec::with_capacity(v.len() * 16);
                for s in v {
                    out.extend_from_slice(&s.re.to_le_bytes());
                    out.extend_from_slice(&s.im.to_le_bytes());
                }
                out
            }
            Payload::Bytes(v) => v.clone(),
            Payload::Scalars(v) => {
                let mut out = Vec::with_capacity(v.len() * 8);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                out
            }
            Payload::Text(s) => s.as_bytes().to_vec(),
        }
    }

    fn from_bytes(kind: Kind, count: usize, bytes: &[u8]) -> io::Result<Payload> {
        let f64_at =
            |i: usize| f64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        Ok(match kind {
            Kind::Samples => Payload::Samples(
                (0..count)
                    .map(|i| Complex::new(f64_at(2 * i), f64_at(2 * i + 1)))
                    .collect(),
            ),
            Kind::Bytes => Payload::Bytes(bytes.to_vec()),
            Kind::Scalars => Payload::Scalars((0..count).map(f64_at).collect()),
            Kind::Text => Payload::Text(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| bad_data("text payload is not UTF-8"))?,
            ),
        })
    }

    fn payload_bytes_len(kind: Kind, count: usize) -> usize {
        match kind {
            Kind::Samples => count * 16,
            Kind::Scalars => count * 8,
            Kind::Bytes | Kind::Text => count,
        }
    }
}

/// One golden vector: a named pipeline stage's canonical output plus the
/// tolerance its replay must meet.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    /// Stage name (`zigbee_chips`, `captured_4mhz`, …); also the file stem.
    pub name: String,
    /// Comparison band.
    pub tolerance: Tolerance,
    /// The canonical data.
    pub payload: Payload,
}

impl Vector {
    /// The corpus file name for this vector.
    pub fn file_name(&self) -> String {
        format!("{}.ctcv", self.name)
    }

    /// FNV-1a 64 checksum of the encoded payload bytes.
    pub fn checksum(&self) -> u64 {
        fnv1a64(&self.payload.to_bytes())
    }

    /// Serializes the vector into the container format.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload.to_bytes();
        let (tol_code, tol_value) = self.tolerance.code();
        let mut out = Vec::with_capacity(payload.len() + self.name.len() + 40);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.payload.kind().code());
        out.push(tol_code);
        out.extend_from_slice(&tol_value.to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Deserializes a vector, verifying magic, version and checksum.
    ///
    /// # Errors
    ///
    /// `InvalidData` on any structural problem or checksum mismatch.
    pub fn decode(bytes: &[u8]) -> io::Result<Vector> {
        let mut r = Cursor { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(bad_data("not a CTCV file (bad magic)"));
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
        if version != FORMAT_VERSION {
            return Err(bad_data(&format!(
                "unsupported CTCV version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let kind = Kind::from_code(r.take(1)?[0]).ok_or_else(|| bad_data("unknown kind"))?;
        let tol_code = r.take(1)?[0];
        let tol_value = f64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let tolerance = Tolerance::from_code(tol_code, tol_value)
            .ok_or_else(|| bad_data("unknown tolerance mode"))?;
        let name_len = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| bad_data("vector name is not UTF-8"))?;
        let count = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")) as usize;
        let payload_bytes = r.take(Payload::payload_bytes_len(kind, count))?;
        let stored_sum = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let actual_sum = fnv1a64(payload_bytes);
        if stored_sum != actual_sum {
            return Err(bad_data(&format!(
                "checksum mismatch in {name:?}: stored {stored_sum:016x}, computed {actual_sum:016x} (corrupt file?)"
            )));
        }
        if r.pos != bytes.len() {
            return Err(bad_data("trailing bytes after CTCV payload"));
        }
        let payload = Payload::from_bytes(kind, count, payload_bytes)?;
        Ok(Vector {
            name,
            tolerance,
            payload,
        })
    }

    /// Writes the encoded vector to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&self.encode())
    }

    /// Reads and decodes one vector from `reader`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and [`Vector::decode`] failures.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<Vector> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Vector::decode(&bytes)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad_data("truncated CTCV file"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Vector) {
        let decoded = Vector::decode(&v.encode()).unwrap();
        assert_eq!(&decoded, v);
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(&Vector {
            name: "samples".into(),
            tolerance: Tolerance::Ulps(16),
            payload: Payload::Samples(vec![Complex::new(0.5, -0.25), Complex::new(-1e-12, 3e7)]),
        });
        roundtrip(&Vector {
            name: "bytes".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Bytes(vec![0, 1, 255, 127]),
        });
        roundtrip(&Vector {
            name: "scalars".into(),
            tolerance: Tolerance::Absolute(1e-9),
            payload: Payload::Scalars(vec![1.0, -2.5, f64::MIN_POSITIVE]),
        });
        roundtrip(&Vector {
            name: "text".into(),
            tolerance: Tolerance::Absolute(1e-6),
            payload: Payload::Text("{\"a\":1}\n{\"b\":2}\n".into()),
        });
    }

    #[test]
    fn empty_payloads_roundtrip() {
        roundtrip(&Vector {
            name: "empty".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Samples(Vec::new()),
        });
    }

    #[test]
    fn corruption_is_detected() {
        let v = Vector {
            name: "stage".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Bytes(vec![1, 2, 3, 4]),
        };
        let mut bytes = v.encode();
        // Flip one payload byte; length and structure stay valid.
        let payload_at = bytes.len() - 8 - 2;
        bytes[payload_at] ^= 0xFF;
        let err = Vector::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let v = Vector {
            name: "stage".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Scalars(vec![1.0, 2.0]),
        };
        let bytes = v.encode();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(Vector::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Vector::decode(&extra).is_err(), "trailing byte");
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let v = Vector {
            name: "x".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Bytes(vec![]),
        };
        let mut bytes = v.encode();
        bytes[0] = b'X';
        assert!(Vector::decode(&bytes).is_err());
        let mut bytes = v.encode();
        bytes[4] = 99; // version
        let err = Vector::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn tolerance_descriptions_are_stable() {
        assert_eq!(Tolerance::Exact.describe(), "exact");
        assert_eq!(Tolerance::Absolute(1e-9).describe(), "abs=0.000000001");
        assert_eq!(Tolerance::Ulps(16).describe(), "ulps=16");
    }

    #[test]
    fn checksum_matches_known_fnv_vectors() {
        // Standard FNV-1a 64 test values.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
