//! Golden-vector regression corpus for the attack/defense pipeline.
//!
//! A committed directory of canonical artifacts — ZigBee chip sequences,
//! WiFi-emulated baseband blocks, impaired channel outputs, detector
//! feature triples, gateway JSONL event streams — regenerated through the
//! *live* code on every CI run and compared under per-stage tolerances.
//! A regression anywhere in TX → emulation → channel → RX → detection
//! surfaces as a first-divergence report naming the stage, the sample, and
//! the magnitude, instead of a downstream accuracy metric quietly shifting.
//!
//! Three layers:
//!
//! - [`mod@format`] — the self-describing `.ctcv` container (kind, tolerance,
//!   checksum travel with the data).
//! - [`corpus`] — deterministic generation: every stage a pure function of
//!   a [`CorpusSpec`], stochastic stages seeded with the same splitmix
//!   scheme the Monte-Carlo engine uses.
//! - [`mod@compare`] — tolerance-aware comparison with first-divergence
//!   reporting (bit-exact for digital stages, ULP/epsilon bands for float
//!   DSP stages).
//!
//! Corpus-level operations ([`write_corpus`], [`read_corpus`],
//! [`check_corpus`]) tie them together around a `manifest.json` that
//! records the generation spec and per-file checksums for review.

pub mod compare;
pub mod corpus;
pub mod format;

pub use compare::{compare, deviation, Deviation, Divergence, StageFailure, StageReport};
pub use corpus::{generate, normalize_events, CorpusSpec, CORPUS_SEED, STAGE_NAMES};
pub use format::{Kind, Payload, Tolerance, Vector, FORMAT_VERSION};

use ctc_gateway::json::{hex, parse, unhex, JsonObject, JsonValue};
use std::fs;
use std::io;
use std::path::Path;

/// The corpus index file name.
pub const MANIFEST_NAME: &str = "manifest.json";

/// Writes a corpus directory: one `.ctcv` file per vector plus
/// [`MANIFEST_NAME`] recording the spec and per-file checksums.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus(dir: &Path, spec: &CorpusSpec, vectors: &[Vector]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    for v in vectors {
        fs::write(dir.join(v.file_name()), v.encode())?;
    }
    fs::write(dir.join(MANIFEST_NAME), manifest_json(spec, vectors))?;
    Ok(())
}

/// Renders the manifest: generation parameters plus a per-vector index
/// (name, kind, tolerance, element count, FNV-1a 64 checksum).
pub fn manifest_json(spec: &CorpusSpec, vectors: &[Vector]) -> String {
    let entries: Vec<String> = vectors
        .iter()
        .map(|v| {
            JsonObject::new()
                .string("name", &v.name)
                .string("file", &v.file_name())
                .string("kind", v.payload.kind().name())
                .string("tolerance", &v.tolerance.describe())
                .uint("elements", v.payload.len() as u64)
                .string("fnv64", &format!("{:016x}", v.checksum()))
                .finish()
        })
        .collect();
    let mut manifest = JsonObject::new()
        .uint("format_version", u64::from(FORMAT_VERSION))
        // Seed as a string: JSON numbers are f64 and would corrupt seeds
        // above 2^53.
        .string("seed", &spec.seed.to_string())
        .string("payload_hex", &hex(&spec.payload))
        .float("snr_db", spec.snr_db)
        .float("cfo_hz", spec.cfo_hz)
        .float("phase_rad", spec.phase_rad)
        .raw("vectors", &format!("[\n  {}\n]", entries.join(",\n  ")))
        .finish();
    manifest.push('\n');
    manifest
}

fn bad_corpus(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn manifest_str<'a>(m: &'a JsonValue, key: &str) -> io::Result<&'a str> {
    m.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad_corpus(format!("manifest: missing string field {key:?}")))
}

fn manifest_f64(m: &JsonValue, key: &str) -> io::Result<f64> {
    m.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad_corpus(format!("manifest: missing number field {key:?}")))
}

/// Reads a corpus directory back: parses the manifest, loads every listed
/// `.ctcv` file, and cross-checks each file's payload checksum against the
/// manifest entry (so a stale manifest is as loud as a corrupt vector).
///
/// # Errors
///
/// `InvalidData` for manifest/vector disagreement or corruption; other
/// I/O errors pass through.
pub fn read_corpus(dir: &Path) -> io::Result<(CorpusSpec, Vec<Vector>)> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = fs::read_to_string(&manifest_path)?;
    let manifest = parse(&text).map_err(|e| bad_corpus(format!("manifest: {e}")))?;

    let version = manifest_f64(&manifest, "format_version")? as u64;
    if version != u64::from(FORMAT_VERSION) {
        return Err(bad_corpus(format!(
            "manifest format_version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let spec = CorpusSpec {
        seed: manifest_str(&manifest, "seed")?
            .parse()
            .map_err(|e| bad_corpus(format!("manifest: bad seed: {e}")))?,
        payload: unhex(manifest_str(&manifest, "payload_hex")?)
            .ok_or_else(|| bad_corpus("manifest: bad payload_hex".into()))?,
        snr_db: manifest_f64(&manifest, "snr_db")?,
        cfo_hz: manifest_f64(&manifest, "cfo_hz")?,
        phase_rad: manifest_f64(&manifest, "phase_rad")?,
    };

    let entries = manifest
        .get("vectors")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad_corpus("manifest: missing vectors array".into()))?;
    let mut vectors = Vec::with_capacity(entries.len());
    for entry in entries {
        let name = manifest_str(entry, "name")?;
        let file = manifest_str(entry, "file")?;
        let fnv64 = manifest_str(entry, "fnv64")?;
        let vector = Vector::read_from(fs::File::open(dir.join(file))?)?;
        if vector.name != name {
            return Err(bad_corpus(format!(
                "{file}: names itself {:?} but manifest says {name:?}",
                vector.name
            )));
        }
        let sum = format!("{:016x}", vector.checksum());
        if sum != fnv64 {
            return Err(bad_corpus(format!(
                "{file}: checksum {sum} does not match manifest {fnv64} \
                 (regenerate the corpus or restore the file)"
            )));
        }
        vectors.push(vector);
    }
    Ok((spec, vectors))
}

/// Why a corpus check failed.
#[derive(Debug)]
pub enum CheckError {
    /// Corpus directory unreadable, corrupt, or inconsistent.
    Io(io::Error),
    /// Live regeneration itself failed.
    Generate(ctc_core::Error),
    /// The live pipeline produces a stage the corpus does not contain
    /// (stale corpus after adding a stage).
    MissingStage(String),
    /// The corpus contains a stage the live pipeline no longer produces.
    ExtraStage(String),
    /// A stage replayed outside its tolerance. Carries the first
    /// out-of-tolerance location plus whole-stage deviation statistics.
    Diverged(Box<StageFailure>),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io(e) => write!(f, "corpus unreadable: {e}"),
            CheckError::Generate(e) => write!(f, "regeneration failed: {e}"),
            CheckError::MissingStage(s) => write!(
                f,
                "stage {s:?} exists in the live pipeline but not in the corpus \
                 (run `ctc vectors generate` and commit the result)"
            ),
            CheckError::ExtraStage(s) => write!(
                f,
                "corpus stage {s:?} is no longer produced by the live pipeline"
            ),
            CheckError::Diverged(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Io(e) => Some(e),
            CheckError::Generate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckError {
    fn from(e: io::Error) -> Self {
        CheckError::Io(e)
    }
}

/// Replays the committed corpus through the live pipeline and compares
/// every stage. The regression gate CI runs on every PR.
///
/// # Errors
///
/// The first [`CheckError`] encountered — an unreadable/corrupt corpus, a
/// stage-set mismatch, or the first out-of-tolerance divergence.
pub fn check_corpus(dir: &Path) -> Result<Vec<StageReport>, CheckError> {
    let (spec, golden) = read_corpus(dir)?;
    let live = generate(&spec).map_err(CheckError::Generate)?;
    pair_stages(&golden, &live)?
        .into_iter()
        .map(|(g, l)| {
            compare(g, l).map_err(|divergence| {
                CheckError::Diverged(Box::new(StageFailure {
                    divergence: *divergence,
                    stats: compare::full_scan_report(g, l),
                }))
            })
        })
        .collect()
}

/// Full-scan diff of the committed corpus against a live regeneration:
/// per-stage deviation statistics even when everything passes.
///
/// # Errors
///
/// Same as [`check_corpus`] for unreadable corpora and stage-set
/// mismatches; divergences are *reported*, not returned as errors.
pub fn diff_corpus(dir: &Path) -> Result<Vec<Deviation>, CheckError> {
    let (spec, golden) = read_corpus(dir)?;
    let live = generate(&spec).map_err(CheckError::Generate)?;
    Ok(pair_stages(&golden, &live)?
        .into_iter()
        .map(|(g, l)| deviation(g, l))
        .collect())
}

/// Pairs golden and live vectors by stage name, in live order; both
/// directions of a stage-set mismatch are errors.
fn pair_stages<'a>(
    golden: &'a [Vector],
    live: &'a [Vector],
) -> Result<Vec<(&'a Vector, &'a Vector)>, CheckError> {
    if let Some(extra) = golden
        .iter()
        .find(|g| !live.iter().any(|l| l.name == g.name))
    {
        return Err(CheckError::ExtraStage(extra.name.clone()));
    }
    live.iter()
        .map(|l| {
            golden
                .iter()
                .find(|g| g.name == l.name)
                .map(|g| (g, l))
                .ok_or_else(|| CheckError::MissingStage(l.name.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Self-cleaning temp dir under the target directory.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("ctc-vectors-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn small_spec() -> CorpusSpec {
        // Default spec, default seed — the same corpus CI commits.
        CorpusSpec::default()
    }

    #[test]
    fn corpus_roundtrips_and_checks_clean() {
        let tmp = TempDir::new("roundtrip");
        let spec = small_spec();
        let vectors = generate(&spec).unwrap();
        write_corpus(tmp.path(), &spec, &vectors).unwrap();

        let (read_spec, read_vectors) = read_corpus(tmp.path()).unwrap();
        assert_eq!(read_spec, spec);
        assert_eq!(read_vectors, vectors);

        let reports = check_corpus(tmp.path()).unwrap();
        assert_eq!(reports.len(), STAGE_NAMES.len());
        for r in &reports {
            assert_eq!(r.max_abs, 0.0, "{}", r.stage);
        }

        let diffs = diff_corpus(tmp.path()).unwrap();
        assert!(diffs.iter().all(|d| d.first_divergence.is_none()));
    }

    #[test]
    fn failed_check_names_stage_and_whole_stage_deviation() {
        let tmp = TempDir::new("diverged");
        let spec = small_spec();
        let mut vectors = generate(&spec).unwrap();
        // Corrupt one float stage: an early element a little out of
        // tolerance, a later element much worse — the report must surface
        // both the first divergence and the true worst element.
        let stage = vectors
            .iter_mut()
            .find(|v| v.name == "captured_4mhz")
            .unwrap();
        let Payload::Samples(s) = &mut stage.payload else {
            panic!("captured_4mhz holds samples");
        };
        s[3].re += 1e-6;
        s[40].im += 1e-3;
        write_corpus(tmp.path(), &spec, &vectors).unwrap();

        let err = check_corpus(tmp.path()).unwrap_err();
        let CheckError::Diverged(failure) = &err else {
            panic!("expected Diverged, got {err:?}");
        };
        assert_eq!(failure.divergence.stage, "captured_4mhz");
        assert_eq!(failure.divergence.index, 3);
        let stats = failure.stats.as_ref().expect("same shape, full scan");
        assert_eq!(stats.worst_index, 40);
        assert!((stats.max_abs - 1e-3).abs() < 1e-9, "{}", stats.max_abs);
        let text = err.to_string();
        assert!(text.contains("captured_4mhz"), "{text}");
        assert!(text.contains("whole stage"), "{text}");
    }

    #[test]
    fn stale_manifest_checksum_is_detected() {
        let tmp = TempDir::new("stale");
        let spec = small_spec();
        let mut vectors = generate(&spec).unwrap();
        write_corpus(tmp.path(), &spec, &vectors).unwrap();
        // Rewrite one vector file after the manifest was produced.
        if let Payload::Bytes(b) = &mut vectors[0].payload {
            b[0] ^= 1;
        }
        fs::write(tmp.path().join(vectors[0].file_name()), vectors[0].encode()).unwrap();
        let err = read_corpus(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("manifest"), "{err}");
    }

    #[test]
    fn missing_and_extra_stages_are_named() {
        let tmp = TempDir::new("stages");
        let spec = small_spec();
        let mut vectors = generate(&spec).unwrap();

        // Corpus missing a stage the pipeline produces.
        let dropped = vectors.pop().unwrap();
        write_corpus(tmp.path(), &spec, &vectors).unwrap();
        match check_corpus(tmp.path()) {
            Err(CheckError::MissingStage(s)) => assert_eq!(s, dropped.name),
            other => panic!("expected MissingStage, got {other:?}"),
        }

        // Corpus with a stage the pipeline does not produce.
        vectors.push(dropped);
        vectors.push(Vector {
            name: "retired_stage".into(),
            tolerance: Tolerance::Exact,
            payload: Payload::Bytes(vec![1]),
        });
        write_corpus(tmp.path(), &spec, &vectors).unwrap();
        match check_corpus(tmp.path()) {
            Err(CheckError::ExtraStage(s)) => assert_eq!(s, "retired_stage"),
            other => panic!("expected ExtraStage, got {other:?}"),
        }
    }

    #[test]
    fn manifest_survives_its_own_parser() {
        let spec = small_spec();
        let vectors = generate(&spec).unwrap();
        let m = parse(&manifest_json(&spec, &vectors)).unwrap();
        assert_eq!(
            m.get("seed").and_then(JsonValue::as_str),
            Some(spec.seed.to_string().as_str())
        );
        let listed = m.get("vectors").and_then(JsonValue::as_array).unwrap();
        assert_eq!(listed.len(), vectors.len());
    }
}
