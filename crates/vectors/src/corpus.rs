//! Deterministic generation of the golden corpus: one canonical artifact per
//! pipeline stage, TX → emulation → channel → RX features → gateway events.
//!
//! Every stochastic stage derives its RNG stream with the same splitmix
//! per-index scheme the Monte-Carlo engine uses ([`ctc_bench::engine`]), so
//! the corpus is a pure function of [`CorpusSpec`]: regenerate with the same
//! spec and every sample is bit-identical. Digital stages (chip sequences)
//! are stored bit-exact; float DSP stages carry ULP or epsilon bands wide
//! enough for legitimate instruction-reordering drift (compiler upgrades,
//! FMA contraction) but far too tight for an algorithmic change to slip
//! through.

use crate::format::{Payload, Tolerance, Vector};
use ctc_bench::engine::splitmix;
use ctc_channel::impairments::apply_cfo;
use ctc_channel::noise::complex_gaussian;
use ctc_channel::Link;
use ctc_core::attack::Emulator;
use ctc_core::defense::{
    features_from_reception, ChannelAssumption, DetectionPipeline, Detector, FeatureInput,
};
use ctc_core::Error;
use ctc_dsp::io::write_cf32;
use ctc_dsp::Complex;
use ctc_gateway::json::JsonValue;
use ctc_gateway::{GatewayConfig, GatewayServer, NamedStream, ServerConfig};
use ctc_wifi::WifiTransmitter;
use ctc_zigbee::frame::build_frame_symbols;
use ctc_zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default corpus seed. Arbitrary but fixed; changing it regenerates a
/// different (equally valid) corpus, so treat it like a file format version.
pub const CORPUS_SEED: u64 = 0xC7C5_EED5;

/// ZigBee sample rate the capture path runs at.
const ZIGBEE_RATE_HZ: f64 = 4.0e6;

/// Everything the corpus is a function of.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Master seed; per-stage streams are `splitmix(seed, stage)`.
    pub seed: u64,
    /// ZigBee MAC payload carried through every stage.
    pub payload: Vec<u8>,
    /// AWGN level of the impaired-channel stage.
    pub snr_db: f64,
    /// Carrier-frequency offset of the impaired-channel stage.
    pub cfo_hz: f64,
    /// Static phase offset of the impaired-channel stage.
    pub phase_rad: f64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            seed: CORPUS_SEED,
            payload: b"00000".to_vec(),
            snr_db: 15.0,
            cfo_hz: 400.0,
            phase_rad: 0.3,
        }
    }
}

impl CorpusSpec {
    /// Same corpus, different master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Stage names in generation order; `generate` produces exactly these.
pub const STAGE_NAMES: [&str; 10] = [
    "zigbee_chips",
    "zigbee_waveform",
    "wifi_ofdm_frame",
    "wifi_emulated",
    "emulation_meta",
    "captured_4mhz",
    "channel_impaired",
    "features",
    "gateway_events",
    "pipeline_features",
];

/// Runs the whole pipeline once and snapshots every stage.
///
/// # Errors
///
/// Propagates framing, emulation, and feature-extraction failures as
/// [`ctc_core::Error`]; none occur for a valid spec.
pub fn generate(spec: &CorpusSpec) -> Result<Vec<Vector>, Error> {
    let mut vectors = Vec::with_capacity(STAGE_NAMES.len());

    // Stage 0 — ZigBee chip sequence (digital, bit-exact).
    let symbols = build_frame_symbols(&spec.payload)?;
    let chips = Transmitter::new().symbols_to_chips(&symbols);
    vectors.push(Vector {
        name: STAGE_NAMES[0].into(),
        tolerance: Tolerance::Exact,
        payload: Payload::Bytes(chips),
    });

    // Stage 1 — authentic ZigBee O-QPSK baseband. Pure half-sine shaping;
    // a few ULPs of slack for transcendental-library drift.
    let zigbee_waveform = Transmitter::new().transmit_payload(&spec.payload)?;
    vectors.push(Vector {
        name: STAGE_NAMES[1].into(),
        tolerance: Tolerance::Ulps(16),
        payload: Payload::Samples(zigbee_waveform.clone()),
    });

    // Stage 2 — a standard-compliant WiFi frame carrying the same payload
    // (scramble → encode → interleave → QAM → IFFT chain).
    let wifi_frame = WifiTransmitter::new()
        .transmit_frame(&spec.payload)
        .map_err(|e| Error::Other(format!("wifi frame: {e}")))?;
    vectors.push(Vector {
        name: STAGE_NAMES[2].into(),
        tolerance: Tolerance::Ulps(64),
        payload: Payload::Samples(wifi_frame),
    });

    // Stages 3–5 — the attack: emulate the ZigBee waveform with WiFi OFDM,
    // then what a ZigBee front end captures of it. FFT round trips
    // accumulate more error than shaping, hence epsilon bands.
    let emulator = Emulator::new();
    let emulation = emulator.emulate(&zigbee_waveform);
    vectors.push(Vector {
        name: STAGE_NAMES[3].into(),
        tolerance: Tolerance::Absolute(1e-9),
        payload: Payload::Samples(emulation.waveform_20mhz.clone()),
    });

    let mut meta = vec![
        emulation.alpha,
        emulation.quantization_error,
        emulation.wifi_symbol_count() as f64,
    ];
    meta.extend(emulation.kept_bins.iter().map(|&b| b as f64));
    vectors.push(Vector {
        name: STAGE_NAMES[4].into(),
        tolerance: Tolerance::Absolute(1e-9),
        payload: Payload::Scalars(meta),
    });

    let captured = emulator.received_at_zigbee(&emulation);
    vectors.push(Vector {
        name: STAGE_NAMES[5].into(),
        tolerance: Tolerance::Absolute(1e-9),
        payload: Payload::Samples(captured.clone()),
    });

    // Stage 6 — the captured forgery through an impaired channel: CFO +
    // phase offset, then AWGN from this stage's splitmix stream.
    let mut rng = StdRng::seed_from_u64(splitmix(spec.seed, 6));
    let impaired = Link::awgn(spec.snr_db).transmit(
        &apply_cfo(&captured, spec.cfo_hz, ZIGBEE_RATE_HZ, spec.phase_rad),
        &mut rng,
    );
    vectors.push(Vector {
        name: STAGE_NAMES[6].into(),
        tolerance: Tolerance::Absolute(1e-9),
        payload: Payload::Samples(impaired.clone()),
    });

    // Stage 7 — detector feature triples (Ĉ40, Ĉ42, DE²…) for the
    // authentic waveform, the clean forgery, and the impaired forgery.
    let receiver = Receiver::usrp();
    let mut feats = Vec::with_capacity(3 * 8);
    for wave in [&zigbee_waveform, &captured, &impaired] {
        let f = features_from_reception(&receiver.receive(wave))
            .map_err(|e| Error::Other(format!("features: {e}")))?;
        feats.extend_from_slice(&[
            f.c40.re,
            f.c40.im,
            f.c40_magnitude,
            f.c42,
            f.line_frequency,
            f.sample_count as f64,
            f.de_squared_ideal(),
            f.de_squared_real(),
        ]);
    }
    vectors.push(Vector {
        name: STAGE_NAMES[7].into(),
        tolerance: Tolerance::Absolute(1e-6),
        payload: Payload::Scalars(feats),
    });

    // Stage 8 — the gateway's JSONL event stream over a synthetic capture
    // (noise | authentic | noise | forgery | noise), latency fields
    // stripped because wall-clock timing is the one nondeterministic part.
    let events = gateway_events(spec, &zigbee_waveform, &captured)?;
    vectors.push(Vector {
        name: STAGE_NAMES[8].into(),
        tolerance: Tolerance::Absolute(1e-6),
        payload: Payload::Text(events),
    });

    // Stage 9 — the ensemble pipeline's full named feature vector (16
    // entries per waveform, in `DetectionPipeline::feature_names` order)
    // for the same three waveforms stage 7 fingerprints. Pins the
    // extractor set of the pluggable detector: adding, removing, or
    // reordering a feature diverges here before any classifier metric
    // moves.
    let pipeline = DetectionPipeline::standard(Detector::new(ChannelAssumption::Ideal));
    let mut pipeline_feats = Vec::with_capacity(3 * pipeline.feature_names().len());
    for wave in [&zigbee_waveform, &captured, &impaired] {
        let reception = receiver.receive(wave);
        let input = FeatureInput::with_samples(&reception, wave);
        let fv = pipeline
            .extract(&input)
            .map_err(|e| Error::Other(format!("pipeline features: {e}")))?;
        pipeline_feats.extend(fv.entries().iter().map(|(_, v)| *v));
    }
    vectors.push(Vector {
        name: STAGE_NAMES[9].into(),
        tolerance: Tolerance::Absolute(1e-6),
        payload: Payload::Scalars(pipeline_feats),
    });

    Ok(vectors)
}

/// Streams a synthetic capture through the gateway and returns the
/// normalized JSONL event stream.
fn gateway_events(
    spec: &CorpusSpec,
    authentic: &[Complex],
    forged: &[Complex],
) -> Result<String, Error> {
    let mut rng = StdRng::seed_from_u64(splitmix(spec.seed, 8));
    let sigma2 = 1e-3;
    let mut stream: Vec<Complex> = Vec::new();
    let mut noise = |n: usize, stream: &mut Vec<Complex>| {
        stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
    };
    noise(700, &mut stream);
    stream.extend_from_slice(authentic);
    noise(700, &mut stream);
    stream.extend_from_slice(forged);
    noise(700, &mut stream);

    let mut bytes = Vec::new();
    write_cf32(&mut bytes, &stream)?;

    let config = GatewayConfig {
        workers: 1,
        stats_interval: None,
        detector: Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
        ..GatewayConfig::default()
    };
    let mut events = Vec::new();
    // The corpus pins the legacy single-stream output shape: one shard,
    // one unlabelled stream, which the server emits byte-identically to
    // the old single-stream gateway.
    let server_config = ServerConfig {
        shards: 1,
        ..ServerConfig::from(config)
    };
    GatewayServer::new(server_config)
        .run_streams(
            vec![NamedStream::unlabelled(&bytes[..])],
            &mut events,
            &mut Vec::new(),
        )
        .map_err(|e| Error::Other(format!("gateway run: {e}")))?;
    let events = String::from_utf8(events)
        .map_err(|e| Error::Other(format!("gateway events not utf-8: {e}")))?;
    normalize_events(&events)
}

/// Drops the wall-clock `latency` object from every JSONL event and
/// re-renders; everything else the gateway emits is deterministic.
pub fn normalize_events(events: &str) -> Result<String, Error> {
    let mut out = String::new();
    for (i, line) in events.lines().enumerate() {
        let parsed = ctc_gateway::json::parse(line)
            .map_err(|e| Error::Other(format!("gateway event line {i}: {e}")))?;
        let stripped = match parsed {
            JsonValue::Object(fields) => {
                JsonValue::Object(fields.into_iter().filter(|(k, _)| k != "latency").collect())
            }
            other => other,
        };
        render(&stripped, &mut out);
        out.push('\n');
    }
    Ok(out)
}

/// Minimal JSON renderer for normalized events. Numbers print via `f64`
/// Display — stable across runs, which is all the comparator (which
/// re-parses) needs.
fn render(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => {
            use std::fmt::Write;
            let _ = write!(out, "{n}");
        }
        JsonValue::String(s) => render_string(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(v, out);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(v, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare;

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::default();
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(a.len(), STAGE_NAMES.len());
        for (x, y) in a.iter().zip(&b) {
            // Bit-identical regeneration: checksum equality covers every
            // payload byte, compare() confirms zero measured deviation.
            assert_eq!(x.checksum(), y.checksum(), "{}", x.name);
            let report = compare(x, y).unwrap();
            assert_eq!(report.max_abs, 0.0, "{}", x.name);
            assert_eq!(report.max_ulps, 0, "{}", x.name);
        }
    }

    #[test]
    fn stage_names_and_kinds_are_stable() {
        let vectors = generate(&CorpusSpec::default()).unwrap();
        let names: Vec<&str> = vectors.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, STAGE_NAMES);
        assert!(matches!(vectors[0].payload, Payload::Bytes(_)));
        assert!(matches!(vectors[4].payload, Payload::Scalars(_)));
        assert!(matches!(vectors[8].payload, Payload::Text(_)));
        assert!(matches!(vectors[9].payload, Payload::Scalars(_)));
        for v in &vectors {
            assert!(!v.payload.is_empty(), "{} is empty", v.name);
        }
    }

    #[test]
    fn different_seed_changes_stochastic_stages_only() {
        let a = generate(&CorpusSpec::default()).unwrap();
        let b = generate(&CorpusSpec::default().with_seed(1)).unwrap();
        // Deterministic TX/attack stages are seed-independent.
        for i in [0usize, 1, 2, 3, 4, 5] {
            assert_eq!(a[i].checksum(), b[i].checksum(), "{}", a[i].name);
        }
        // The AWGN stage must differ.
        assert_ne!(a[6].checksum(), b[6].checksum());
    }

    #[test]
    fn gateway_stage_sees_both_frames_without_latency() {
        let vectors = generate(&CorpusSpec::default()).unwrap();
        let Payload::Text(events) = &vectors[8].payload else {
            panic!("gateway stage should be text")
        };
        let frames: Vec<&str> = events
            .lines()
            .filter(|l| l.contains("\"type\":\"frame\""))
            .collect();
        assert_eq!(frames.len(), 2, "events:\n{events}");
        assert!(events.contains("\"verdict\":\"authentic\""));
        assert!(events.contains("\"verdict\":\"attack\""));
        assert!(!events.contains("latency"), "latency must be stripped");
    }

    #[test]
    fn pipeline_stage_carries_full_feature_vector_for_three_waveforms() {
        let vectors = generate(&CorpusSpec::default()).unwrap();
        let Payload::Scalars(feats) = &vectors[9].payload else {
            panic!("pipeline stage should be scalars")
        };
        let width = DetectionPipeline::standard(Detector::new(ChannelAssumption::Ideal))
            .feature_names()
            .len();
        assert_eq!(feats.len(), 3 * width, "3 waveforms × {width} features");
        assert!(feats.iter().all(|v| v.is_finite()), "features: {feats:?}");
    }

    #[test]
    fn normalize_is_idempotent() {
        let vectors = generate(&CorpusSpec::default()).unwrap();
        let Payload::Text(events) = &vectors[8].payload else {
            panic!("text stage")
        };
        assert_eq!(&normalize_events(events).unwrap(), events);
    }
}
