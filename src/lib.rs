//! # hide-and-seek
//!
//! Facade crate for the reproduction of *Hide and Seek: Waveform Emulation
//! Attack and Defense in Cross-Technology Communication* (ICDCS 2019).
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can use a single dependency:
//!
//! - [`dsp`] — FFT, filters, resampling, cumulants, k-means
//! - [`channel`] — AWGN, CFO/phase offset, fading, path loss, RSSI
//! - [`zigbee`] — IEEE 802.15.4 O-QPSK/DSSS PHY + MAC
//! - [`wifi`] — IEEE 802.11g 64-QAM OFDM PHY
//! - [`core`] — the paper's contribution: the waveform-emulation attack and
//!   the cumulant-based defense
//! - [`gateway`] — the defense as a long-running service: a multi-stream
//!   server (sessions pinned to work-stealing shards over one decode/
//!   classify pool), `stream`-tagged JSONL events and per-stream metrics
//! - [`loadgen`] — fleet-scale traffic generation and SLO-asserting soak
//!   testing against the gateway: seeded mixed authentic/forged/noise
//!   streams with generator-side ground truth
//! - [`vectors`] — the golden-vector regression corpus: deterministic
//!   per-stage artifacts with tolerance-aware comparison
//! - [`obs`] — the unified telemetry layer: lock-free metrics registry,
//!   Prometheus-style exposition, structured pipeline tracing
//!
//! Fallible operations across the workspace converge on the single
//! [`Error`] enum (re-exported from `ctc_core`), so cross-crate pipelines
//! propagate with `?` instead of juggling per-crate error types.

#![warn(missing_docs)]

pub use ctc_channel as channel;
pub use ctc_core as core;
pub use ctc_core::{Error, WaveformPair};
pub use ctc_dsp as dsp;
pub use ctc_dsp::{BufferPool, Complex, SampleBuf, Stage};
pub use ctc_gateway as gateway;
pub use ctc_loadgen as loadgen;
pub use ctc_obs as obs;
pub use ctc_vectors as vectors;
pub use ctc_wifi as wifi;
pub use ctc_zigbee as zigbee;
