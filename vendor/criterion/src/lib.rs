//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use. Measurements are a
//! simple warm-up + timed-loop scheme (median-free): good enough to expose
//! the complexity trends the benches assert, without criterion's
//! statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase to settle caches and branch
    /// predictors, then a timed phase whose mean is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            std::hint::black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.last_ns_per_iter = if iters == 0 {
            f64::NAN
        } else {
            elapsed.as_nanos() as f64 / iters as f64
        };
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility; the
    /// vendored measurement loop is time-bounded instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used for the per-element rate report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            last_ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.last_ns_per_iter);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            last_ns_per_iter: f64::NAN,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.last_ns_per_iter);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, ns_per_iter: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
                format!("  ({:.1} M/s)", n as f64 / ns_per_iter * 1e3)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {:.1} ns/iter{rate}", self.name, ns_per_iter);
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Accepted for API compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
    }
}

/// Declares a benchmark group, in either the simple or the keyed form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

/// Opaque value barrier, re-exported for compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
