//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ rather than upstream's ChaCha12: the
//! workspace only relies on *determinism for a given seed*, statistical
//! quality, and speed — not on bit-compatibility with upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Vigna), the expansion rand_core uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // The closed upper bound is hit with probability 0; treating the
        // range as half-open is indistinguishable for f64 sampling.
        lo + (hi - lo) * f64::random(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::random(rng)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }
}
