//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro with
//! `#![proptest_config]`, range and `any::<T>()` strategies,
//! [`collection::vec`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! No shrinking is performed: failing inputs are reported via the panic
//! message of the underlying assertion together with the deterministic
//! per-test seed, which is derived from the test's module path and name so
//! failures reproduce across runs.

use std::ops::Range;

/// Deterministic generator backing test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// Creates the deterministic generator for one `proptest!` test.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(hash)
}

/// How a test-case value is produced.
pub trait Strategy {
    /// The value type this strategy yields.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (rng.below(span) as i128 + self.start as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Produces arbitrary values of `T` (uniform over the value space).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`]; `size` is a fixed length or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for hash sets of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`HashSetStrategy`]; `size` is a fixed length or a range.
    ///
    /// As in upstream proptest, duplicate draws shrink the set, so the
    /// realised length may fall below the requested one when the element
    /// space is small.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __body = || $body;
                    let _: () = __body();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vectors_generate_in_bounds() {
        let mut rng = crate::test_rng("self_test");
        for _ in 0..200 {
            let v = (3u8..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let xs = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
            let fixed = crate::collection::vec(0u8..2, 6usize).generate(&mut rng);
            assert_eq!(fixed.len(), 6);
            assert!(fixed.iter().all(|&b| b < 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(x in 0u16..100, ys in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
